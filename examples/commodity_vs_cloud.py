"""Can a commodity 8x RTX3090 box match a DGX-1?  (Paper Figure 3.)

Simulates one training step of each evaluation model on the commodity
box (with and without CGX) and on the NVLink-over-provisioned DGX-1,
printing throughput, scaling efficiency and the self-speedup CGX
delivers — the paper's central "bandwidth over-provisioning is not
necessary" argument.

Run:  python examples/commodity_vs_cloud.py
"""

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = ["resnet50", "transformer_xl", "vit", "bert"]


def main():
    commodity = get_machine("rtx3090-8x")
    dgx = get_machine("dgx1")
    print(f"{'model':16s} {'3090 NCCL':>12s} {'3090 CGX':>12s} "
          f"{'DGX-1':>12s} {'CGX speedup':>12s} {'CGX scaling':>12s}")
    for model in MODELS:
        spec = build_spec(model)
        nccl = simulate_machine_step(commodity, spec,
                                     CGXConfig.baseline_nccl(),
                                     plan_mode="fused")
        cgx = simulate_machine_step(commodity, spec,
                                    CGXConfig.cgx_default())
        dgx_run = simulate_machine_step(dgx, spec,
                                        CGXConfig.baseline_nccl(),
                                        plan_mode="fused")
        print(f"{model:16s} {nccl.throughput:12.0f} {cgx.throughput:12.0f} "
              f"{dgx_run.throughput:12.0f} "
              f"{cgx.throughput / nccl.throughput:11.1f}x "
              f"{cgx.scaling_efficiency * 100:11.0f}%")
    print("\n(items/s: imgs/s for ResNet/ViT, tokens/s for TXL/BERT; "
          "CGX = 4-bit QSGD, SRA over shared memory)")


if __name__ == "__main__":
    main()

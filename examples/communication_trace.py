"""Inspecting the simulated communication schedule (Perfetto trace).

Runs one CGX training step of ViT on the 8x RTX3090 machine with
transfer tracing enabled, exports a Chrome/Perfetto trace
(``vit_step_trace.json`` — open at https://ui.perfetto.dev), and prints
link utilization so you can see where the bandwidth goes: per-GPU PCIe
lanes, the shared host-memory bridges, and the QPI bottleneck between
the NUMA roots.

Run:  python examples/communication_trace.py
"""

from repro.cluster import Network, export_chrome_trace, get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_step

TRACE_PATH = "vit_step_trace.json"


def main():
    machine = get_machine("rtx3090-8x")
    spec = build_spec("vit")
    network = Network(machine.topology(), "shm")
    network.enable_trace()

    timing = simulate_step(spec, machine.gpu, machine.topology(),
                           CGXConfig.cgx_default(), network=network)
    events = export_chrome_trace(network, TRACE_PATH)

    print(f"simulated one CGX step of {spec.name} "
          f"({spec.num_parameters / 1e6:.1f}M params) on {machine.name}")
    print(f"step time {timing.step_time * 1000:.1f} ms, "
          f"{timing.wire_bytes / 1e6:.0f} MB on the wire, "
          f"{events} transfers traced -> {TRACE_PATH}")

    print("\nbusiest links during the step:")
    utilization = network.pool.utilization(timing.step_time)
    ranked = sorted(utilization.items(), key=lambda kv: -kv[1])
    for name, fraction in ranked[:10]:
        busy_ms = network.pool.get(name).busy_time * 1000
        bar = "#" * int(fraction * 40)
        print(f"  {name:22s} {fraction * 100:5.1f}% {busy_ms:7.1f} ms  {bar}")

    print("\nopen the trace at https://ui.perfetto.dev "
          "(rows = source GPUs, blocks = transfers)")


if __name__ == "__main__":
    main()

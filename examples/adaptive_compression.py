"""Adaptive layer-wise compression in action (paper Section 5).

Trains a scaled Transformer-XL with the KMEANS adaptive controller
(Algorithm 1) attached: every 20 steps the controller clusters layers by
(size, accumulated-gradient norm) and re-assigns per-layer bit-widths
under the alpha*E4 error budget.  The script prints the evolving
assignment, the bandwidth saved vs static 4-bit, and the final
perplexity vs an uncompressed baseline.

Run:  python examples/adaptive_compression.py
"""

from collections import Counter

from repro.core import AdaptiveController, CGXConfig
from repro.training import DataParallelTrainer, get_recipe, make_task, \
    train_family

STEPS = 120


def main():
    recipe = get_recipe("transformer_xl")
    task = make_task("transformer_xl", batch_size=recipe.batch_size,
                     **recipe.kwargs())

    config = CGXConfig.cgx_default(recipe.bucket_size)
    controller = AdaptiveController(config, method="kmeans", period=20,
                                    alpha=2.5)
    trainer = DataParallelTrainer(task, world_size=4, config=config,
                                  recipe=recipe, adaptive=controller)

    print("training scaled Transformer-XL with KMEANS-adaptive bits...")
    result = trainer.train(steps=STEPS, eval_every=40)
    for record in result.history:
        print(f"  step {record['step']:4d}: loss {record['loss']:.3f}  "
              f"perplexity {record['metric']:.1f}")

    print("\nfinal per-layer bit-widths (Algorithm 1):")
    histogram = Counter(controller.assignments.values())
    for bits in sorted(histogram):
        print(f"  {bits}-bit: {histogram[bits]} layers")
    embedding_bits = controller.assignments.get("embed.weight")
    print(f"  embedding layer -> {embedding_bits} bits "
          f"(large + low sensitivity, compressed hardest)")

    print("\nbaseline comparison (uncompressed, same recipe):")
    baseline = train_family("transformer_xl", world_size=4, config=None,
                            steps=STEPS, eval_every=STEPS)
    print(f"  baseline perplexity: {baseline.final_metric:.1f}")
    print(f"  adaptive perplexity: {result.final_metric:.1f}")
    print(f"  retunings performed: {controller.reassign_count}")
    print(f"  replicas in sync:    {trainer.in_sync()}")


if __name__ == "__main__":
    main()

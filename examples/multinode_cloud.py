"""Multi-node training on cheap cloud instances (paper Tables 4 & 5).

Simulates BERT-QA and Transformer-XL over four Genesis 4x RTX3090 nodes
joined by gigabit-class links, comparing the uncompressed NCCL baseline
against CGX with hierarchical (intra-node SHM-class + inter-node
compressed) reduction, and prints the cloud-economics comparison
against an AWS p3.8xlarge.

Run:  python examples/multinode_cloud.py
"""

from repro.cluster import get_machine, make_cluster
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step, simulate_step


def multinode_section():
    machine = get_machine("genesis-4x3090")
    cluster = make_cluster("genesis-4x3090", n_nodes=4)
    print("== 4 nodes x 4x RTX3090, ~0.6 GB/s inter-node (Table 5) ==")
    print(f"{'model':16s} {'NCCL baseline':>14s} {'CGX hier':>14s} "
          f"{'speedup':>8s}")
    for model in ["resnet50", "vit", "transformer_xl", "bert"]:
        spec = build_spec(model)
        baseline = simulate_step(spec, machine.gpu, cluster,
                                 CGXConfig.baseline_nccl(),
                                 plan_mode="fused")
        config = CGXConfig.cgx_default()
        config.backend = "nccl"     # SHM cannot cross nodes
        config.scheme = "hier"      # intra-node + inter-node hierarchy
        cgx = simulate_step(spec, machine.gpu, cluster, config)
        print(f"{model:16s} {baseline.throughput:14.0f} "
              f"{cgx.throughput:14.0f} "
              f"{cgx.throughput / baseline.throughput:7.1f}x")


def economics_section():
    print("\n== BERT-QA cloud economics (Table 4) ==")
    spec = build_spec("bert")
    genesis = get_machine("genesis-4x3090")
    aws = get_machine("aws-p3.8xlarge")
    rows = [
        ("Genesis NCCL", genesis,
         simulate_machine_step(genesis, spec, CGXConfig.baseline_nccl(),
                               plan_mode="fused")),
        ("AWS NCCL", aws,
         simulate_machine_step(aws, spec, CGXConfig.baseline_nccl(),
                               plan_mode="fused")),
        ("Genesis CGX", genesis,
         simulate_machine_step(genesis, spec, CGXConfig.cgx_default())),
    ]
    print(f"{'instance':14s} {'$/hour':>7s} {'tokens/s':>10s} "
          f"{'tokens/s per $':>15s}")
    for name, machine, timing in rows:
        print(f"{name:14s} {machine.price_per_hour:7.1f} "
              f"{timing.throughput:10.0f} "
              f"{timing.throughput / machine.price_per_hour:15.0f}")
    print("\nPaper: 4737 / 14407 / 14171 tokens/s and 696 / 1181 / 2083 "
          "tokens/s/$ — the cheap instance with CGX wins on both counts.")


if __name__ == "__main__":
    multinode_section()
    economics_section()

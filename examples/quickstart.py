"""Quickstart: data-parallel training with CGX compression in 40 lines.

Mirrors the paper's Listing 1 user journey: build a model, register its
layout with a CGX session, exclude the sensitive small layers, pick a
quantization level, and train data-parallel — then verify the replicas
stayed in lock-step and accuracy matches an uncompressed run.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compression import CompressionSpec
from repro.core import CGXConfig, CGXDistributedDataParallel, CGXSession
from repro.nn import SGD, build_model
from repro.nn.data import SyntheticVectors
from repro.nn.loss import softmax_cross_entropy

WORLD_SIZE = 4
STEPS = 80


def train(config=None) -> float:
    """Train WORLD_SIZE replicas; returns eval accuracy."""
    replicas = [build_model("mlp", seed=42) for _ in range(WORLD_SIZE)]
    ddp = CGXDistributedDataParallel(replicas, config)
    optimizers = [SGD(r.parameters(), lr=0.1, momentum=0.9)
                  for r in replicas]
    data = SyntheticVectors(seed=0)
    rng = np.random.default_rng(1)

    for step in range(STEPS):
        for replica in replicas:   # each worker: its own shard
            replica.zero_grad()
            inputs, labels = data.sample(32, rng)
            _, grad = softmax_cross_entropy(replica(inputs), labels)
            replica.backward(grad)
        ddp.synchronize()           # compress + allreduce + average
        for optimizer in optimizers:
            optimizer.step()

    assert ddp.check_in_sync(), "replicas diverged!"
    eval_x, eval_y = data.eval_set(512)
    report = ddp.last_report
    print(f"  packages/step: {report.packages}, "
          f"gradient compression: {report.compression_ratio:.1f}x")
    return float((replicas[0](eval_x).argmax(-1) == eval_y).mean())


def main():
    # 1. configure CGX exactly as torch_cgx's Listing 1 does
    model = build_model("mlp", seed=42)
    session = CGXSession()
    session.register_model(
        [(name, p.numel) for name, p in model.named_parameters()]
    )
    session.exclude_layer("bias")         # reduced in full precision
    session.set_quantization_bits(4, bucket_size=1024)

    print("CGX 4-bit training:")
    compressed_accuracy = train(session.config)
    print(f"  accuracy: {compressed_accuracy:.3f}")

    print("uncompressed baseline:")
    baseline_accuracy = train(
        CGXConfig(compression=CompressionSpec("none")))
    print(f"  accuracy: {baseline_accuracy:.3f}")

    gap = abs(baseline_accuracy - compressed_accuracy)
    print(f"accuracy gap: {gap:.3f} (paper's bar: < 0.01 of the metric)")


if __name__ == "__main__":
    main()

"""repro: reproduction of CGX (Markov, Ramezani-Kebrya, Alistarh;
MIDDLEWARE 2022) — adaptive system support for communication-efficient
deep learning.

Subpackages:

* :mod:`repro.core` — the CGX engine, DDP wrapper, layer filters,
  adaptive layer-wise compression (Algorithm 1), QNCCL configuration.
* :mod:`repro.compression` — QSGD, TopK+EF, PowerSGD, fake compression.
* :mod:`repro.collectives` — compression-aware SRA/Ring/Tree/Allgather/
  PS/hierarchical allreduce: real data paths and timed schedules.
* :mod:`repro.cluster` — the commodity/cloud multi-GPU simulator.
* :mod:`repro.nn` — the pure-numpy training substrate.
* :mod:`repro.models` — full-size layer inventories of the paper's models.
* :mod:`repro.training` — trainers, recipes, tasks and the step-time
  performance model.
* :mod:`repro.baselines` — GRACE and PowerSGD-DDP comparison points.
"""

from repro.compression import CompressionSpec
from repro.core import (
    AdaptiveController,
    CGXConfig,
    CGXDistributedDataParallel,
    CGXSession,
)

__version__ = "1.0.0"

__all__ = [
    "CGXConfig",
    "CGXSession",
    "CGXDistributedDataParallel",
    "AdaptiveController",
    "CompressionSpec",
    "__version__",
]

"""Declarative, seeded fault plans for the simulated cluster.

A :class:`FaultPlan` is a step-indexed schedule of :class:`FaultEvent`
records — link slowdowns and outages, transient message loss, payload
corruption, straggler compute scaling, worker crash/rejoin — plus a
seed.  Plans are pure data: nothing here touches the network or the
collectives.  A :class:`PlanRuntime` binds a plan to an explicit
``numpy.random.Generator`` and an append-only :class:`FaultRecord` log,
so a campaign replayed under the same seed produces a *byte-identical*
event log (:meth:`PlanRuntime.log_bytes` is the canonical encoding the
CI determinism check compares).

The injection machinery that makes the timed network and the real-numpy
data path observe a plan lives in :mod:`repro.faults.inject`; the
recovery knobs live in :mod:`repro.faults.policy`.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .policy import FaultCounters, ResiliencePolicy

__all__ = [
    "FAULT_KINDS", "FaultEvent", "FaultPlan", "StepFaults", "FaultRecord",
    "PlanRuntime", "link_slowdown", "link_outage", "message_loss",
    "payload_corruption", "straggler", "crash", "preempt_warning",
    "provision", "CAMPAIGNS", "make_campaign", "oracle_guard",
]

#: every fault class the engine can inject.  ``preempt_warning`` and
#: ``provision`` are *control-plane* events: the cloud provider delivers
#: them to the job explicitly (a spot reclaim notice, a scale-up
#: callback), so — unlike the physics kinds — reading them is not an
#: oracle access (see :meth:`StepFaults.preempt_notices`).
FAULT_KINDS = ("link_slow", "link_down", "message_loss", "payload_corrupt",
               "straggler", "crash", "preempt_warning", "provision")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled degradation, active on steps ``[start, stop)``.

    ``stop=None`` means the fault persists for the rest of the run.
    ``src``/``dst`` select a directed route; ``None`` matches any
    endpoint (so ``src=3, dst=None`` degrades everything rank 3 sends,
    and ``src=None, dst=None`` degrades every route).  Routes are
    matched symmetrically for link faults — a cable does not care about
    direction — and directionally for message-level faults.
    """

    kind: str
    start: int
    stop: int | None = None
    rank: int | None = None        # straggler / crash / elastic subject
    src: int | None = None         # route endpoints
    dst: int | None = None
    factor: float = 1.0            # slowdown multiplier (link_slow, straggler)
    probability: float = 0.0       # per-message probability (loss, corrupt)
    deadline_steps: int = 0        # drain window (preempt_warning)
    gpu: str | None = None         # machine envelope (provision)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.start < 0:
            raise ValueError(f"{self.kind}: start step must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            if self.kind == "crash":
                raise ValueError(
                    f"crash: rejoin step {self.stop} must be > crash "
                    f"step {self.start}")
            raise ValueError(f"{self.kind}: stop must be > start")
        if self.kind in ("link_slow", "straggler") and self.factor < 1.0:
            raise ValueError(f"{self.kind}: factor must be >= 1")
        if self.kind in ("message_loss", "payload_corrupt") \
                and not 0.0 <= self.probability < 1.0:
            raise ValueError(f"{self.kind}: probability must be in [0, 1)")
        if self.kind in ("straggler", "crash", "preempt_warning",
                         "provision") and self.rank is None:
            raise ValueError(f"{self.kind}: rank is required")
        if self.kind == "preempt_warning":
            if self.deadline_steps <= 0:
                raise ValueError(
                    f"preempt_warning: deadline_steps must be > 0 "
                    f"(got {self.deadline_steps}); a reclaim notice "
                    f"with no drain window is just a crash")
            if self.stop is not None:
                raise ValueError("preempt_warning: stop is implied by "
                                 "the deadline (start + deadline_steps)")
        if self.kind == "provision":
            if self.gpu is None:
                raise ValueError("provision: a gpu spec is required")
            from repro.cluster.gpu import GPUS
            if self.gpu not in GPUS:
                raise ValueError(f"provision: unknown gpu {self.gpu!r}; "
                                 f"choose from {sorted(GPUS)}")
            if self.stop is not None:
                raise ValueError("provision: stop is meaningless (a "
                                 "provisioned machine stays until "
                                 "preempted)")

    @property
    def deadline(self) -> int:
        """Absolute reclaim step of a ``preempt_warning`` event."""
        return self.start + self.deadline_steps

    def active(self, step: int) -> bool:
        return step >= self.start and (self.stop is None or step < self.stop)

    def matches_route(self, src: int, dst: int, directed: bool = True) -> bool:
        """Whether the event applies to a ``src -> dst`` message."""
        if self._endpoint_match(src, dst):
            return True
        return not directed and self._endpoint_match(dst, src)

    def _endpoint_match(self, src: int, dst: int) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "start": self.start}
        for name in ("stop", "rank", "src", "dst"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.kind in ("link_slow", "straggler"):
            out["factor"] = self.factor
        if self.kind in ("message_loss", "payload_corrupt"):
            out["probability"] = self.probability
        if self.kind == "preempt_warning":
            out["deadline_steps"] = self.deadline_steps
        if self.kind == "provision":
            out["gpu"] = self.gpu
        return out


# -- event constructors ------------------------------------------------------

def link_slowdown(start: int, stop: int | None, factor: float,
                  src: int | None = None, dst: int | None = None) -> FaultEvent:
    """Degrade the route(s) by ``factor`` (2.0 = half bandwidth)."""
    return FaultEvent("link_slow", start, stop, src=src, dst=dst,
                      factor=factor)


def link_outage(start: int, stop: int | None,
                src: int | None = None, dst: int | None = None) -> FaultEvent:
    """Take the route(s) down entirely (transfers cannot complete)."""
    return FaultEvent("link_down", start, stop, src=src, dst=dst)


def message_loss(start: int, stop: int | None, probability: float,
                 src: int | None = None, dst: int | None = None) -> FaultEvent:
    """Drop each matching message independently with ``probability``."""
    return FaultEvent("message_loss", start, stop, src=src, dst=dst,
                      probability=probability)


def payload_corruption(start: int, stop: int | None, probability: float,
                       src: int | None = None,
                       dst: int | None = None) -> FaultEvent:
    """Corrupt each matching payload independently with ``probability``."""
    return FaultEvent("payload_corrupt", start, stop, src=src, dst=dst,
                      probability=probability)


def straggler(start: int, stop: int | None, rank: int,
              factor: float) -> FaultEvent:
    """Scale ``rank``'s compute time by ``factor`` (1.5 = 50% slower)."""
    return FaultEvent("straggler", start, stop, rank=rank, factor=factor)


def crash(rank: int, at: int, rejoin: int | None = None) -> FaultEvent:
    """Kill ``rank`` at step ``at``; it rejoins at ``rejoin`` (or never)."""
    return FaultEvent("crash", at, rejoin, rank=rank)


def preempt_warning(rank: int, at: int, deadline_steps: int) -> FaultEvent:
    """Spot reclaim notice delivered to ``rank`` at step ``at``.

    The machine must drain and leave the membership within
    ``deadline_steps`` (the "2-minute warning", in step units); at
    ``at + deadline_steps`` the provider reclaims it unconditionally —
    a rank still present then is dead, exactly like a crash with no
    rejoin.
    """
    return FaultEvent("preempt_warning", at, None, rank=rank,
                      deadline_steps=deadline_steps)


def provision(rank: int, at: int, gpu_spec: str = "RTX3090") -> FaultEvent:
    """A new machine for ``rank`` boots at step ``at``.

    ``rank`` must extend the plan's initial world (capacity slots are
    ``world, world + 1, ...``); ``gpu_spec`` names its compute envelope
    in :data:`repro.cluster.gpu.GPUS`, so autoscaled fleets are
    heterogeneous by construction.
    """
    return FaultEvent("provision", at, None, rank=rank, gpu=gpu_spec)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault events over ``world`` ranks."""

    name: str
    world: int
    seed: int
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        if self.world < 1:
            raise ValueError("world must be >= 1")
        provisions = self._validate_provisions()
        capacity = self.world + len(provisions)
        for event in self.events:
            if event.kind == "provision":
                continue
            for attr in ("rank", "src", "dst"):
                value = getattr(event, attr)
                if value is not None and not 0 <= value < capacity:
                    raise ValueError(
                        f"{event.kind}: {attr}={value} out of range for "
                        f"world {self.world} (+{len(provisions)} "
                        f"provisioned)")
        self._validate_warnings()

    def _validate_provisions(self) -> list[FaultEvent]:
        """Provision events must extend the world, uniquely, in order."""
        provisions = sorted((e for e in self.events if e.kind == "provision"),
                            key=lambda e: (e.rank, e.start))
        seen: set[int] = set()
        for event in provisions:
            assert event.rank is not None
            if event.rank < self.world:
                raise ValueError(
                    f"provision: rank {event.rank} is already in the "
                    f"initial world of {self.world} (double-admit)")
            if event.rank in seen:
                raise ValueError(
                    f"provision: rank {event.rank} provisioned twice "
                    f"(double-admit)")
            seen.add(event.rank)
        expected = list(range(self.world, self.world + len(provisions)))
        got = sorted(seen)
        if got != expected:
            raise ValueError(
                f"provision: ranks must extend the world contiguously "
                f"(expected {expected}, got {got})")
        by_rank = {e.rank: e for e in provisions}
        for event in self.events:
            if event.kind not in ("crash", "straggler", "preempt_warning"):
                continue
            birth = by_rank.get(event.rank)
            if birth is not None and event.start < birth.start:
                raise ValueError(
                    f"{event.kind}: rank {event.rank} at step "
                    f"{event.start} overlaps its provision at step "
                    f"{birth.start} (machine does not exist yet)")
        return provisions

    def _validate_warnings(self) -> None:
        warned: set[int] = set()
        for event in self.events:
            if event.kind != "preempt_warning":
                continue
            if event.rank in warned:
                raise ValueError(
                    f"preempt_warning: rank {event.rank} warned twice "
                    f"(a reclaimed machine cannot be re-warned)")
            warned.add(event.rank)  # type: ignore[arg-type]

    @property
    def max_world(self) -> int:
        """Peak membership capacity: initial world plus provisioned slots."""
        return self.world + sum(1 for e in self.events
                                if e.kind == "provision")

    def at_step(self, step: int) -> "StepFaults":
        """The faults active at ``step`` (a queryable view)."""
        return StepFaults(step, self.world,
                          tuple(e for e in self.events if e.active(step)))

    def to_dict(self) -> dict:
        return {"name": self.name, "world": self.world, "seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        events = tuple(FaultEvent(**e) for e in data.get("events", []))
        return FaultPlan(data["name"], data["world"], data["seed"], events)


# -- oracle tripwire ---------------------------------------------------------
#
# The fault plan is the simulation's *physics*: injectors and transports
# legitimately read it to decide what actually happens.  Recovery
# *decisions* in supervised mode must not — they may only see observed
# heartbeats.  The guard makes that auditable: code wrapped in
# ``oracle_guard()`` collects the name of every StepFaults query issued
# while it is active, and the HLT battery asserts the list stays empty.

_ORACLE_GUARD: list[str] | None = None


@contextlib.contextmanager
def oracle_guard() -> Iterator[list[str]]:
    """Record every :class:`StepFaults` oracle query made inside."""
    global _ORACLE_GUARD
    prev = _ORACLE_GUARD
    reads: list[str] = []
    _ORACLE_GUARD = reads
    try:
        yield reads
    finally:
        _ORACLE_GUARD = prev


def _oracle_note(name: str) -> None:
    if _ORACLE_GUARD is not None:
        _ORACLE_GUARD.append(name)


def _combined_probability(events, kind, src, dst) -> float:
    """1 - prod(1 - p) over matching events (independent hazards)."""
    keep = 1.0
    for event in events:
        if event.kind == kind and event.matches_route(src, dst):
            keep *= 1.0 - event.probability
    return 1.0 - keep


@dataclass(frozen=True)
class StepFaults:
    """Queryable snapshot of the faults active at one step."""

    step: int
    world: int
    events: tuple[FaultEvent, ...]

    def compute_scale(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = healthy)."""
        _oracle_note("compute_scale")
        scale = 1.0
        for event in self.events:
            if event.kind == "straggler" and event.rank == rank:
                scale *= event.factor
        return scale

    def dead_ranks(self) -> set[int]:
        _oracle_note("dead_ranks")
        dead = {e.rank for e in self.events
                if e.kind == "crash" and e.rank is not None}
        # past its drain deadline, a warned machine is reclaimed by the
        # provider whether or not the job drained it — spot physics
        dead |= {e.rank for e in self.events
                 if e.kind == "preempt_warning" and e.rank is not None
                 and self.step >= e.deadline}
        return dead

    def live_ranks(self) -> list[int]:
        _oracle_note("live_ranks")
        dead = self.dead_ranks()
        return [r for r in range(self.world) if r not in dead]

    def loss_probability(self, src: int, dst: int) -> float:
        _oracle_note("loss_probability")
        return _combined_probability(self.events, "message_loss", src, dst)

    def corrupt_probability(self, src: int, dst: int) -> float:
        _oracle_note("corrupt_probability")
        return _combined_probability(self.events, "payload_corrupt", src, dst)

    def link_slow_factor(self, src: int, dst: int) -> float:
        _oracle_note("link_slow_factor")
        factor = 1.0
        for event in self.events:
            if event.kind == "link_slow" \
                    and event.matches_route(src, dst, directed=False):
                factor *= event.factor
        return factor

    def route_down(self, src: int, dst: int) -> bool:
        _oracle_note("route_down")
        return any(e.kind == "link_down"
                   and e.matches_route(src, dst, directed=False)
                   for e in self.events)

    def any_faults(self) -> bool:
        _oracle_note("any_faults")
        return bool(self.events)

    # -- control-plane notices (NOT oracle reads) ---------------------------
    #
    # Preemption warnings and provisioning callbacks are messages a real
    # cluster *receives* — the cloud delivers the 2-minute reclaim
    # notice to the instance, the autoscaler announces the machine it
    # just booted.  Supervised decision paths may therefore consume
    # these without tripping ``oracle_guard`` (HLT003/ELA batteries
    # still certify zero reads of the physics queries above).

    def preempt_notices(self) -> tuple[tuple[int, int], ...]:
        """Delivered reclaim notices: ``(rank, deadline_step)`` pairs."""
        return tuple(sorted(
            (e.rank, e.deadline) for e in self.events
            if e.kind == "preempt_warning" and e.rank is not None))

    def provision_notices(self) -> tuple[tuple[int, int, str], ...]:
        """Machines up by this step: ``(rank, boot_step, gpu)`` triples."""
        return tuple(sorted(
            (e.rank, e.start, e.gpu or "") for e in self.events
            if e.kind == "provision" and e.rank is not None))


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault occurrence (the unit of the determinism log)."""

    step: int
    kind: str
    detail: tuple[tuple[str, object], ...]   # sorted key/value pairs

    def to_dict(self) -> dict:
        out: dict = {"step": self.step, "kind": self.kind}
        out.update(dict(self.detail))
        return out


class PlanRuntime:
    """A plan bound to its generator, policy, counters and event log.

    One runtime drives one campaign: :meth:`advance` moves the step
    cursor (the injectors read :meth:`faults` for the current step), all
    randomness flows through ``self.rng`` (seeded from the plan), and
    every injected occurrence is appended to ``self.records`` so two
    runs under one seed can be compared byte-for-byte.
    """

    def __init__(self, plan: FaultPlan,
                 policy: ResiliencePolicy | None = None):
        self.plan = plan
        self.policy = policy or ResiliencePolicy()
        self.rng = np.random.default_rng(plan.seed)
        self.counters = FaultCounters()
        self.records: list[FaultRecord] = []
        self.step = 0
        self._faults = plan.at_step(0)
        self._dead_prev: set[int] = set()

    def advance(self, step: int | None = None) -> StepFaults:
        """Move to ``step`` (default: next); logs crash/rejoin edges."""
        self.step = self.step + 1 if step is None else step
        self._faults = self.plan.at_step(self.step)
        dead = self._faults.dead_ranks()
        reclaimed = {e.rank for e in self._faults.events
                     if e.kind == "preempt_warning" and e.rank is not None
                     and self.step >= e.deadline}
        for rank in sorted(dead - self._dead_prev):
            if rank in reclaimed:
                # the provider took the machine back at its deadline —
                # a distinct log edge so drain audits can tell a spot
                # reclaim from an unplanned crash
                self.record("spot_reclaim", rank=rank)
                self.counters.spot_reclaims += 1
            else:
                self.record("crash", rank=rank)
                self.counters.crashes += 1
        for rank in sorted(self._dead_prev - dead):
            self.record("rejoin", rank=rank)
            self.counters.rejoins += 1
        self._dead_prev = dead
        if dead:
            self.counters.crashed_steps += 1
        return self._faults

    def faults(self) -> StepFaults:
        """The active faults at the current step cursor."""
        return self._faults

    def record(self, kind: str, **detail) -> None:
        """Append one occurrence to the deterministic event log."""
        self.records.append(
            FaultRecord(self.step, kind, tuple(sorted(detail.items())))
        )

    def log_bytes(self) -> bytes:
        """Canonical byte encoding of the event log (determinism check)."""
        payload = {
            "plan": self.plan.to_dict(),
            "records": [r.to_dict() for r in self.records],
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")


# -- named campaigns ---------------------------------------------------------

def _straggler_campaign(world: int, seed: int) -> FaultPlan:
    """A tolerated 1.6x straggler plus a transient one over budget.

    The persistent straggler stays under the default 2.0x budget (the
    step just waits); the transient 2.5x one exceeds it, so the policy
    demotes that rank to carry-buffer quorum mode for those steps.
    """
    last = world - 1
    events = [straggler(2, None, rank=last, factor=1.6)]
    if world > 2:
        events.append(straggler(6, 10, rank=0, factor=2.5))
    return FaultPlan("straggler", world, seed, tuple(events))


def _lossy_link_campaign(world: int, seed: int) -> FaultPlan:
    """Transient loss + corruption on every route, one slow link."""
    events = (
        message_loss(1, None, probability=0.12),
        payload_corruption(1, None, probability=0.08),
        link_slowdown(3, None, factor=2.0, src=0, dst=1),
    )
    return FaultPlan("lossy-link", world, seed, events)


def _crash_rejoin_campaign(world: int, seed: int) -> FaultPlan:
    """The last rank dies mid-run and rejoins a few steps later."""
    last = world - 1
    events = [crash(rank=last, at=4, rejoin=9)]
    if world > 3:
        events.append(straggler(9, None, rank=0, factor=1.2))
    return FaultPlan("crash-rejoin", world, seed, tuple(events))


#: campaign name -> plan factory (world, seed) -> FaultPlan
CAMPAIGNS: dict = {
    "straggler": _straggler_campaign,
    "lossy-link": _lossy_link_campaign,
    "crash-rejoin": _crash_rejoin_campaign,
}


def make_campaign(name: str, world: int = 4, seed: int = 0) -> FaultPlan:
    """Build a named chaos campaign for ``world`` ranks."""
    if name not in CAMPAIGNS:
        raise KeyError(f"unknown campaign {name!r}; "
                       f"choose from {sorted(CAMPAIGNS)}")
    return CAMPAIGNS[name](world, seed)

"""Autonomous failure detection: heartbeats, phi-accrual, supervision.

PR 3's recovery machinery is oracle-driven — the trainer and
:func:`~repro.faults.policy.select_participants` read crash/straggler
facts straight out of the injected :class:`~repro.faults.plan.FaultPlan`,
which no real deployment can do.  This module closes the loop with the
three pieces a real cluster uses:

* :class:`HeartbeatTransport` — each rank emits one heartbeat per step
  after finishing its (possibly straggler-stretched) compute; the beat
  rides the simulated timed network path to the monitor rank, subject
  to the same link slowdowns, outages and one-shot message loss the
  data path sees.  Heartbeats are fire-and-forget (no retransmit):
  silence *is* the failure signal.
* :class:`HealthMonitor` — a per-rank **phi-accrual failure detector**
  (Hayashibara et al.): the inter-arrival history of each rank's beats
  yields a suspicion score ``phi = -log10 P(gap this long | history)``,
  classified into ``healthy`` / ``flaky`` / ``straggler`` / ``crashed``.
  Straggler classification is cross-sectional: a rank whose
  schedule-relative arrival offset exceeds ``straggler_ratio`` times
  the fleet median for ``straggler_patience`` consecutive assessments
  is demoted-eligible.  Everything is seeded and deterministic.
* :class:`Supervisor` — consumes detector verdicts (never the fault
  plan) and decides: the step's quorum, straggler demotions, rejoin
  admission after ``rejoin_confirmations`` healthy beats (the trainer
  then runs peer state transfer), and escalation to a durable
  checkpoint restore once a rank has flapped crash/rejoin
  ``escalation_flaps`` times.

The :class:`~repro.training.trainer.DataParallelTrainer` wires these in
behind ``supervised=True``; the oracle path stays as the calibration
baseline.  The HLT001..HLT005 battery in :mod:`repro.analysis.health`
certifies detection latency, zero false positives on fault-free runs,
and convergence parity with the oracle path.
"""

from __future__ import annotations

import math
import statistics
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Callable

from repro.cluster.topology import Topology, nvlink_mesh

from .inject import FaultyNetwork
from .plan import PlanRuntime
from .policy import ResiliencePolicy

__all__ = ["VERDICTS", "HealthPolicy", "PhiAccrualDetector", "RankHealth",
           "HealthMonitor", "HeartbeatTransport", "Supervisor",
           "SupervisorDecision"]

#: every state the detector can assign a rank
VERDICTS = ("healthy", "flaky", "straggler", "crashed")


@dataclass(frozen=True)
class HealthPolicy:
    """Detector and supervision tuning for one supervised campaign.

    Attributes:
        interval: nominal heartbeat period in simulated seconds (one
            beat per training step).
        compute_cost: fraction of ``interval`` a healthy step spends
            before its beat is emitted; a rank whose compute is
            stretched by factor *f* emits at ``f * compute_cost``
            intervals, which is the signal straggler detection reads.
        heartbeat_bytes: wire size of one beat (tiny — transit time is
            negligible next to compute, by design).
        window: inter-arrival samples the phi estimator keeps per rank.
        min_history: beats required before the sample mean replaces the
            nominal interval in the phi model.
        sigma_floor: lower bound on the inter-arrival std-dev, as a
            fraction of ``interval``; keeps phi finite when the history
            is metronome-regular.
        phi_suspect: phi at which a rank is classified ``flaky``.
        phi_crash: phi at which a rank is classified ``crashed``
            (defaults require roughly two consecutive missed beats).
        bootstrap_timeout: intervals a never-heard-from rank is granted
            before it is declared crashed-from-start.
        reset_gap: silence longer than this many mean intervals resets
            a rank's history when beats resume (rejoin), so the outage
            gap does not poison the phi model.
        straggler_ratio: schedule-offset multiple of the fleet median
            beyond which a rank counts as late.
        straggler_patience: consecutive late assessments before the
            ``straggler`` verdict is issued.
        rejoin_confirmations: healthy assessments a believed-crashed
            rank must string together before re-admission.
        escalation_flaps: crash suspicions for one rank before the
            supervisor escalates to a durable checkpoint restore.
        checkpoint_every: steps between durable checkpoints when a
            store is attached to the trainer.
    """

    interval: float = 1.0
    compute_cost: float = 0.5
    heartbeat_bytes: int = 256
    window: int = 16
    min_history: int = 3
    sigma_floor: float = 0.3
    phi_suspect: float = 1.5
    phi_crash: float = 5.0
    bootstrap_timeout: float = 3.0
    reset_gap: float = 3.0
    straggler_ratio: float = 2.0
    straggler_patience: int = 2
    rejoin_confirmations: int = 2
    escalation_flaps: int = 3
    checkpoint_every: int = 5

    def __post_init__(self) -> None:
        for name in ("interval", "compute_cost", "sigma_floor",
                     "bootstrap_timeout", "reset_gap"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("heartbeat_bytes", "window", "min_history",
                     "straggler_patience", "rejoin_confirmations",
                     "escalation_flaps", "checkpoint_every"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.phi_suspect <= 0 or self.phi_crash <= self.phi_suspect:
            raise ValueError("need 0 < phi_suspect < phi_crash")
        if self.straggler_ratio <= 1.0:
            raise ValueError("straggler_ratio must be > 1")


class PhiAccrualDetector:
    """Phi-accrual suspicion for one rank (Hayashibara et al. 2004).

    Keeps a sliding window of heartbeat inter-arrival times; ``phi(now)``
    is ``-log10`` of the probability that a correct process would stay
    silent for the current gap under a normal model of that history.
    phi ~ 1 means a 10% chance the rank is fine, ~3 means 0.1%.
    """

    def __init__(self, policy: HealthPolicy):
        self.policy = policy
        self.last: float | None = None
        self.intervals: deque[float] = deque(maxlen=policy.window)

    @property
    def beats_seen(self) -> int:
        return self._beats

    _beats = 0

    def heartbeat(self, arrival: float) -> None:
        """Record one beat arriving at ``arrival`` (monotone times)."""
        if self.last is not None:
            self.intervals.append(max(arrival - self.last, 0.0))
        self.last = arrival
        self._beats += 1

    def reset(self) -> None:
        """Forget the inter-arrival history (rejoin after an outage)."""
        self.intervals.clear()
        self.last = None

    def mean_interval(self) -> float:
        if len(self.intervals) >= self.policy.min_history:
            return statistics.fmean(self.intervals)
        return self.policy.interval

    def _sigma(self) -> float:
        floor = self.policy.sigma_floor * self.policy.interval
        if len(self.intervals) >= self.policy.min_history:
            return max(statistics.pstdev(self.intervals), floor)
        return floor

    def phi(self, now: float) -> float:
        """Suspicion that the rank is gone, evaluated at time ``now``."""
        if self.last is None:
            return 0.0
        gap = now - self.last
        mean = self.mean_interval()
        if gap <= mean:
            return 0.0
        z = (gap - mean) / (self._sigma() * math.sqrt(2.0))
        p_later = 0.5 * math.erfc(z)
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)


@dataclass(frozen=True)
class RankHealth:
    """One rank's assessment at the end of a step window."""

    rank: int
    verdict: str          # one of VERDICTS
    phi: float            # accrued suspicion at assessment time
    lag: float            # schedule-offset ratio vs the fleet median
    beats_seen: int
    last_arrival: float | None


class HealthMonitor:
    """World-wide heartbeat bookkeeping and per-rank classification.

    One :meth:`observe` call per training step: beats that arrived
    within the step window are delivered to the per-rank detectors
    (late beats stay pending and deliver in a later window — which is
    exactly the straggler signature), then every rank is assessed at
    the window's end.
    """

    def __init__(self, world: int, health: HealthPolicy | None = None):
        if world < 1:
            raise ValueError("world must be >= 1")
        self.world = world
        self.health = health or HealthPolicy()
        self._detectors = [PhiAccrualDetector(self.health)
                           for _ in range(world)]
        self._pending: list[tuple[float, int, int]] = []  # (arrival, seq, rank)
        self._offset: list[float | None] = [None] * world
        self._late_streak = [0] * world
        # boot time per rank: the bootstrap grace window counts from
        # here, so a machine provisioned at step 40 is not instantly
        # "crashed-from-start" (elastic growth support)
        self._activated: list[float] = [0.0] * world

    def grow(self, world: int) -> None:
        """Extend the detector arrays to a larger elastic capacity."""
        while self.world < world:
            self._detectors.append(PhiAccrualDetector(self.health))
            self._offset.append(None)
            self._late_streak.append(0)
            self._activated.append(0.0)
            self.world += 1

    def activate(self, rank: int, step: int) -> None:
        """A machine for ``rank`` booted at ``step``: start its grace
        clock there instead of at the beginning of the run."""
        if rank >= self.world:
            self.grow(rank + 1)
        self._activated[rank] = step * self.health.interval

    def deactivate(self, rank: int) -> None:
        """Forget a departed rank's history entirely (graceful exit)."""
        self._detectors[rank] = PhiAccrualDetector(self.health)
        self._offset[rank] = None
        self._late_streak[rank] = 0
        self._activated[rank] = 0.0

    def observe(self, step: int, arrivals: dict[int, float | None]
                ) -> dict[int, RankHealth]:
        """Ingest the step's beats and assess every rank.

        ``arrivals`` maps rank -> arrival time at the monitor (``None``
        when the beat was lost or never emitted), as produced by
        :meth:`HeartbeatTransport.beats`.
        """
        h = self.health
        assess_t = (step + 1) * h.interval
        for rank in sorted(arrivals):
            arrival = arrivals[rank]
            if arrival is not None:
                self._pending.append((arrival, step, rank))
        due = sorted(p for p in self._pending if p[0] <= assess_t)
        self._pending = [p for p in self._pending if p[0] > assess_t]
        for arrival, seq, rank in due:
            detector = self._detectors[rank]
            if detector.last is not None and \
                    arrival - detector.last > h.reset_gap * max(
                        detector.mean_interval(), h.interval):
                # beats resumed after a long outage: the gap is not an
                # inter-arrival sample, it is a rejoin edge
                detector.reset()
                self._offset[rank] = None
            detector.heartbeat(arrival)
            offset = max(arrival - seq * h.interval, 0.0)
            prev = self._offset[rank]
            self._offset[rank] = offset if prev is None \
                else 0.5 * prev + 0.5 * offset
        # assess exactly the ranks the transport reported on — under a
        # fixed world that is every rank; under elastic membership it
        # is the machines that currently exist
        return {rank: self._assess(rank, assess_t)
                for rank in sorted(arrivals)}

    def _base_offset(self) -> float:
        known = [o for o in self._offset if o is not None]
        if not known:
            return self.health.compute_cost * self.health.interval
        return max(statistics.median(known), 1e-9)

    def _assess(self, rank: int, assess_t: float) -> RankHealth:
        h = self.health
        detector = self._detectors[rank]
        if detector.beats_seen == 0:
            # never heard from: grant the bootstrap grace (counted from
            # the rank's boot time), then declare it crashed-from-start
            crashed = assess_t - self._activated[rank] \
                >= h.bootstrap_timeout * h.interval
            return RankHealth(rank, "crashed" if crashed else "healthy",
                              float("inf") if crashed else 0.0, 1.0, 0, None)
        phi = detector.phi(assess_t)
        offset = self._offset[rank]
        lag = 1.0 if offset is None else offset / self._base_offset()
        if phi >= h.phi_crash:
            self._late_streak[rank] = 0
            return RankHealth(rank, "crashed", phi, lag,
                              detector.beats_seen, detector.last)
        if lag >= h.straggler_ratio:
            self._late_streak[rank] += 1
        else:
            self._late_streak[rank] = 0
        if self._late_streak[rank] >= h.straggler_patience:
            verdict = "straggler"
        elif phi >= h.phi_suspect:
            verdict = "flaky"
        else:
            verdict = "healthy"
        return RankHealth(rank, verdict, phi, lag,
                          detector.beats_seen, detector.last)

    def reset(self) -> None:
        """Fresh detectors (after an escalation restore rewinds time)."""
        self._detectors = [PhiAccrualDetector(self.health)
                           for _ in range(self.world)]
        self._pending.clear()
        self._offset = [None] * self.world
        self._late_streak = [0] * self.world
        self._activated = [0.0] * self.world


class HeartbeatTransport:
    """Emits per-step heartbeats over the simulated timed network.

    Each live rank emits one beat after its (fault-stretched) compute;
    the beat is a fire-and-forget message on the
    :class:`~repro.faults.inject.FaultyNetwork` timed path, so link
    slowdowns delay it, downed routes and one-shot loss draws drop it,
    and a crashed rank emits nothing at all.  The transport is the
    *environment*: it reads the plan because it simulates reality — the
    supervisor only ever sees the resulting arrival times.
    """

    def __init__(self, runtime: PlanRuntime, world: int,
                 health: HealthPolicy | None = None, monitor_rank: int = 0,
                 topology: Topology | None = None,
                 capacity: int | None = None):
        if not 0 <= monitor_rank < world:
            raise ValueError("monitor_rank out of range")
        if capacity is not None and capacity < world:
            raise ValueError("capacity must be >= world")
        self.runtime = runtime
        self.world = world
        self.capacity = capacity or world
        self.health = health or HealthPolicy()
        self.monitor_rank = monitor_rank
        # the fabric is provisioned for the elastic peak up front, so a
        # machine joining mid-run finds its links already modeled
        self.network = FaultyNetwork(
            topology or nvlink_mesh(max(2, self.capacity)), "shm", runtime)

    def beats(self, step: int, ranks: "list[int] | None" = None,
              compute_scale_of: "Callable[[int], float] | None" = None
              ) -> dict[int, float | None]:
        """Arrival time at the monitor of each rank's beat for ``step``.

        ``ranks`` restricts emission to the machines that currently
        exist (elastic membership; default: the fixed world), and
        ``compute_scale_of`` layers a per-rank heterogeneous GPU
        envelope on top of the plan's straggler scaling — a slower
        provisioned machine emits later, which is exactly the signal
        the cross-sectional straggler detector reads.
        """
        h = self.health
        runtime = self.runtime
        faults = runtime.faults()
        now = step * h.interval
        dead = faults.dead_ranks()
        out: dict[int, float | None] = {}
        emits = []
        for rank in (range(self.world) if ranks is None else sorted(ranks)):
            if rank in dead:
                out[rank] = None     # a dead process emits nothing
                continue
            scale = faults.compute_scale(rank)
            if compute_scale_of is not None:
                scale *= compute_scale_of(rank)
            emits.append((now + h.compute_cost * h.interval * scale, rank))
        # beats enter the wire in emission order: the store-and-forward
        # pool serves requests in call order, so a straggler's late beat
        # must not queue ahead of a healthy rank's earlier one
        for emit, rank in sorted(emits):
            if rank == self.monitor_rank:
                arrival: float | None = emit   # loopback never drops
            else:
                arrival = self.network.transfer_unreliable(
                    rank, self.monitor_rank, h.heartbeat_bytes, emit)
            if arrival is None:
                runtime.counters.heartbeat_misses += 1
                runtime.record("hb_lost", rank=rank)
            else:
                runtime.counters.heartbeats += 1
            out[rank] = arrival
        return out


@dataclass(frozen=True)
class SupervisorDecision:
    """What the supervisor decided for one step, from observations only."""

    step: int
    participants: tuple[int, ...]       # this step's reduction quorum
    believed_dead: frozenset[int]       # ranks currently suspected crashed
    admitted: tuple[int, ...]           # re-admitted this step (state transfer)
    demoted: tuple[int, ...]            # stragglers excluded this step
    newly_suspected: tuple[int, ...]    # fresh crash suspicions this step
    escalate: bool                      # restore from the durable store


class Supervisor:
    """Observation-driven recovery decisions (never reads the plan).

    Consumes :class:`RankHealth` verdicts and maintains the belief
    state: who is dead, who is rejoining, who keeps flapping.  The
    trainer applies the returned :class:`SupervisorDecision`; all
    events are appended to the runtime's deterministic log.
    """

    def __init__(self, world: int, policy: ResiliencePolicy | None = None,
                 health: HealthPolicy | None = None,
                 runtime: PlanRuntime | None = None):
        self.world = world
        self.policy = policy or ResiliencePolicy()
        self.health = health or HealthPolicy()
        self.runtime = runtime
        self.believed_dead: set[int] = set()
        self.flaps: dict[int, int] = defaultdict(int)
        self._pending_rejoin: dict[int, int] = defaultdict(int)
        self._provisional: set[int] = set()

    def _record(self, kind: str, **detail: object) -> None:
        if self.runtime is not None:
            self.runtime.record(kind, **detail)

    def register_provision(self, rank: int) -> None:
        """A provisioned machine is booting: vet it through the rejoin
        confirmation path (``rejoin_confirmations`` healthy beats)
        before the coordinator may admit it — world growth is driven by
        observed heartbeats, never by the plan."""
        self._provisional.add(rank)
        self.believed_dead.add(rank)

    def mark_departed(self, rank: int) -> None:
        """Forget a gracefully departed member entirely."""
        self.believed_dead.discard(rank)
        self.flaps.pop(rank, None)
        self._pending_rejoin.pop(rank, None)
        self._provisional.discard(rank)

    def decide(self, step: int, cards: dict[int, RankHealth]
               ) -> SupervisorDecision:
        """One step's verdict-driven membership and escalation decision."""
        counters = self.runtime.counters if self.runtime is not None else None
        admitted: list[int] = []
        newly: list[int] = []
        for rank in sorted(cards):
            card = cards[rank]
            if rank in self.believed_dead:
                if card.verdict == "healthy":
                    self._pending_rejoin[rank] += 1
                    if self._pending_rejoin[rank] \
                            >= self.health.rejoin_confirmations:
                        self.believed_dead.discard(rank)
                        self._pending_rejoin[rank] = 0
                        admitted.append(rank)
                        if rank in self._provisional:
                            self._provisional.discard(rank)
                            self._record("confirm_provision", rank=rank)
                        else:
                            self._record("admit_rejoin", rank=rank)
                            if counters is not None:
                                counters.rejoin_admissions += 1
                else:
                    self._pending_rejoin[rank] = 0
            elif card.verdict == "crashed":
                self.believed_dead.add(rank)
                self.flaps[rank] += 1
                newly.append(rank)
                self._record("suspect_crash", rank=rank)
                if counters is not None:
                    counters.suspected_crashes += 1

        # membership decisions range over the assessed set — the fixed
        # world in classic supervised runs, the machines that currently
        # exist under elastic membership
        assessed = sorted(cards)
        demoted = [r for r in assessed
                   if r not in self.believed_dead
                   and cards[r].verdict == "straggler"]
        participants = [r for r in assessed
                        if r not in self.believed_dead and r not in demoted]
        floor = max(1, math.ceil(
            self.policy.min_quorum_fraction * max(len(assessed), 1)))
        if len(participants) < floor and demoted:
            readmit = sorted(demoted, key=lambda r: (cards[r].lag, r))
            while len(participants) < floor and readmit:
                rank = readmit.pop(0)
                demoted.remove(rank)
                participants.append(rank)
            participants.sort()
        if not participants:
            alive = [r for r in assessed if r not in self.believed_dead]
            participants = alive[:1] if alive else assessed[:1] or [0]
        for rank in demoted:
            self._record("demote_straggler", rank=rank)
            if counters is not None:
                counters.straggler_demotions += 1

        escalate = False
        for rank in sorted(self.flaps):
            if self.flaps[rank] >= self.health.escalation_flaps:
                escalate = True
                self.flaps[rank] = 0
                self._record("escalate", rank=rank)
        return SupervisorDecision(
            step=step,
            participants=tuple(participants),
            believed_dead=frozenset(self.believed_dead),
            admitted=tuple(admitted),
            demoted=tuple(demoted),
            newly_suspected=tuple(newly),
            escalate=escalate,
        )

    def reset(self) -> None:
        """Forget all beliefs (after an escalation restore rewinds time)."""
        self.believed_dead.clear()
        self.flaps.clear()
        self._pending_rejoin.clear()
        self._provisional.clear()

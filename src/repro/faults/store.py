"""Crash-consistent durable checkpoint store.

A checkpoint that dies with the process it was meant to protect is
worthless, so every write here is torn-write-safe: the file is staged
as ``<name>.tmp``, flushed and fsync'd, then published with an atomic
:func:`os.replace`.  A reader can never observe a half-written
checkpoint under its final name; a crash mid-write leaves only a stray
``.tmp`` that the next save sweeps away.

On-disk format (single self-validating file per checkpoint)::

    magic    4 bytes   b"RPH1"
    mlen     8 bytes   little-endian manifest length
    manifest mlen      JSON: schema version, step, object skeleton,
                       per-blob name/dtype/shape/offset/nbytes/crc32
    mcrc     4 bytes   little-endian CRC32 of the manifest bytes
    payload  variable  all array blobs, concatenated

Every array's bytes carry their own CRC32 and the manifest carries its
own, so truncation, bit-rot, and garbled regions are all detected at
load time (:class:`CheckpointCorrupt`).  :meth:`CheckpointStore.load_latest`
walks checkpoints newest-first and falls back to the newest *valid*
one, which is the recovery contract the supervisor's escalation path
relies on.  The store retains the last ``keep`` checkpoints.

State capture is a JSON-compatible skeleton in which every
:class:`numpy.ndarray` is swapped for a blob reference; everything the
trainer needs for bit-identical resume (weights, optimizer state, step
index, RNG stream states, data-order cursor, engine residual/carry
state) fits this shape.  JSON round-trips dict keys as strings and
tuples as lists; callers that need richer keys encode them themselves
(the optimizer and engine state dicts already do).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any

import numpy as np

__all__ = ["MAGIC", "SCHEMA_VERSION", "CheckpointCorrupt", "CheckpointStore"]

MAGIC = b"RPH1"
SCHEMA_VERSION = 1
_BLOB_KEY = "__blob__"


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file failed validation (torn write, bit-rot, ...)."""


def _flatten(node: Any, blobs: list[np.ndarray]) -> Any:
    """Replace every ndarray in a nested structure by a blob reference."""
    if isinstance(node, np.ndarray):
        blobs.append(np.ascontiguousarray(node))
        return {_BLOB_KEY: len(blobs) - 1}
    if isinstance(node, np.generic):
        return node.item()
    if isinstance(node, dict):
        if _BLOB_KEY in node:
            raise ValueError(f"state may not contain the key {_BLOB_KEY!r}")
        return {str(k): _flatten(v, blobs) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_flatten(v, blobs) for v in node]
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"unsupported state type: {type(node).__name__}")


def _unflatten(node: Any, blobs: list[np.ndarray]) -> Any:
    """Inverse of :func:`_flatten` given the decoded blob list."""
    if isinstance(node, dict):
        if set(node) == {_BLOB_KEY}:
            return blobs[node[_BLOB_KEY]]
        return {k: _unflatten(v, blobs) for k, v in node.items()}
    if isinstance(node, list):
        return [_unflatten(v, blobs) for v in node]
    return node


class CheckpointStore:
    """Durable, self-validating checkpoints under one directory."""

    def __init__(self, root: str, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = root
        self.keep = keep
        os.makedirs(root, exist_ok=True)

    # -- paths ---------------------------------------------------------

    def path_for(self, step: int) -> str:
        return os.path.join(self.root, f"ckpt-{step:08d}.ckpt")

    def steps(self) -> list[int]:
        """Steps with a published checkpoint file, ascending."""
        out = []
        for name in os.listdir(self.root):
            if name.startswith("ckpt-") and name.endswith(".ckpt"):
                try:
                    out.append(int(name[5:-5]))
                except ValueError:
                    continue
        return sorted(out)

    # -- write ---------------------------------------------------------

    def save(self, state: Any, step: int) -> str:
        """Atomically persist ``state`` for ``step``; returns the path."""
        blobs: list[np.ndarray] = []
        skeleton = _flatten(state, blobs)
        offset = 0
        entries = []
        for i, arr in enumerate(blobs):
            raw = arr.tobytes()
            entries.append({
                "name": f"blob{i}",
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": len(raw),
                "crc32": zlib.crc32(raw),
            })
            offset += len(raw)
        manifest = json.dumps({
            "schema": SCHEMA_VERSION,
            "step": step,
            "state": skeleton,
            "blobs": entries,
            "payload_nbytes": offset,
        }, sort_keys=True).encode()

        final = self.path_for(step)
        tmp = final + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(len(manifest).to_bytes(8, "little"))
            fh.write(manifest)
            fh.write(zlib.crc32(manifest).to_bytes(4, "little"))
            for arr in blobs:
                fh.write(arr.tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[:-self.keep] if len(steps) > self.keep else []:
            os.remove(self.path_for(step))
        for name in os.listdir(self.root):
            if name.endswith(".ckpt.tmp"):   # stray torn write
                os.remove(os.path.join(self.root, name))

    # -- read ----------------------------------------------------------

    def load(self, step: int) -> Any:
        """Load and fully validate the checkpoint for ``step``."""
        path = self.path_for(step)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CheckpointCorrupt(f"{path}: unreadable: {exc}") from exc
        if len(data) < 16 or data[:4] != MAGIC:
            raise CheckpointCorrupt(f"{path}: bad magic")
        mlen = int.from_bytes(data[4:12], "little")
        head = 12 + mlen + 4
        if len(data) < head:
            raise CheckpointCorrupt(f"{path}: truncated manifest")
        manifest_raw = data[12:12 + mlen]
        mcrc = int.from_bytes(data[12 + mlen:head], "little")
        if zlib.crc32(manifest_raw) != mcrc:
            raise CheckpointCorrupt(f"{path}: manifest CRC mismatch")
        manifest = json.loads(manifest_raw)
        if manifest.get("schema") != SCHEMA_VERSION:
            raise CheckpointCorrupt(
                f"{path}: schema {manifest.get('schema')!r} != "
                f"{SCHEMA_VERSION}")
        payload = data[head:]
        if len(payload) != manifest["payload_nbytes"]:
            raise CheckpointCorrupt(
                f"{path}: payload is {len(payload)} bytes, manifest "
                f"says {manifest['payload_nbytes']}")
        blobs: list[np.ndarray] = []
        for entry in manifest["blobs"]:
            raw = payload[entry["offset"]:entry["offset"] + entry["nbytes"]]
            if len(raw) != entry["nbytes"]:
                raise CheckpointCorrupt(
                    f"{path}: blob {entry['name']} truncated")
            if zlib.crc32(raw) != entry["crc32"]:
                raise CheckpointCorrupt(
                    f"{path}: blob {entry['name']} CRC mismatch")
            arr = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
            blobs.append(arr.reshape(entry["shape"]).copy())
        return _unflatten(manifest["state"], blobs)

    def load_latest(self, on_corrupt: Any = None) -> tuple[int, Any] | None:
        """Newest *valid* checkpoint as ``(step, state)``, or ``None``.

        Corrupt files are skipped (newest-first) rather than fatal;
        ``on_corrupt(step, exc)`` is invoked for each one so callers
        can count or log the detection.
        """
        for step in reversed(self.steps()):
            try:
                return step, self.load(step)
            except CheckpointCorrupt as exc:
                if on_corrupt is not None:
                    on_corrupt(step, exc)
        return None

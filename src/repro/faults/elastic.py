"""Elastic membership: spot-preemption drain and autoscale growth.

The fault runtime through PR 5 *survives* a fixed world — crashed ranks
are carried by the quorum machinery and rejoin through peer state
transfer — but the world itself never changes size.  This module adds
the two cloud-economics events that change it:

* **Spot preemption** — the provider delivers a ``preempt_warning``
  (the "2-minute warning") to one machine; the trainer keeps the rank
  participating while the engine's :class:`~repro.collectives.partial.
  PartialAllreduce` carries drain, checkpoints through the attached
  :class:`~repro.faults.store.CheckpointStore`, and removes the rank
  from membership *before* the deadline.  A rank that cannot drain in
  time (quorum floor, concurrent crash) degrades to the existing crash
  path: the plan's physics kills it at the deadline and the carry
  machinery absorbs it, so behavior is never worse than a crash.
* **Autoscale provisioning** — a ``provision`` event boots a fresh
  machine with a heterogeneous GPU envelope from
  :data:`repro.cluster.gpu.GPUS`.  The new rank is admitted through the
  existing rejoin state-transfer path (warm start from a live peer); in
  supervised mode admission additionally waits for the
  :class:`~repro.faults.health.Supervisor` to confirm the machine's
  heartbeats healthy, so growth is observation-driven, not oracular.

The :class:`ElasticCoordinator` is the control plane.  It consumes only
*delivered notices* (:meth:`~repro.faults.plan.StepFaults.
preempt_notices` / :meth:`~repro.faults.plan.StepFaults.
provision_notices`) plus the engine's drain status — never the fault
physics — so the supervised mode's zero-oracle-read guarantee (HLT003)
survives elasticity.  Every membership transition lands in the
runtime's canonical byte-identical event log; the ELA001..ELA005
battery in :mod:`repro.analysis.elastic` certifies the protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.cluster.gpu import get_gpu

from .plan import (CAMPAIGNS, FaultPlan, FaultRecord, PlanRuntime, StepFaults,
                   preempt_warning, provision, straggler)
from .policy import ResiliencePolicy

__all__ = ["DEFAULT_GPU", "DRAIN_TOLERANCE", "ElasticDecision",
           "ElasticCoordinator", "elastic_events", "fleet_alpha_scale",
           "gpu_compute_scale", "check_drain_protocol",
           "spot_churn_campaign", "autoscale_burst_campaign"]

#: the homogeneous baseline fleet (the paper's commodity 8x3090 testbed)
DEFAULT_GPU = "RTX3090"

#: banked carry mass at or below this is "drained" — real gradient
#: norms are many orders of magnitude larger; dead members bank exact
#: zeros, which must not block composition changes
DRAIN_TOLERANCE = 1e-12


def elastic_events(plan: FaultPlan) -> bool:
    """Whether the plan carries any control-plane (elastic) events."""
    return any(e.kind in ("preempt_warning", "provision")
               for e in plan.events)


def gpu_compute_scale(gpu: str, reference: str = DEFAULT_GPU) -> float:
    """Compute-time multiplier of ``gpu`` relative to the reference fleet.

    Anchored on the measured ResNet50 throughput column of Table 1 (the
    calibration every simulated compute time already uses): > 1 means
    the machine is slower, so its heartbeats emit later — a provisioned
    RTX 2080 Ti looks like a mild persistent straggler to the detector,
    exactly as it would in a real mixed fleet.
    """
    return (get_gpu(reference).resnet50_imgs_per_s
            / get_gpu(gpu).resnet50_imgs_per_s)


def fleet_alpha_scale(gpus: Iterable[str], reference: str = DEFAULT_GPU,
                      lo: float = 0.75, hi: float = 1.5) -> float:
    """Adaptive error-budget multiplier for a fleet composition.

    A faster fleet finishes compute sooner and sits communication-bound,
    so the adaptive controller may spend more quantization error to buy
    wire bytes (larger effective ``alpha``); a slower fleet hides
    communication behind compute and should keep gradients crisper.
    The scale is the fleet's mean Table 1 throughput over the reference
    GPU's, clamped to ``[lo, hi]`` so respecs retune the budget without
    ever abandoning the paper's calibrated regime.
    """
    names = list(gpus)
    if not names:
        return 1.0
    ref = get_gpu(reference).resnet50_imgs_per_s
    mean = sum(get_gpu(g).resnet50_imgs_per_s for g in names) / len(names)
    return min(hi, max(lo, mean / ref))


@dataclass(frozen=True)
class ElasticDecision:
    """The coordinator's membership verdict at the top of one step."""

    step: int
    members: tuple[int, ...]     # the world reducing this step
    joined: tuple[int, ...]      # admitted this step (need warm starts)
    draining: tuple[int, ...]    # warned members racing their deadline
    deferred: tuple[int, ...]    # booted machines waiting on drain/confirm


class ElasticCoordinator:
    """Membership state machine for elastic campaigns (control plane).

    Holds the authoritative member set, the draining map (member ->
    absolute deadline step), the departed set and the per-rank GPU
    envelopes.  All decisions are deterministic functions of delivered
    notices, supervisor confirmations and the engine drain flag, and
    every transition is recorded into the runtime's canonical log.

    Composition changes only when the engine holds no banked carry
    mass: :class:`~repro.collectives.partial.PartialAllreduce` carries
    are keyed by buffer index, so resizing the buffer list with mass
    banked would orphan delivered-late gradients (ELA001 certifies none
    ever is).  Graceful exits additionally respect the quorum floor —
    shrinking below ``min_quorum_fraction`` of the initial world is
    deferred until growth restores headroom (the provider can still
    force-reclaim at the deadline; that is the degrade-to-crash path).
    """

    def __init__(self, runtime: PlanRuntime, world: int,
                 supervised: bool = False,
                 default_gpu: str = DEFAULT_GPU) -> None:
        plan = runtime.plan
        if plan.world != world:
            raise ValueError(f"plan is for world {plan.world}, "
                             f"coordinator built for {world}")
        self.runtime = runtime
        self.policy: ResiliencePolicy = runtime.policy
        self.world = world
        self.capacity = plan.max_world
        self.supervised = supervised
        self.members: set[int] = set(range(world))
        self.rank_gpus: dict[int, str] = {r: default_gpu
                                          for r in range(world)}
        self.draining: dict[int, int] = {}   # member -> deadline step
        self.departed: set[int] = set()
        self.degraded: set[int] = set()      # missed deadline: crash path
        self._pending: dict[int, str] = {}   # booted, not yet admitted
        self._confirmed: set[int] = set()    # supervisor-confirmed machines
        self._announced: set[int] = set()
        self._warned: set[int] = set()
        #: per-step membership trace, ``(step, members)`` — ELA001 input
        self.history: list[tuple[int, tuple[int, ...]]] = []
        self.min_members = max(1, math.ceil(
            self.policy.min_quorum_fraction * world))

    # -- queries ------------------------------------------------------------
    def member_list(self) -> list[int]:
        return sorted(self.members)

    def machine_ranks(self) -> list[int]:
        """Every machine that exists: members plus booting pending ones.

        These are the heartbeat emitters in supervised mode — a
        provisioned machine beats while the supervisor vets it, exactly
        like a rejoining rank.
        """
        return sorted(self.members | set(self._pending))

    def is_provisioned(self, rank: int) -> bool:
        """Whether ``rank`` entered (or will enter) via a provision."""
        return rank in self._announced

    def gpu_scale(self, rank: int) -> float:
        """Heterogeneous compute envelope of ``rank`` (1.0 = reference).

        Pending machines already carry their envelope — a slow GPU is
        slow while the supervisor vets it, too.
        """
        gpu = self.rank_gpus.get(rank) or self._pending.get(rank, DEFAULT_GPU)
        return gpu_compute_scale(gpu)

    # -- per-step protocol --------------------------------------------------
    def poll_notices(self, step: int, faults: StepFaults) -> tuple[int, ...]:
        """Ingest this step's delivered notices; returns new machines.

        New provisions move to the pending (booting) set and are
        recorded; new warnings start the drain clock on members.  A
        warning for a machine that never joined simply cancels it.
        """
        runtime = self.runtime
        booted: list[int] = []
        for rank, _, gpu in faults.provision_notices():
            if rank in self._announced:
                continue
            self._announced.add(rank)
            self._pending[rank] = gpu
            booted.append(rank)
            runtime.record("provision", rank=rank, gpu=gpu)
            runtime.counters.provisions += 1
        for rank, deadline in faults.preempt_notices():
            if rank in self._warned:
                continue
            self._warned.add(rank)
            if rank not in self.members:
                # warned before admission: the machine is reclaimed
                # without ever having joined the world
                self._pending.pop(rank, None)
                self._confirmed.discard(rank)
                self.departed.add(rank)
                runtime.record("preempt_unjoined", rank=rank)
                continue
            self.draining[rank] = deadline
            runtime.record("preempt_warning", rank=rank, deadline=deadline)
            runtime.counters.preempt_warnings += 1
        return tuple(booted)

    def confirm(self, ranks: Iterable[int]) -> None:
        """Supervisor-confirmed machines (healthy-beat admissions)."""
        for rank in ranks:
            if rank in self._pending:
                self._confirmed.add(rank)

    def admit(self, step: int, drained: bool) -> ElasticDecision:
        """Grow the world where gates allow; snapshot the membership.

        A pending machine joins once (a) the engine is drained and (b)
        in supervised mode, the supervisor has confirmed its beats.
        Each rank is admitted at most once ever — re-announcements and
        re-confirmations cannot double-admit (property-tested).
        """
        runtime = self.runtime
        joined: list[int] = []
        if drained:
            for rank in sorted(self._pending):
                if self.supervised and rank not in self._confirmed:
                    continue
                if rank in self.members or rank in self.departed:
                    del self._pending[rank]   # double-admit guard
                    continue
                gpu = self._pending.pop(rank)
                self._confirmed.discard(rank)
                self.members.add(rank)
                self.rank_gpus[rank] = gpu
                joined.append(rank)
                runtime.record("admit_provisioned", rank=rank, gpu=gpu)
                runtime.counters.provision_admissions += 1
        members = tuple(sorted(self.members))
        self.history.append((step, members))
        return ElasticDecision(step=step, members=members,
                               joined=tuple(joined),
                               draining=tuple(sorted(self.draining)),
                               deferred=tuple(sorted(self._pending)))

    def end_step(self, step: int, drained: bool,
                 dead: set[int]) -> tuple[int, ...]:
        """Graceful exits after the step's reduction landed.

        A draining rank departs once the engine holds no banked carry
        mass (its in-flight contribution is fully delivered), provided
        it is alive, ahead of its deadline, and leaving keeps the world
        at or above the quorum floor.  A rank still present at its
        deadline is recorded as a missed drain and degrades to the
        existing crash path — the plan's physics has already killed it.
        """
        runtime = self.runtime
        exited: list[int] = []
        for rank in sorted(self.draining):
            deadline = self.draining[rank]
            can_exit = (rank not in dead and drained and step < deadline
                        and len(self.members) - 1 >= self.min_members)
            if can_exit:
                del self.draining[rank]
                self.members.discard(rank)
                self.departed.add(rank)
                exited.append(rank)
                runtime.record("spot_exit", rank=rank, deadline=deadline)
                runtime.counters.graceful_exits += 1
            elif step >= deadline:
                del self.draining[rank]
                self.degraded.add(rank)
                runtime.record("drain_missed", rank=rank, deadline=deadline)
                runtime.counters.drain_missed += 1
        if exited:
            runtime.record("membership", members=",".join(
                str(r) for r in sorted(self.members)))
        return tuple(exited)


# -- drain-protocol audit (pure; ELA002 and its tamper tests) ---------------

def check_drain_protocol(plan: FaultPlan,
                         records: "Iterable[FaultRecord]") -> list[str]:
    """Audit a campaign's canonical log against the drain protocol.

    Pure function over the plan and the deterministic record log, so a
    tampered run — a warned rank that keeps participating past its
    deadline, a departed rank that reappears — is caught from the log
    alone.  Returns human-readable violation messages (empty = clean).
    """
    records = list(records)
    violations: list[str] = []
    exits: dict[int, int] = {}
    missed: dict[int, int] = {}
    unjoined: set[int] = set()
    for rec in records:
        detail = dict(rec.detail)
        if rec.kind == "spot_exit":
            rank = int(detail["rank"])
            if rank in exits:
                violations.append(
                    f"rank {rank} exited twice (steps {exits[rank]} "
                    f"and {rec.step})")
            exits.setdefault(rank, rec.step)
        elif rec.kind == "drain_missed":
            missed.setdefault(int(detail["rank"]), rec.step)
        elif rec.kind == "preempt_unjoined":
            unjoined.add(int(detail["rank"]))
    for event in plan.events:
        if event.kind != "preempt_warning" or event.rank is None:
            continue
        rank, deadline = event.rank, event.deadline
        if rank in unjoined:
            continue
        if rank in exits:
            if exits[rank] >= deadline:
                violations.append(
                    f"rank {rank} exited at step {exits[rank]}, at or "
                    f"past its deadline {deadline} (kept sending after "
                    f"the provider reclaimed the machine)")
            continue
        if rank in missed:
            if missed[rank] != deadline:
                violations.append(
                    f"rank {rank} recorded drain_missed at step "
                    f"{missed[rank]} but its deadline is {deadline}")
            continue
        violations.append(
            f"rank {rank} was warned at step {event.start} (deadline "
            f"{deadline}) but neither drained out nor degraded to the "
            f"crash path")
    # a departed rank must never reappear in a later membership snapshot
    for rec in records:
        if rec.kind != "membership":
            continue
        present = {int(r) for r in dict(rec.detail)["members"].split(",")
                   if r != ""}
        for rank, exit_step in exits.items():
            if rec.step > exit_step and rank in present:
                violations.append(
                    f"departed rank {rank} (exited step {exit_step}) "
                    f"reappears in the membership at step {rec.step}")
    return violations


# -- named campaigns --------------------------------------------------------

def spot_churn_campaign(world: int = 4, seed: int = 0) -> FaultPlan:
    """Two spot preemptions with drain windows, two warm-started joins.

    The fleet loses its two highest initial ranks to reclaim notices
    (each with a multi-step "2-minute" drain window) and gains a V100
    and an RTX 2080 Ti mid-run — net capacity roughly recovers while
    composition churns, which is exactly the regime adaptive respec is
    for.  A mild straggler rides along so the drain protocol is
    exercised alongside ordinary degradation.
    """
    if world < 3:
        raise ValueError("spot-churn needs world >= 3 (two preemptions "
                         "must leave a quorum)")
    events = (
        preempt_warning(rank=world - 1, at=4, deadline_steps=4),
        provision(rank=world, at=6, gpu_spec="V100"),
        preempt_warning(rank=world - 2, at=10, deadline_steps=4),
        provision(rank=world + 1, at=12, gpu_spec="RTX2080Ti"),
        straggler(8, 11, rank=0, factor=1.4),
    )
    return FaultPlan("spot-churn", world, seed, events)


def autoscale_burst_campaign(world: int = 4, seed: int = 0) -> FaultPlan:
    """A scale-up burst, then one machine is preempted back out.

    The autoscaler boots two heterogeneous machines in quick
    succession early in the run; later the spot market takes the V100
    back under a warning.  Growth-dominated: the world ends larger
    than it started, and every joiner was warm-started mid-run.
    """
    events = (
        provision(rank=world, at=3, gpu_spec="V100"),
        provision(rank=world + 1, at=5, gpu_spec="A6000"),
        preempt_warning(rank=world, at=12, deadline_steps=4),
    )
    return FaultPlan("autoscale-burst", world, seed, events)


CAMPAIGNS["spot-churn"] = spot_churn_campaign
CAMPAIGNS["autoscale-burst"] = autoscale_burst_campaign

"""repro.faults: deterministic fault injection + resilience runtime.

The subsystem has four layers, mirroring the paper's separation of
mechanism and policy:

* :mod:`~repro.faults.plan` — declarative, seeded fault plans (pure
  data) and the :class:`PlanRuntime` that binds one to a generator and
  a byte-reproducible event log.  Named chaos campaigns live here.
* :mod:`~repro.faults.policy` — the recovery knobs
  (:class:`ResiliencePolicy`), campaign accounting
  (:class:`FaultCounters`), and the pure decision functions
  (:func:`select_participants`, :func:`plan_fallback`).
* :mod:`~repro.faults.inject` — the hooks that make both execution
  paths observe a plan: :class:`FaultChannel` for the real-numpy
  collectives and :class:`FaultyNetwork` for the timed makespan model.
* :mod:`~repro.faults.validate` — analysis rules (FLT001..FLT004)
  proving injection cannot mask schedule bugs or break reproducibility.
"""

from .inject import (FaultChannel, FaultyNetwork, corrupt_payload,
                     inject_data_path, payload_crc)
from .plan import (CAMPAIGNS, FaultEvent, FaultPlan, FaultRecord, PlanRuntime,
                   StepFaults, crash, link_outage, link_slowdown,
                   make_campaign, message_loss, payload_corruption, straggler)
from .policy import (FaultBudgetExceeded, FaultCounters, LinkDownError,
                     ResiliencePolicy, plan_fallback, select_participants)

__all__ = [
    "FaultEvent", "FaultPlan", "StepFaults", "FaultRecord", "PlanRuntime",
    "link_slowdown", "link_outage", "message_loss", "payload_corruption",
    "straggler", "crash", "CAMPAIGNS", "make_campaign",
    "ResiliencePolicy", "FaultCounters", "FaultBudgetExceeded",
    "LinkDownError", "select_participants", "plan_fallback",
    "FaultChannel", "FaultyNetwork", "inject_data_path", "payload_crc",
    "corrupt_payload",
]

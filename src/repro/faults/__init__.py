"""repro.faults: deterministic fault injection + resilience runtime.

The subsystem has six layers, mirroring the paper's separation of
mechanism and policy:

* :mod:`~repro.faults.plan` — declarative, seeded fault plans (pure
  data) and the :class:`PlanRuntime` that binds one to a generator and
  a byte-reproducible event log.  Named chaos campaigns live here, as
  does the :func:`oracle_guard` tripwire separating simulation physics
  from recovery decisions.
* :mod:`~repro.faults.policy` — the recovery knobs
  (:class:`ResiliencePolicy`), campaign accounting
  (:class:`FaultCounters`), and the pure decision functions
  (:func:`select_participants`, :func:`plan_fallback`).
* :mod:`~repro.faults.inject` — the hooks that make both execution
  paths observe a plan: :class:`FaultChannel` for the real-numpy
  collectives and :class:`FaultyNetwork` for the timed makespan model.
* :mod:`~repro.faults.health` — the ``repro.health`` surface:
  heartbeat transport, per-rank phi-accrual failure detection, and the
  observation-driven :class:`Supervisor` (crash suspicion, straggler
  demotion, rejoin admission, checkpoint-restore escalation).
* :mod:`~repro.faults.store` — crash-consistent durable checkpoints
  (atomic rename, per-blob CRC32, retention, corruption fallback).
* :mod:`~repro.faults.validate` — analysis rules (FLT001..FLT004)
  proving injection cannot mask schedule bugs or break reproducibility;
  the health battery (HLT001..HLT005) lives in
  :mod:`repro.analysis.health`.
* :mod:`~repro.faults.cases` — the liveness battery: one multi-phase
  schedule trace per (scheme x world x campaign) cell, including quorum
  demotion and rejoin, consumed by the deadlock & progress certifier
  (DLV001..DLV006) in :mod:`repro.analysis.liveness`.
* :mod:`~repro.faults.elastic` — elastic membership: the
  :class:`ElasticCoordinator` control plane for spot-preemption drain
  (``preempt_warning``) and autoscale growth (``provision``), the
  ``spot-churn`` / ``autoscale-burst`` campaigns, and the pure
  drain-protocol audit behind the ELA battery in
  :mod:`repro.analysis.elastic`.
"""

from .cases import (LIVENESS_CAMPAIGNS, LivenessAux, LivenessCase,
                    liveness_cases, trace_liveness_case)
from .elastic import (DEFAULT_GPU, DRAIN_TOLERANCE, ElasticCoordinator,
                      ElasticDecision, autoscale_burst_campaign,
                      check_drain_protocol, elastic_events,
                      fleet_alpha_scale, gpu_compute_scale,
                      spot_churn_campaign)
from .health import (VERDICTS, HealthMonitor, HealthPolicy,
                     HeartbeatTransport, PhiAccrualDetector, RankHealth,
                     Supervisor, SupervisorDecision)
from .inject import (FaultChannel, FaultyNetwork, corrupt_payload,
                     inject_data_path, payload_crc)
from .plan import (CAMPAIGNS, FaultEvent, FaultPlan, FaultRecord, PlanRuntime,
                   StepFaults, crash, link_outage, link_slowdown,
                   make_campaign, message_loss, oracle_guard,
                   payload_corruption, preempt_warning, provision, straggler)
from .policy import (FaultBudgetExceeded, FaultCounters, LinkDownError,
                     ResiliencePolicy, plan_fallback, select_members,
                     select_participants)
from .store import CheckpointCorrupt, CheckpointStore

__all__ = [
    "FaultEvent", "FaultPlan", "StepFaults", "FaultRecord", "PlanRuntime",
    "link_slowdown", "link_outage", "message_loss", "payload_corruption",
    "straggler", "crash", "preempt_warning", "provision",
    "CAMPAIGNS", "make_campaign", "oracle_guard",
    "ResiliencePolicy", "FaultCounters", "FaultBudgetExceeded",
    "LinkDownError", "select_participants", "select_members",
    "plan_fallback",
    "DEFAULT_GPU", "DRAIN_TOLERANCE", "ElasticCoordinator",
    "ElasticDecision", "elastic_events", "fleet_alpha_scale",
    "gpu_compute_scale", "check_drain_protocol", "spot_churn_campaign",
    "autoscale_burst_campaign",
    "FaultChannel", "FaultyNetwork", "inject_data_path", "payload_crc",
    "corrupt_payload",
    "VERDICTS", "HealthPolicy", "PhiAccrualDetector", "RankHealth",
    "HealthMonitor", "HeartbeatTransport", "Supervisor",
    "SupervisorDecision",
    "CheckpointStore", "CheckpointCorrupt",
    "LIVENESS_CAMPAIGNS", "LivenessCase", "LivenessAux", "liveness_cases",
    "trace_liveness_case",
]

"""Liveness case generation: (scheme x world x fault campaign) traces.

The deadlock & liveness certifier (:mod:`repro.analysis.liveness`)
needs schedule traces of every reduction scheme *as the fault runtime
reshapes them*: retransmit pairs injected by the
:class:`~repro.faults.inject.FaultChannel`, quorum demotion when a rank
crashes, carry banking and draining in
:class:`~repro.collectives.partial.PartialAllreduce`, and the rejoin
step afterwards.  This module builds that battery.

Each :class:`LivenessCase` produces one multi-phase trace (phases are
:func:`~repro.collectives.trace.phase_scope` spans — the barrier
between sequential collective calls):

* ``none`` / ``straggler`` / ``lossy-link`` — the scheme runs under the
  named campaign's injection at a step inside its fault window
  (stragglers reshape *timing* only, so their schedule matches the
  fault-free one; lossy links add bounded retransmit send/recv pairs).
  The partial scheme runs a quorum phase followed by a
  full-participation phase that must drain every carry the quorum
  banked.
* ``crash-rejoin`` — the full-world schedule before the crash, the
  *demoted* schedule over the surviving quorum at the crash step
  (survivors re-rank through
  :func:`~repro.collectives.trace.rank_scope`, mirroring how the
  supervisor rebuilds the collective), and the full-world schedule
  after the rejoin.  The ranks dead at the crash step become the
  case's ``excluded`` set: no event in the trace may name them
  (rule DLV003).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.collectives import ALGORITHMS, PartialAllreduce
from repro.collectives.trace import (ScheduleTrace, capture, phase_scope,
                                     rank_scope)
from repro.compression import CompressionSpec, Compressor, make_compressor

from .inject import inject_data_path
from .plan import CAMPAIGNS, PlanRuntime, make_campaign
from .policy import ResiliencePolicy

__all__ = ["LivenessCase", "LivenessAux", "liveness_cases",
           "trace_liveness_case", "LIVENESS_CAMPAIGNS"]

#: campaign axes of the battery; "none" is the fault-free control
LIVENESS_CAMPAIGNS = ("none",) + tuple(sorted(CAMPAIGNS))

#: the step every injecting campaign is sampled at (inside the loss
#: window of lossy-link, the crash window of crash-rejoin, and the
#: straggler window of straggler)
_FAULT_STEP = 4

#: the step after every campaign's crash events have ended
_REJOIN_STEP = 9


@dataclass(frozen=True)
class LivenessCase:
    """One (scheme, world, campaign) cell of the liveness battery."""

    scheme: str
    world: int
    campaign: str                                 # one of LIVENESS_CAMPAIGNS
    node_of: tuple[int, ...] | None = None        # hier topology
    participants: tuple[int, ...] | None = None   # partial quorum
    excluded: tuple[int, ...] = ()                # ranks dead at _FAULT_STEP
    seed: int = 0

    @property
    def path(self) -> str:
        return f"<liveness:{self.scheme}@world={self.world}/{self.campaign}>"


@dataclass
class LivenessAux:
    """Side observations the certifier checks beyond the trace itself."""

    #: partial scheme only: carries still banked after the drain phase
    undrained_carries: bool = False
    #: phase labels the case executed, in order (diagnostics)
    phases: list[str] = field(default_factory=list)
    #: phase label -> ranks dead while that phase ran; only those phases
    #: are subject to the excluded-rank rule (DLV003) — before the crash
    #: and after the rejoin the rank legitimately participates
    phase_excluded: dict[str, tuple[int, ...]] = field(default_factory=dict)


def _hier_node_of(world: int) -> tuple[int, ...]:
    """Two balanced nodes when the world can fill them, else one node.

    A single-member node degenerates hierarchical reduction, so worlds
    below four keep every rank on one node (the scheme then runs its
    documented single-node fallback: plain SRA).
    """
    if world < 4:
        return tuple(0 for _ in range(world))
    half = world // 2
    return tuple(0 if r < half else 1 for r in range(world))


def _partial_participants(world: int) -> tuple[int, ...]:
    """A strict quorum: roughly 3/4 of ranks, always leaving a laggard."""
    count = min(world - 1, max(1, math.ceil(0.75 * world)))
    return tuple(range(count))


def liveness_cases(worlds: tuple[int, ...] = (2, 3, 4)
                   ) -> list[LivenessCase]:
    """The full battery: every scheme x world x campaign cell.

    ``excluded`` for crash-rejoin cells is derived from the campaign
    plan itself (the ranks dead at the sampled fault step), so the case
    list stays in lockstep with
    :func:`~repro.faults.plan.make_campaign`.
    """
    schemes = sorted(ALGORITHMS) + ["partial"]
    cases: list[LivenessCase] = []
    for scheme in schemes:
        for world in worlds:
            node_of = _hier_node_of(world) if scheme == "hier" else None
            participants = (_partial_participants(world)
                            if scheme == "partial" else None)
            for campaign in LIVENESS_CAMPAIGNS:
                excluded: tuple[int, ...] = ()
                if campaign == "crash-rejoin":
                    plan = make_campaign(campaign, world=world)
                    excluded = tuple(sorted(
                        plan.at_step(_FAULT_STEP).dead_ranks()))
                cases.append(LivenessCase(
                    scheme, world, campaign, node_of=node_of,
                    participants=participants, excluded=excluded))
    return cases


class _CaseRunner:
    """Executes one battery cell phase by phase (shared rng/compressor)."""

    def __init__(self, case: LivenessCase, numel: int):
        self.case = case
        self.compressor: Compressor = make_compressor(
            CompressionSpec("qsgd", bits=4, bucket_size=32))
        self.rng = np.random.default_rng(case.seed)
        self.buffers = [
            np.asarray(self.rng.normal(size=numel), dtype=np.float32)
            for _ in range(case.world)]
        self.reducer = (PartialAllreduce(case.world)
                        if case.scheme == "partial" else None)
        self.aux = LivenessAux()

    def phase(self, label: str, body: Callable[[], None]) -> None:
        self.aux.phases.append(label)
        with phase_scope(label):
            body()

    def collective(self, buffers: list[np.ndarray], key: str,
                   node_of: tuple[int, ...] | None = None,
                   participants: list[int] | None = None,
                   reducer: PartialAllreduce | None = None) -> None:
        """One collective call with this case's scheme on ``buffers``."""
        scheme = self.case.scheme
        if scheme == "partial":
            reducer = reducer if reducer is not None else self.reducer
            assert reducer is not None
            quorum = (participants if participants is not None
                      else list(self.case.participants
                                or range(len(buffers))))
            reducer.reduce(buffers, quorum, self.compressor, self.rng,
                           key=key)
            return
        kwargs: dict = {}
        if scheme == "hier":
            chosen = (node_of if node_of is not None
                      else (self.case.node_of
                            or _hier_node_of(len(buffers))))
            kwargs["node_of"] = list(chosen)
        ALGORITHMS[scheme](buffers, self.compressor, self.rng, key=key,
                           **kwargs)

    # -- campaign scripts ----------------------------------------------

    def run_steady(self, inject_step: int | None,
                   runtime: PlanRuntime | None) -> None:
        """One reduction step (plus the partial drain step)."""
        if runtime is not None and inject_step is not None:
            runtime.advance(inject_step)
        label = "step" if inject_step is None else f"step{inject_step}"
        self.phase(label, lambda: self.collective(self.buffers, key="live"))
        if self.reducer is not None:
            # full participation folds in every banked carry
            self.phase("drain", lambda: self.collective(
                self.buffers, key="live",
                participants=list(range(self.case.world))))
            self.aux.undrained_carries |= self.reducer.has_carries()

    def run_crash_rejoin(self, runtime: PlanRuntime) -> None:
        """full -> demoted (survivor quorum) -> rejoined, one trace."""
        case = self.case
        runtime.advance(_FAULT_STEP - 1)
        self.phase("full", lambda: self.collective(self.buffers, key="live"))

        runtime.advance(_FAULT_STEP)
        dead = runtime.faults().dead_ranks()
        live = [r for r in range(case.world) if r not in dead]
        self.aux.phase_excluded["demoted"] = tuple(sorted(dead))
        if len(live) >= 2:
            survivors = [self.buffers[r] for r in live]
            if case.scheme == "partial":
                # the supervisor rebuilds the group over survivors; a
                # strict quorum inside it exercises the late path among
                # live ranks only, then a drain call empties the carries
                demoted = PartialAllreduce(len(live))
                quorum = list(range(len(live) - 1)) or [0]

                def demoted_body() -> None:
                    with rank_scope(live):
                        demoted.reduce(survivors, quorum, self.compressor,
                                       self.rng, key="demoted")
                        demoted.reduce(survivors, list(range(len(live))),
                                       self.compressor, self.rng,
                                       key="demoted")

                self.phase("demoted", demoted_body)
                self.aux.undrained_carries |= demoted.has_carries()
            else:
                node_of = None
                if case.scheme == "hier":
                    base = case.node_of or _hier_node_of(case.world)
                    node_of = _rebalance_nodes(tuple(base[r] for r in live))

                def demoted_body() -> None:
                    with rank_scope(live):
                        self.collective(survivors, key="demoted",
                                        node_of=node_of)

                self.phase("demoted", demoted_body)
        # a single survivor has nobody to reduce with: the engine skips
        # the collective for that step (nothing to certify)

        runtime.advance(_REJOIN_STEP)
        self.phase("rejoined",
                   lambda: self.collective(self.buffers, key="live"))


def _rebalance_nodes(node_of: tuple[int, ...]) -> tuple[int, ...]:
    """Collapse to one node if any node dropped below two members."""
    counts: dict[int, int] = {}
    for node in node_of:
        counts[node] = counts.get(node, 0) + 1
    if any(count < 2 for count in counts.values()):
        return tuple(0 for _ in node_of)
    return node_of


def trace_liveness_case(case: LivenessCase, numel: int = 97,
                        ) -> tuple[ScheduleTrace, LivenessAux]:
    """Execute one battery cell, capturing its multi-phase trace."""
    runner = _CaseRunner(case, numel)
    with capture() as trace:
        if case.campaign == "none":
            runner.run_steady(inject_step=None, runtime=None)
        else:
            runtime = PlanRuntime(
                make_campaign(case.campaign, world=case.world,
                              seed=case.seed),
                ResiliencePolicy())
            with inject_data_path(runtime):
                if case.campaign == "crash-rejoin":
                    runner.run_crash_rejoin(runtime)
                else:
                    runner.run_steady(inject_step=_FAULT_STEP,
                                      runtime=runtime)
    return trace, runner.aux

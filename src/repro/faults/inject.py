"""Injection hooks: make both execution paths observe a fault plan.

Two injectors, one plan:

* :class:`FaultChannel` intercepts the collectives' *data path*.  It is
  installed through :func:`repro.collectives.base.wire_faults`; every
  logical point-to-point message the schemes move (the same sites that
  emit ``send``/``recv`` trace events) is passed through
  :meth:`FaultChannel.deliver`, which draws loss/corruption outcomes
  from the plan's generator, CRC-checks payloads against the byte-exact
  :func:`repro.core.serialization.serialize_payload` encoding, and
  performs bounded retransmission with full wire/trace accounting —
  every retry adds bytes to ``ReduceStats`` *and* a matching send/recv
  event pair, so the schedule verifier's wire-conservation rule
  (SCH005) keeps holding under injection.

* :class:`FaultyNetwork` subclasses the timed
  :class:`~repro.cluster.network.Network`: link slowdowns stretch
  per-link service times, downed routes raise
  :class:`~repro.faults.policy.LinkDownError` (callers consult
  :func:`~repro.faults.policy.plan_fallback` first), lost or corrupted
  transfers re-traverse their route after a timeout-plus-backoff wait,
  and straggler scaling stretches per-GPU kernels.

Both injectors log every occurrence into the shared
:class:`~repro.faults.plan.PlanRuntime`, so the makespan model and the
real-numpy path report one deterministic campaign.
"""

from __future__ import annotations

import zlib

from repro.cluster.backends import BackendModel
from repro.cluster.network import Network, TransferRecord
from repro.cluster.topology import Topology
from repro.collectives.base import ReduceStats, wire_faults
from repro.collectives.trace import emit_recv, emit_send, translate_rank
from repro.compression.base import Compressed
from repro.core.serialization import serialize_payload

from .plan import PlanRuntime
from .policy import FaultBudgetExceeded, LinkDownError

__all__ = ["FaultChannel", "FaultyNetwork", "inject_data_path",
           "payload_crc", "corrupt_payload"]


def payload_crc(wire: Compressed) -> int:
    """CRC32 of the byte-exact wire encoding of ``wire``."""
    return zlib.crc32(serialize_payload(wire))


def corrupt_payload(wire: Compressed, rng) -> Compressed:
    """A copy of ``wire`` with one payload byte bit-flipped.

    The flipped byte is chosen by ``rng`` over the concatenated payload
    arrays, mirroring a single-bit wire error.  Returns ``wire``
    unchanged when the payload is empty (nothing to corrupt).
    """
    keys = [k for k in sorted(wire.payload) if wire.payload[k].nbytes > 0]
    if not keys:
        return wire
    corrupted = wire.copy()
    key = keys[int(rng.integers(len(keys)))]
    flat = corrupted.payload[key].reshape(-1).view("uint8")
    offset = int(rng.integers(flat.size))
    flat[offset] ^= 0xFF
    return corrupted


class FaultChannel:
    """Data-path interceptor for one campaign (see module docstring)."""

    def __init__(self, runtime: PlanRuntime):
        self.runtime = runtime

    def deliver(self, wire: Compressed, stats: ReduceStats, src: int,
                dst: int, step: int, tag: str) -> Compressed:
        """Deliver one logical message, retrying per the policy.

        ``src``/``dst`` are collective-local ranks (translated through
        any active :func:`~repro.collectives.trace.rank_scope` for
        route matching, exactly like the trace events).  Returns the
        payload the receiver decodes — the intact original unless CRC
        checking is off and a corruption slipped through.
        """
        runtime = self.runtime
        policy = runtime.policy
        counters = runtime.counters
        counters.deliveries += 1
        gsrc, gdst = translate_rank(src), translate_rank(dst)
        faults = runtime.faults()
        p_loss = faults.loss_probability(gsrc, gdst)
        p_corrupt = faults.corrupt_probability(gsrc, gdst)
        if p_loss <= 0.0 and p_corrupt <= 0.0:
            return wire

        crc = payload_crc(wire) if policy.crc_check else None
        attempt = 0
        while True:
            draw = float(runtime.rng.random())
            if draw >= p_loss + p_corrupt:
                return wire                      # delivered intact
            if draw < p_loss:
                counters.lost += 1
                runtime.record("message_loss", src=gsrc, dst=gdst, tag=tag,
                               attempt=attempt)
            else:
                corrupted = corrupt_payload(wire, runtime.rng)
                runtime.record("payload_corrupt", src=gsrc, dst=gdst,
                               tag=tag, attempt=attempt)
                if crc is None:
                    # no CRC: the receiver decodes garbage and training
                    # absorbs the error (measured, not modeled)
                    counters.corrupt_delivered += 1
                    return corrupted
                if payload_crc(corrupted) == crc:  # pragma: no cover
                    counters.corrupt_delivered += 1
                    return corrupted
                counters.corrupt_detected += 1

            attempt += 1
            if attempt > policy.max_retries:
                if policy.strict:
                    raise FaultBudgetExceeded(
                        f"{tag}: {gsrc}->{gdst} failed "
                        f"{attempt} deliveries (budget "
                        f"{policy.max_retries})")
                counters.forced_deliveries += 1
                runtime.record("forced_delivery", src=gsrc, dst=gdst,
                               tag=tag)
                return wire
            # retransmit: real bytes on the wire, visible to the
            # schedule verifier as a fresh matched send/recv pair
            counters.retries += 1
            counters.retransmit_bytes += wire.nbytes
            stats.retries += 1
            stats.retransmit_bytes += wire.nbytes
            stats.wire_bytes += wire.nbytes
            retry_tag = f"{tag}#retry{attempt}"
            emit_send(src, dst, wire.nbytes, step=step, tag=retry_tag)
            emit_recv(dst, src, wire.nbytes, step=step, tag=retry_tag)


def inject_data_path(runtime: PlanRuntime):
    """Context manager installing a :class:`FaultChannel` for ``runtime``.

    Usage::

        with inject_data_path(runtime):
            outputs, stats = sra_allreduce(buffers, compressor, rng)
    """
    return wire_faults(FaultChannel(runtime))


class FaultyNetwork(Network):
    """A timed network that observes a fault plan.

    Drop-in replacement for :class:`~repro.cluster.network.Network`
    (``simulate_step`` accepts it via its ``network=`` argument); the
    bound :class:`PlanRuntime`'s step cursor selects which faults bite.
    """

    def __init__(self, topology: Topology, backend: BackendModel | str,
                 runtime: PlanRuntime):
        super().__init__(topology, backend)
        self.runtime = runtime

    def transfer(self, src: int, dst: int, nbytes: int, ready: float,
                 job: int | None = None) -> float:
        if src == dst:
            return ready
        runtime = self.runtime
        policy = runtime.policy
        faults = runtime.faults()
        if faults.route_down(src, dst):
            runtime.record("link_down_hit", src=src, dst=dst)
            raise LinkDownError(
                f"route {src}->{dst} is down at step {faults.step}")
        slow = faults.link_slow_factor(src, dst)
        p_fail = 1.0 - (1.0 - faults.loss_probability(src, dst)) \
            * (1.0 - faults.corrupt_probability(src, dst))

        attempt = 0
        t = ready
        while True:
            end = self._traverse(src, dst, nbytes, t, slow, job=job)
            if p_fail <= 0.0 or float(runtime.rng.random()) >= p_fail:
                return end
            runtime.record("timed_retry", src=src, dst=dst, attempt=attempt)
            attempt += 1
            if attempt > policy.max_retries:
                runtime.counters.forced_deliveries += 1
                return end
            runtime.counters.retries += 1
            runtime.counters.retransmit_bytes += nbytes
            t = end + policy.timeout + policy.backoff(attempt)

    def transfer_unreliable(self, src: int, dst: int, nbytes: int,
                            ready: float) -> float | None:
        """One-shot datagram delivery: the arrival time, or ``None``.

        Unlike :meth:`transfer` (which retries until delivery, stream
        semantics), this makes a single attempt — a downed route or a
        loss/corruption draw simply drops the message.  Heartbeats use
        this: silence is the failure signal, so a transport that never
        gives up would hide exactly what the detector listens for.
        """
        if src == dst:
            return ready
        runtime = self.runtime
        faults = runtime.faults()
        if faults.route_down(src, dst):
            return None
        slow = faults.link_slow_factor(src, dst)
        p_fail = 1.0 - (1.0 - faults.loss_probability(src, dst)) \
            * (1.0 - faults.corrupt_probability(src, dst))
        end = self._traverse(src, dst, nbytes, ready, slow)
        if p_fail > 0.0 and float(runtime.rng.random()) < p_fail:
            return None
        return end

    def _traverse(self, src: int, dst: int, nbytes: int, ready: float,
                  slow: float, job: int | None = None) -> float:
        """One store-and-forward traversal with a slowdown factor."""
        start_overall = ready + self.backend.alpha
        t = start_overall
        scaled = nbytes * self.backend.copy_factor
        throttle = self.job_throttle(job)
        for link in self.topology.path(src, dst):
            service = slow * (scaled / (link.bandwidth * throttle)
                              + link.latency)
            t = self._schedule_link(link, t, service, job)
        if self._trace_enabled:
            self.trace.append(TransferRecord(src, dst, nbytes,
                                             start_overall, t, job))
        return t

    def run_kernel(self, gpu: int, engine: str, duration: float,
                   ready: float, job: int | None = None) -> float:
        scale = self.runtime.faults().compute_scale(gpu)
        return super().run_kernel(gpu, engine, duration * scale, ready,
                                  job=job)

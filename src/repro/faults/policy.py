"""Resilience policies: what training does about injected faults.

A :class:`ResiliencePolicy` bundles the recovery knobs — bounded retry
with exponential backoff, CRC verification of payloads, the straggler
budget beyond which a rank is demoted to quorum (carry-buffer) mode,
and the minimum quorum the engine will accept.  Pure decision logic
lives here too: :func:`select_participants` (who contributes this step)
and :func:`plan_fallback` (how the timed collective routes around dead
links).  The mechanisms that *apply* these decisions are in
:mod:`repro.faults.inject`, :mod:`repro.core.engine` and
:mod:`repro.training.trainer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .plan import StepFaults

__all__ = ["ResiliencePolicy", "FaultCounters", "FaultBudgetExceeded",
           "LinkDownError", "select_participants", "select_members",
           "plan_fallback"]


class FaultBudgetExceeded(RuntimeError):
    """A delivery exhausted its retry budget under a strict policy."""


class LinkDownError(RuntimeError):
    """A timed transfer was scheduled over a downed route."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Recovery configuration for one campaign.

    Attributes:
        max_retries: bounded retransmit attempts per logical message.
        timeout: seconds a timed sender waits before declaring a loss.
        backoff_base: first retry delay (seconds, timed path).
        backoff_factor: multiplier per further retry (exponential).
        backoff_max: cap on any single retry delay — exponential growth
            is unbounded otherwise, and a mistuned ``backoff_factor``
            must degrade to steady retries, not multi-second stalls.
        crc_check: verify payload CRCs and retransmit on mismatch; with
            this off, corrupted payloads are *delivered* and training
            absorbs the error.
        straggler_budget: compute-scale factor beyond which a live rank
            is dropped from the step's quorum (its gradient rides the
            carry buffer instead of being waited for).
        min_quorum_fraction: never reduce over fewer than this fraction
            of the world, even if the budget says to drop more ranks.
        strict: raise :class:`FaultBudgetExceeded` when retries run out
            instead of forcing the delivery through.
    """

    max_retries: int = 4
    timeout: float = 2e-3
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_max: float = 0.25
    crc_check: bool = True
    straggler_budget: float = 2.0
    min_quorum_fraction: float = 0.5
    strict: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for name in ("timeout", "backoff_base", "backoff_factor",
                     "backoff_max"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.backoff_max < self.backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")
        if not 0.0 < self.min_quorum_fraction <= 1.0:
            raise ValueError("min_quorum_fraction must be in (0, 1]")
        if self.straggler_budget < 1.0:
            raise ValueError("straggler_budget must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), in seconds.

        Exponential in ``attempt`` but capped at ``backoff_max``.
        """
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                   self.backoff_max)


@dataclass
class FaultCounters:
    """Aggregate accounting of one campaign's faults and recoveries."""

    deliveries: int = 0          # fault-channel messages examined
    lost: int = 0                # messages dropped in flight
    corrupt_detected: int = 0    # CRC mismatches caught
    corrupt_delivered: int = 0   # corruptions passed through (no CRC)
    retries: int = 0             # retransmissions performed
    retransmit_bytes: int = 0    # extra wire bytes from retransmission
    forced_deliveries: int = 0   # retry budget exhausted, non-strict
    quorum_steps: int = 0        # steps reduced over a strict subset
    fallbacks: int = 0           # timed-path scheme/route fallbacks
    crashes: int = 0
    rejoins: int = 0
    crashed_steps: int = 0       # steps with at least one dead rank
    checkpoint_restores: int = 0
    # health-layer accounting (supervised mode)
    heartbeats: int = 0          # beats that reached the monitor
    heartbeat_misses: int = 0    # beats lost in flight
    suspected_crashes: int = 0   # detector-driven crash verdicts acted on
    false_suspicions: int = 0    # suspected crashed while actually alive
    rejoin_admissions: int = 0   # ranks re-admitted by the supervisor
    straggler_demotions: int = 0
    escalations: int = 0         # checkpoint-restore escalations taken
    oracle_reads: int = 0        # StepFaults reads on the decision path
    store_writes: int = 0        # durable checkpoints published
    store_corrupt_detected: int = 0
    # elastic accounting (spot preemption + autoscale provisioning)
    preempt_warnings: int = 0    # reclaim notices delivered to members
    graceful_exits: int = 0      # warned ranks drained out before deadline
    drain_missed: int = 0        # warned ranks degraded to the crash path
    spot_reclaims: int = 0       # machines taken back at their deadline
    provisions: int = 0          # autoscale machines announced
    provision_admissions: int = 0  # provisioned ranks admitted to the world
    respecs: int = 0             # adaptive respecs on composition change
    extra: dict = field(default_factory=dict)

    # counter fields are everything except the free-form ``extra`` dict;
    # derived from the dataclass itself so a new counter cannot be
    # silently dropped from merge()/to_dict()
    def _counter_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in fields(self) if f.name != "extra")

    def merge(self, other: "FaultCounters") -> None:
        for name in self._counter_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self._counter_names()}
        out.update(self.extra)
        return out


def select_participants(faults: "StepFaults", policy: ResiliencePolicy
                        ) -> list[int]:
    """Which ranks contribute to this step's reduction.

    Dead ranks are always excluded.  Live ranks whose compute scale
    exceeds ``policy.straggler_budget`` are demoted to carry mode —
    unless that would shrink the quorum below
    ``min_quorum_fraction * world``, in which case the least-slow
    demoted ranks are re-admitted (deterministically) until the quorum
    is legal.
    """
    return select_members(faults, policy, range(faults.world))


def select_members(faults: "StepFaults", policy: ResiliencePolicy,
                   members: "Iterable[int]") -> list[int]:
    """:func:`select_participants` over an elastic membership.

    Identical decision logic, but the candidate set and the quorum
    floor come from the coordinator's current ``members`` rather than
    the plan's fixed world — provisioned ranks join the straggler
    budget the moment they are admitted, departed ranks never reappear.
    """
    pool = sorted(set(members))
    dead = faults.dead_ranks()
    live = [r for r in pool if r not in dead]
    floor = max(1, math.ceil(policy.min_quorum_fraction * len(pool)))
    kept = [r for r in live
            if faults.compute_scale(r) <= policy.straggler_budget]
    if len(kept) < floor:
        demoted = sorted((r for r in live if r not in kept),
                         key=lambda r: (faults.compute_scale(r), r))
        kept = sorted(kept + demoted[:floor - len(kept)])
    return sorted(kept)


def plan_fallback(faults: "StepFaults", ranks: list[int]
                  ) -> tuple[str, list[int]]:
    """Route-aware fallback decision for one timed collective.

    Returns ``(decision, members)``:

    * ``("ok", ranks)`` — no downed route among the participants; run
      the configured scheme unchanged.
    * ``("reroute", order)`` — some pairs are down but every rank is
      still reachable; ``order`` is a ring ordering that avoids every
      downed adjacency (ring/tree schedules should follow it).
    * ``("quorum", live)`` — at least one rank is unreachable from the
      quorum anchor; reduce over ``live`` with
      :func:`~repro.collectives.timing.time_partial_allreduce` and let
      the isolated ranks catch up when their links return.
    """
    down = {(a, b) for a in ranks for b in ranks
            if a != b and faults.route_down(a, b)}
    if not down:
        return "ok", list(ranks)

    def healthy(a: int, b: int) -> bool:
        return (a, b) not in down

    # connected components over healthy pairs; the quorum is the largest
    # component (smallest member breaks ties, deterministically)
    components: list[set[int]] = []
    unseen = set(ranks)
    while unseen:
        seed_rank = min(unseen)
        component = {seed_rank}
        frontier = [seed_rank]
        while frontier:
            node = frontier.pop()
            for other in ranks:
                if other in unseen and other not in component \
                        and healthy(node, other):
                    component.add(other)
                    frontier.append(other)
        unseen -= component
        components.append(component)
    if len(components) > 1:
        largest = max(components, key=lambda c: (len(c), -min(c)))
        return "quorum", sorted(largest)
    reachable = components[0]

    # all reachable: find a ring ordering avoiding every downed pair
    # (deterministic DFS over a Hamiltonian cycle; worlds are small)
    order = [min(ranks)]

    def extend() -> bool:
        if len(order) == len(ranks):
            return healthy(order[-1], order[0])
        for nxt in sorted(set(ranks) - set(order)):
            if healthy(order[-1], nxt):
                order.append(nxt)
                if extend():
                    return True
                order.pop()
        return False

    if extend():
        return "reroute", order
    return "quorum", sorted(reachable)

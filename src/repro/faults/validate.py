"""Analysis pass: prove the fault machinery cannot mask real bugs.

Injected faults rewrite the message log (retransmitted payloads add
send/recv pairs) and consume extra randomness, so they could in
principle hide a schedule asymmetry or a data race behind noise — or
introduce one of their own.  This pass closes that hole; it is
registered with the :mod:`repro.analysis` contract and race passes so
CI runs it alongside SCH/RACE/CON:

``FLT001``  a schedule invariant (SCH001..SCH007) is violated while a
            lossy campaign is injecting into the data path.
``FLT002``  the happens-before race detector finds a hazard that only
            exists under injection.
``FLT003``  two runs of one campaign under one seed produce different
            fault event logs — the reproducibility contract is broken.
``FLT004``  a corrupted payload's CRC collides with the original, so
            retransmit-on-corrupt would deliver garbage.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.races import analyze_trace
from repro.analysis.schedule import SchemeCase, trace_case, verify_trace
from repro.compression import CompressionSpec, make_compressor

from .inject import corrupt_payload, inject_data_path, payload_crc
from .plan import PlanRuntime, make_campaign
from .policy import ResiliencePolicy

__all__ = ["FAULT_RULES", "verify_fault_schedules", "verify_fault_determinism",
           "verify_crc_detection", "verify_faults", "fault_path"]

FAULT_RULES = {
    "FLT001": "schedule invariant violated under fault injection",
    "FLT002": "data race introduced under fault injection",
    "FLT003": "fault campaign is not seed-deterministic",
    "FLT004": "CRC fails to detect payload corruption",
}

#: the scheme battery the injection sweep runs (one case per schedule
#: shape; hierarchical is covered through its nested SRA calls)
_FAULT_CASES = (
    SchemeCase("sra", 4),
    SchemeCase("ring", 4),
    SchemeCase("tree", 5),
    SchemeCase("allgather", 3),
    SchemeCase("ps", 4),
    SchemeCase("partial", 4, participants=(0, 1, 2)),
)

#: a fault step well inside every campaign's loss/corruption window
_INJECT_STEP = 4


def fault_path(scheme: str, world: int) -> str:
    return f"<faults:{scheme}@world={world}>"


def _campaign_runtime(world: int, seed: int = 0) -> PlanRuntime:
    runtime = PlanRuntime(make_campaign("lossy-link", world=world, seed=seed),
                          ResiliencePolicy())
    runtime.advance(_INJECT_STEP)
    return runtime


def verify_fault_schedules(cases=_FAULT_CASES, seed: int = 0
                           ) -> list[Finding]:
    """Re-run the SCH + RACE batteries with a lossy campaign installed."""
    findings: list[Finding] = []
    for case in cases:
        runtime = _campaign_runtime(case.world, seed)
        with inject_data_path(runtime):
            trace, stats = trace_case(case, seed=seed)
        for inner in verify_trace(trace, stats, case):
            findings.append(Finding(
                rule="FLT001", path=fault_path(case.scheme, case.world),
                line=0, col=0, source="faults", scheme=case.scheme,
                world=case.world,
                message=f"[{inner.rule}] under lossy-link injection: "
                        f"{inner.message}"))
        for inner in analyze_trace(trace, case.scheme, case.world):
            findings.append(Finding(
                rule="FLT002", path=fault_path(case.scheme, case.world),
                line=0, col=0, source="faults", scheme=case.scheme,
                world=case.world,
                message=f"[{inner.rule}] under lossy-link injection: "
                        f"{inner.message}"))
    return sort_findings(findings)


def verify_fault_determinism(world: int = 4, seed: int = 7) -> list[Finding]:
    """One campaign, one seed, two runs: the event logs must be bytes-equal."""
    findings: list[Finding] = []
    for campaign in ("straggler", "lossy-link", "crash-rejoin"):
        logs = []
        for _ in range(2):
            runtime = PlanRuntime(
                make_campaign(campaign, world=world, seed=seed))
            for step in range(1, 12):
                runtime.advance(step)
                with inject_data_path(runtime):
                    trace_case(SchemeCase("sra", world), seed=seed)
            logs.append(runtime.log_bytes())
        if logs[0] != logs[1]:
            findings.append(Finding(
                rule="FLT003", path=fault_path(campaign, world), line=0,
                col=0, source="faults", scheme=campaign, world=world,
                message=f"campaign {campaign!r} with seed {seed} produced "
                        f"two different fault event logs "
                        f"({len(logs[0])}B vs {len(logs[1])}B)"))
    return sort_findings(findings)


def verify_crc_detection(seed: int = 3) -> list[Finding]:
    """Corrupt every method's wire payload; the CRC must always change."""
    findings: list[Finding] = []
    rng = np.random.default_rng(seed)
    specs = (
        CompressionSpec("none"),
        CompressionSpec("fp16"),
        CompressionSpec("qsgd", bits=4, bucket_size=32),
        CompressionSpec("nuq", bits=4, bucket_size=32),
        CompressionSpec("topk", density=0.25, error_feedback=True),
        CompressionSpec("onebit", bucket_size=32),
    )
    for spec in specs:
        compressor = make_compressor(spec)
        array = np.asarray(rng.normal(size=129), dtype=np.float32)
        wire = compressor.compress(array, rng, key="crc")
        corrupted = corrupt_payload(wire, rng)
        if corrupted is wire:  # pragma: no cover - all specs carry payload
            continue
        if payload_crc(corrupted) == payload_crc(wire):
            findings.append(Finding(
                rule="FLT004", path=f"<faults:crc@{spec.method}>", line=0,
                col=0, source="faults", scheme=spec.method, world=1,
                message=f"{spec.method}: single-byte corruption left the "
                        f"payload CRC unchanged"))
    return sort_findings(findings)


def verify_faults() -> list[Finding]:
    """The full fault-validation battery; [] means clean."""
    findings = list(verify_fault_schedules())
    findings.extend(verify_fault_determinism())
    findings.extend(verify_crc_detection())
    return sort_findings(findings)

"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows:

* ``simulate`` — step-time/throughput of a model on a machine under a
  method (the Figure 1/3 axes, one point at a time);
* ``train`` — a real compressed data-parallel training run of a scaled
  model family (the Table 3 axis);
* ``topology`` — render a machine's interconnect (Figure 8);
* ``experiment`` — regenerate one of the paper's tables/figures by
  running its benchmark (``--list`` enumerates them);
* ``analyze`` — static analysis: numerical-safety lint + collective-
  schedule verification (see ``docs/analysis.md``);
* ``sched`` — run a multi-tenant fleet: N concurrent training jobs
  placed onto one shared simulated cluster, reporting fleet
  throughput, queueing delay and Jain fairness.

Examples::

    python -m repro simulate --model transformer_xl --machine rtx3090-8x \\
        --method cgx --gpus 8
    python -m repro train --family mlp --world 4 --bits 4 --steps 80
    python -m repro topology --machine rtx3090-8x
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import MACHINES, get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.core.qnccl import qnccl_config
from repro.models import available_specs, build_spec

__all__ = ["main", "build_parser"]

METHODS = ("nccl", "qnccl", "cgx", "powersgd", "grace")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CGX reproduction: simulate, train, inspect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate one training step")
    sim.add_argument("--model", required=True, choices=available_specs())
    sim.add_argument("--machine", required=True, choices=sorted(MACHINES))
    sim.add_argument("--method", default="cgx", choices=METHODS)
    sim.add_argument("--gpus", type=int, default=None)
    sim.add_argument("--bits", type=int, default=4)
    sim.add_argument("--bucket-size", type=int, default=128)
    sim.add_argument("--scheme", default=None,
                     help="override reduction scheme (sra/ring/tree/...)")
    sim.add_argument("--config", default=None,
                     help="JSON config file (overrides --method/--bits)")

    train = sub.add_parser("train", help="run a scaled accuracy experiment")
    train.add_argument("--family", required=True)
    train.add_argument("--world", type=int, default=4)
    train.add_argument("--bits", type=int, default=4)
    train.add_argument("--bucket-size", type=int, default=None)
    train.add_argument("--steps", type=int, default=None)
    train.add_argument("--baseline", action="store_true",
                       help="train uncompressed instead")
    train.add_argument("--adaptive", default=None,
                       choices=("kmeans", "bayes", "linear"))
    train.add_argument("--seed", type=int, default=0)

    topo = sub.add_parser("topology", help="describe a machine")
    topo.add_argument("--machine", required=True, choices=sorted(MACHINES))
    topo.add_argument("--gpus", type=int, default=None)

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("name", nargs="?", default=None,
                     help="experiment id, e.g. fig3 or table7")
    exp.add_argument("--list", action="store_true", dest="list_all",
                     help="list available experiments")

    ana = sub.add_parser("analyze",
                         help="run the static-analysis suite (lint + "
                              "schedule verifier + contracts + races + "
                              "plan certifier + shape interpreter)")
    ana.add_argument("paths", nargs="*", default=["src"],
                     help="files/directories to lint (default: src)")
    ana.add_argument("--format", dest="fmt", default="text",
                     choices=("text", "json"))
    ana.add_argument("--baseline", default=None,
                     help="findings allowlist file")
    ana.add_argument("--write-baseline", action="store_true")
    ana.add_argument("--no-schedule", action="store_true")
    ana.add_argument("--schedule-only", action="store_true")
    ana.add_argument("--contracts", action="store_true",
                     help="run only the compressor-contract checker "
                          "(combines with the other pass flags)")
    ana.add_argument("--races", action="store_true",
                     help="run only the happens-before race detector "
                          "(combines with the other pass flags)")
    ana.add_argument("--plans", action="store_true",
                     help="run only the bit-width plan certifier "
                          "(combines with the other pass flags)")
    ana.add_argument("--shapes", action="store_true",
                     help="run only the shape/dtype pipeline interpreter "
                          "(combines with the other pass flags)")
    ana.add_argument("--health", action="store_true",
                     help="run only the failure-detection battery "
                          "(combines with the other pass flags)")
    ana.add_argument("--liveness", action="store_true",
                     help="run only the deadlock & progress certifier "
                          "(combines with the other pass flags)")
    ana.add_argument("--overlap", action="store_true",
                     help="run only the overlap-safety certifier "
                          "(combines with the other pass flags)")
    ana.add_argument("--sched", action="store_true",
                     help="run only the fleet-schedule certifier "
                          "(combines with the other pass flags)")
    ana.add_argument("--elastic", action="store_true",
                     help="run only the elastic-membership certifier "
                          "(combines with the other pass flags)")
    ana.add_argument("--all", dest="all_passes", action="store_true",
                     help="run every battery, including plans, shapes, "
                          "health, liveness, overlap, sched and elastic")

    flt = sub.add_parser("faults",
                         help="run a named chaos campaign against real "
                              "compressed training")
    flt.add_argument("campaign", nargs="?", default=None,
                     help="campaign name (straggler, lossy-link, "
                          "crash-rejoin, spot-churn, autoscale-burst)")
    flt.add_argument("--list", action="store_true", dest="list_all",
                     help="list available campaigns")
    flt.add_argument("--family", default="mlp",
                     help="model family to train under faults")
    flt.add_argument("--world", type=int, default=4)
    flt.add_argument("--steps", type=int, default=30)
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument("--bits", type=int, default=4)
    flt.add_argument("--no-crc", action="store_true",
                     help="disable CRC checks (corruptions are delivered)")
    flt.add_argument("--strict", action="store_true",
                     help="fail the run when a retry budget is exhausted")
    flt.add_argument("--log", default=None,
                     help="write the canonical fault event log (JSON) here")
    flt.add_argument("--supervised", action="store_true",
                     help="recover via the heartbeat-driven supervisor "
                          "(observations only) instead of the plan oracle")
    flt.add_argument("--checkpoint-dir", default=None,
                     help="durable checkpoint store directory "
                          "(supervised mode; enables escalation restore)")
    flt.add_argument("--keep", type=int, default=3,
                     help="checkpoints retained in the store (default 3)")

    sch = sub.add_parser("sched",
                         help="run a multi-tenant fleet of concurrent "
                              "training jobs on one shared cluster")
    sch.add_argument("--jobs", type=int, default=24,
                     help="number of jobs in the seeded workload")
    sch.add_argument("--machine", default="rtx3090-8x",
                     choices=sorted(MACHINES))
    sch.add_argument("--nodes", type=int, default=2,
                     help="identical machines joined by Ethernet")
    sch.add_argument("--policy", default="packed",
                     help="placement policy (packed/spread/numa)")
    sch.add_argument("--routing", default="static",
                     choices=("static", "adaptive"))
    sch.add_argument("--seed", type=int, default=0,
                     help="workload seed (same seed = same fleet, byte "
                          "for byte)")
    sch.add_argument("--mean-interarrival", type=float, default=0.05,
                     help="mean seconds between job arrivals")
    sch.add_argument("--models", default=None,
                     help="comma-separated model specs for the workload "
                          "mix")
    sch.add_argument("--worlds", default="2,4,8",
                     help="comma-separated world sizes to draw from")
    sch.add_argument("--log", default=None,
                     help="write the canonical fleet event log here")
    sch.add_argument("--trace", default=None,
                     help="write a Chrome/Perfetto trace with per-job "
                          "lanes here")
    sch.add_argument("--link-load-bin", type=float, default=0.0,
                     help="track per-link load timelines in bins of this "
                          "width (seconds)")
    sch.add_argument("--json", action="store_true", dest="as_json",
                     help="print fleet metrics as JSON instead of text")
    return parser


def _method_setup(args) -> tuple[CGXConfig, str]:
    """(config, plan_mode) for a simulate method."""
    if args.method == "nccl":
        return CGXConfig.baseline_nccl(), "fused"
    if args.method == "qnccl":
        return qnccl_config(bits=args.bits,
                            bucket_size=args.bucket_size), "fused"
    if args.method == "grace":
        from repro.baselines import grace_config

        return grace_config(bits=args.bits), "fused"
    if args.method == "powersgd":
        # PowerSGD needs error feedback for accuracy (Vogels et al. 2019;
        # enforced by contract rule CON006)
        return CGXConfig(backend="shm", scheme="sra",
                         compression=CompressionSpec("powersgd", rank=4,
                                                     error_feedback=True)), \
            "cgx"
    config = CGXConfig.cgx_default(args.bucket_size)
    config.compression = CompressionSpec("qsgd", bits=args.bits,
                                         bucket_size=args.bucket_size)
    return config, "cgx"


def _cmd_simulate(args, out) -> int:
    from repro.training import simulate_machine_step

    machine = get_machine(args.machine)
    spec = build_spec(args.model)
    if args.config:
        from repro.core.serialization import load_config

        config, mode = load_config(args.config), "cgx"
    else:
        config, mode = _method_setup(args)
    if args.scheme:
        config.scheme = args.scheme
    timing = simulate_machine_step(machine, spec, config, n_gpus=args.gpus,
                                   plan_mode=mode)
    print(f"model      {spec.name} "
          f"({spec.num_parameters / 1e6:.1f}M params)", file=out)
    print(f"machine    {machine.name} x{timing.n_gpus} {machine.gpu.name}",
          file=out)
    method_label = args.config or args.method
    print(f"method     {method_label} (scheme={config.scheme}, "
          f"backend={config.backend})", file=out)
    print(f"step time  {timing.step_time * 1000:.1f} ms "
          f"(compute {timing.compute_time * 1000:.1f} ms, "
          f"comm tail {timing.comm_tail * 1000:.1f} ms)", file=out)
    print(f"throughput {timing.throughput:,.0f} {spec.item_unit}/s "
          f"({timing.scaling_efficiency * 100:.0f}% of linear)", file=out)
    print(f"wire       {timing.wire_bytes / 1e6:,.0f} MB/step", file=out)
    return 0


def _cmd_train(args, out) -> int:
    from repro.training import RECIPES, train_family

    if args.family not in RECIPES:
        print(f"unknown family {args.family!r}; "
              f"choose from {sorted(RECIPES)}", file=sys.stderr)
        return 2
    if args.baseline:
        config = None
    else:
        bucket = args.bucket_size or RECIPES[args.family].bucket_size
        config = CGXConfig.cgx_default(bucket)
        config.compression = CompressionSpec("qsgd", bits=args.bits,
                                             bucket_size=bucket)
    result = train_family(args.family, world_size=args.world, config=config,
                          steps=args.steps, adaptive_method=args.adaptive,
                          seed=args.seed)
    label = "baseline" if args.baseline else f"CGX {args.bits}-bit"
    print(f"{args.family} x{args.world} workers ({label}, "
          f"{result.steps} steps)", file=out)
    for record in result.history:
        print(f"  step {record['step']:5d}  loss {record['loss']:.4f}  "
              f"{result.metric_name} {record['metric']:.4g}", file=out)
    print(f"final {result.metric_name}: {result.final_metric:.4g}  "
          f"compression: {result.compression_ratio:.1f}x", file=out)
    return 0


#: experiment id -> benchmark file (relative to the repository root)
EXPERIMENTS = {
    "fig1": "bench_fig1_compression_sweep.py",
    "fig3": "bench_fig3_throughput.py",
    "fig4": "bench_fig4_adaptive_training.py",
    "fig6": "bench_fig6_overhead.py",
    "fig8": "bench_fig8_topology.py",
    "fig9": "bench_fig9_frameworks.py",
    "fig10": "bench_fig10_reductions.py",
    "fig11": "bench_fig11_backends.py",
    "table1": "bench_table1_gpus.py",
    "table2": "bench_table2_machines.py",
    "table3": "bench_table3_accuracy.py",
    "table4": "bench_table4_cloud.py",
    "table5": "bench_table5_multinode.py",
    "table6": "bench_table6_frameworks.py",
    "table7": "bench_table7_adaptive.py",
    "table8": "bench_table8_ceiling.py",
    "heterogeneous": "bench_heterogeneous.py",
    "ablation-quantizers": "bench_ablation_quantizers.py",
    "ablation-buckets": "bench_ablation_bucket_size.py",
    "ablation-filters": "bench_ablation_filters.py",
    "ablation-scheduling": "bench_ablation_scheduling.py",
    "stragglers": "bench_stragglers.py",
    "pareto": "bench_pareto_compressors.py",
    "partial-sync": "bench_partial_sync.py",
    "model-sweep": "bench_model_size_sweep.py",
    "fleet": "bench_fleet_scheduler.py",
}


def _cmd_experiment(args, out) -> int:
    import os

    if args.list_all or args.name is None:
        print("available experiments:", file=out)
        for name, bench in sorted(EXPERIMENTS.items()):
            print(f"  {name:22s} {bench}", file=out)
        return 0
    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; run with --list",
              file=sys.stderr)
        return 2
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    bench = os.path.join(repo_root, "benchmarks", EXPERIMENTS[args.name])
    if not os.path.exists(bench):
        print(f"benchmark file not found: {bench}", file=sys.stderr)
        return 2
    import pytest

    print(f"running {EXPERIMENTS[args.name]} "
          f"(results land in benchmarks/results/)", file=out)
    return pytest.main([bench, "--benchmark-only", "-q", "-s"])


def _cmd_analyze(args, out) -> int:
    from repro.analysis.cli import main as analysis_main

    argv = list(args.paths) + ["--format", args.fmt]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.no_schedule:
        argv.append("--no-schedule")
    if args.schedule_only:
        argv.append("--schedule-only")
    if args.contracts:
        argv.append("--contracts")
    if args.races:
        argv.append("--races")
    if args.plans:
        argv.append("--plans")
    if args.shapes:
        argv.append("--shapes")
    if args.health:
        argv.append("--health")
    if args.liveness:
        argv.append("--liveness")
    if args.overlap:
        argv.append("--overlap")
    if args.sched:
        argv.append("--sched")
    if args.elastic:
        argv.append("--elastic")
    if args.all_passes:
        argv.append("--all")
    return analysis_main(argv, out=out)


def _cmd_faults(args, out) -> int:
    from repro.faults import CAMPAIGNS, ResiliencePolicy, make_campaign
    from repro.training import RECIPES, train_family

    if args.list_all or args.campaign is None:
        print("available campaigns:", file=out)
        for name in sorted(CAMPAIGNS):
            plan = make_campaign(name, world=args.world, seed=args.seed)
            kinds = sorted({e.kind for e in plan.events})
            print(f"  {name:14s} {len(plan.events)} event(s): "
                  f"{', '.join(kinds)}", file=out)
        return 0
    if args.campaign not in CAMPAIGNS:
        print(f"unknown campaign {args.campaign!r}; run with --list",
              file=sys.stderr)
        return 2
    if args.family not in RECIPES:
        print(f"unknown family {args.family!r}; "
              f"choose from {sorted(RECIPES)}", file=sys.stderr)
        return 2

    from repro.training.tasks import make_task
    from repro.training.trainer import DataParallelTrainer

    plan = make_campaign(args.campaign, world=args.world, seed=args.seed)
    policy = ResiliencePolicy(crc_check=not args.no_crc, strict=args.strict)
    recipe = RECIPES[args.family]
    bucket = recipe.bucket_size
    config = CGXConfig.cgx_default(bucket)
    config.compression = CompressionSpec("qsgd", bits=args.bits,
                                         bucket_size=bucket)

    baseline = train_family(args.family, world_size=args.world, config=config,
                            steps=args.steps, seed=args.seed,
                            eval_every=max(1, args.steps))
    task = make_task(args.family, batch_size=recipe.batch_size,
                     **recipe.kwargs())
    store = None
    if args.checkpoint_dir:
        from repro.faults import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir, keep=args.keep)
    trainer = DataParallelTrainer(task, world_size=args.world, config=config,
                                  recipe=recipe, seed=args.seed,
                                  fault_plan=plan, policy=policy,
                                  supervised=args.supervised, store=store)
    faulty = trainer.train(steps=args.steps, eval_every=max(1, args.steps))
    runtime = trainer.fault_runtime
    assert runtime is not None

    recovery = "supervised (heartbeat detector)" if args.supervised \
        else "oracle-driven"
    print(f"campaign   {plan.name} (world={plan.world}, seed={plan.seed}, "
          f"{len(plan.events)} event(s)), recovery {recovery}", file=out)
    print(f"training   {args.family} x{args.world}, {args.steps} steps, "
          f"qsgd {args.bits}-bit", file=out)
    print(f"loss       fault-free {baseline.final_loss:.4f}  ->  "
          f"faulty {faulty.final_loss:.4f}", file=out)
    print(f"{baseline.metric_name:10s} "
          f"fault-free {baseline.final_metric:.4g}  ->  "
          f"faulty {faulty.final_metric:.4g}", file=out)
    summary = faulty.fault_summary or {}
    for name in ("deliveries", "lost", "corrupt_detected", "retries",
                 "retransmit_bytes", "forced_deliveries", "quorum_steps",
                 "crashes", "rejoins", "checkpoint_restores",
                 "heartbeats", "heartbeat_misses", "suspected_crashes",
                 "false_suspicions", "rejoin_admissions",
                 "straggler_demotions", "escalations", "oracle_reads",
                 "store_writes", "store_corrupt_detected",
                 "preempt_warnings", "graceful_exits", "drain_missed",
                 "spot_reclaims", "provisions", "provision_admissions",
                 "respecs"):
        if summary.get(name):
            print(f"  {name:22s} {summary[name]}", file=out)
    if args.log:
        with open(args.log, "wb") as handle:
            handle.write(runtime.log_bytes())
        print(f"event log  {args.log} ({len(runtime.records)} record(s))",
              file=out)
    return 0


def _cmd_sched(args, out) -> int:
    import json

    from repro.cluster import export_chrome_trace, get_machine, make_cluster
    from repro.sched import FleetSimulator, sample_fleet

    machine = get_machine(args.machine)
    topology = make_cluster(machine, args.nodes)
    kwargs = {}
    if args.models:
        kwargs["models"] = tuple(args.models.split(","))
    worlds = tuple(int(w) for w in args.worlds.split(","))
    jobs = sample_fleet(args.jobs, seed=args.seed, worlds=worlds,
                        mean_interarrival=args.mean_interarrival, **kwargs)
    sim = FleetSimulator(topology, jobs, gpu=machine.gpu,
                         policy=args.policy, routing=args.routing,
                         seed=args.seed, trace=bool(args.trace),
                         link_load_bin=args.link_load_bin)
    result = sim.run()
    metrics = result.metrics()

    if args.as_json:
        print(json.dumps(metrics.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(f"fleet      {topology.name} ({topology.n_gpus} GPUs), "
              f"policy={args.policy}, routing={args.routing}", file=out)
        print(f"workload   {metrics.n_jobs} jobs, seed={args.seed}, "
              f"completed {metrics.completed}", file=out)
        print(f"makespan   {metrics.makespan:.2f} s", file=out)
        print(f"throughput {metrics.fleet_items_per_s:,.0f} items/s "
              f"({metrics.fleet_steps_per_s:.1f} steps/s)", file=out)
        print(f"queueing   mean {metrics.mean_queue_wait:.3f} s, "
              f"p95 {metrics.p95_queue_wait:.3f} s, "
              f"max {metrics.max_queue_wait:.3f} s", file=out)
        print(f"fairness   {metrics.fairness:.3f} (Jain, over per-job "
              f"efficiency)", file=out)
        print(f"slowdown   mean {metrics.mean_slowdown:.2f}x, "
              f"max {metrics.max_slowdown:.2f}x vs isolated", file=out)
        print(f"wire       {metrics.total_wire_bytes / 1e9:.2f} GB total",
              file=out)
        if metrics.busiest_links:
            busiest = ", ".join(f"{name} ({seconds:.1f}s)"
                                for name, seconds
                                in metrics.busiest_links[:4])
            print(f"hot links  {busiest}", file=out)
    if args.log:
        with open(args.log, "wb") as handle:
            handle.write(result.log_bytes())
        print(f"event log  {args.log} ({len(result.records)} record(s))",
              file=out)
    if args.trace:
        events = export_chrome_trace(result.network, args.trace)
        print(f"trace      {args.trace} ({events} transfer event(s) in "
              f"per-job lanes)", file=out)
    return 0


def _cmd_topology(args, out) -> int:
    machine = get_machine(args.machine)
    topo = machine.topology(args.gpus)
    print(topo.describe(), file=out)
    print(f"\nGPU: {machine.gpu.name} ({machine.gpu.memory_gb} GB, "
          f"GPUDirect: {machine.gpu.gpu_direct})", file=out)
    if machine.price_per_hour:
        print(f"price: ${machine.price_per_hour}/hour", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    commands = {
        "simulate": _cmd_simulate,
        "train": _cmd_train,
        "topology": _cmd_topology,
        "experiment": _cmd_experiment,
        "analyze": _cmd_analyze,
        "faults": _cmd_faults,
        "sched": _cmd_sched,
    }
    return commands[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

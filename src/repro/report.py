"""ASCII chart rendering for figure reproductions.

The benchmark harness regenerates the paper's *figures* as data series;
this module renders them as terminal line charts so the shape (the
saturation curve of Figure 1, the convergence curves of Figure 4) is
visible directly in ``benchmarks/results/``.
"""

from __future__ import annotations

import math

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 68,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as a character grid with a legend.

    Args:
        series: name -> [(x, y), ...]; each series gets its own marker.
        log_x / log_y: logarithmic axes (values must be positive).
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("ascii_chart needs at least one non-empty series")

    def tx(value: float) -> float:
        if log_x:
            if value <= 0:
                raise ValueError("log_x requires positive x values")
            return math.log10(value)
        return value

    def ty(value: float) -> float:
        if log_y:
            if value <= 0:
                raise ValueError("log_y requires positive y values")
            return math.log10(value)
        return value

    points = [(tx(x), ty(y)) for pts in series.values() for x, y in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = int(round((tx(x) - x_min) / x_span * (width - 1)))
            row = int(round((ty(y) - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    def fmt(value: float, logged: bool) -> str:
        actual = 10**value if logged else value
        if abs(actual) >= 1000:
            return f"{actual:,.0f}"
        return f"{actual:.3g}"

    lines = []
    top_label = fmt(y_max, log_y)
    bottom_label = fmt(y_min, log_y)
    pad = max(len(top_label), len(bottom_label))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label.rjust(pad)
        elif row_idx == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    lines.append(" " * pad + f"  {fmt(x_min, log_x)}"
                 + f"{fmt(x_max, log_x)}".rjust(width - len(fmt(x_min, log_x))))
    lines.append(f"{y_label} vs {x_label}"
                 + ("  [log x]" if log_x else "")
                 + ("  [log y]" if log_y else ""))
    legend = "  ".join(f"{_MARKERS[i % len(_MARKERS)]}={name}"
                       for i, name in enumerate(series))
    lines.append(legend)
    return "\n".join(lines)

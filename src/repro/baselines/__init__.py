"""Comparison baselines: GRACE and the PowerSGD DDP hook."""

from .grace import GRACE_NO_BUCKETING, grace_config, grace_spec
from .powersgd_ddp import PowerSGDReducer

__all__ = ["grace_config", "grace_spec", "GRACE_NO_BUCKETING",
           "PowerSGDReducer"]

"""PowerSGD as a DDP communication hook (the PyTorch-native baseline).

Unlike quantization, PowerSGD's factors are *associative*: the P and Q
matrices of all workers can simply be averaged with dense allreduce,
which is why it is the one compression method PyTorch ships natively
(the paper's Section 1).  The reducer below follows the hook's
structure: per-worker error feedback, warm-started Q, shared
orthonormalization so every replica reconstructs identical gradients.

Reproduced limitations the paper leans on:

* 1-D tensors (biases, norms) are reduced densely;
* fp16 gradients are rejected (``allow_fp16=False`` default) — the
  power iteration diverges at half precision, which is why the paper
  could only compare against PowerSGD in fp32.
"""

from __future__ import annotations

import numpy as np

import zlib

from repro.compression.powersgd import orthonormalize

__all__ = ["PowerSGDReducer"]


class PowerSGDReducer:
    """Associative PowerSGD aggregation across in-process workers."""

    def __init__(self, rank: int = 4, seed: int = 0,
                 allow_fp16: bool = False):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self.seed = seed
        self.allow_fp16 = allow_fp16
        self._q: dict[str, np.ndarray] = {}
        self._errors: dict[tuple[int, str], np.ndarray] = {}
        self.wire_bytes_last = 0

    def _q_for(self, name: str, cols: int, rank: int) -> np.ndarray:
        q = self._q.get(name)
        if q is None or q.shape != (cols, rank):
            # stable per-name seed (hash() is salted per process)
            digest = zlib.crc32(name.encode())
            rng = np.random.default_rng(self.seed ^ digest)
            q = orthonormalize(
                rng.standard_normal((cols, rank)).astype(np.float32)
            )
            self._q[name] = q
        return q

    def reduce(self, per_worker_grads: list[dict[str, np.ndarray]],
               average: bool = True) -> list[dict[str, np.ndarray]]:
        """Aggregate gradients; returns per-worker reduced dicts."""
        if not per_worker_grads:
            raise ValueError("need at least one worker")
        world = len(per_worker_grads)
        names = list(per_worker_grads[0])
        outputs: list[dict[str, np.ndarray]] = [dict() for _ in range(world)]
        self.wire_bytes_last = 0

        for name in names:
            grads = [per_worker_grads[w][name] for w in range(world)]
            if not self.allow_fp16 and any(g.dtype == np.float16 for g in grads):
                raise TypeError(
                    "PowerSGD is incompatible with fp16 gradients "
                    "(power iteration diverges at half precision)"
                )
            shape = grads[0].shape
            if len(shape) < 2:
                dense = np.mean(grads, axis=0, dtype=np.float32)
                total = dense if average else dense * world
                for w in range(world):
                    outputs[w][name] = total.copy()
                self.wire_bytes_last += grads[0].size * 4
                continue

            rows = shape[0]
            cols = grads[0].size // rows
            rank = min(self.rank, rows, cols)
            q = self._q_for(name, cols, rank)
            corrected = []
            for w in range(world):
                m = grads[w].reshape(rows, cols).astype(np.float32)
                error = self._errors.get((w, name))
                if error is not None:
                    m = m + error
                corrected.append(m)

            # allreduce-mean of P, shared orthonormalization, then Q.
            p_mean = np.mean([m @ q for m in corrected], axis=0)
            p = orthonormalize(p_mean)
            q_new = np.mean([m.T @ p for m in corrected], axis=0)
            self._q[name] = q_new
            approx = (p @ q_new.T).astype(np.float32)
            for w in range(world):
                self._errors[(w, name)] = corrected[w] - approx
            result = approx if average else approx * world
            for w in range(world):
                outputs[w][name] = result.reshape(shape).copy()
            self.wire_bytes_last += (rows + cols) * rank * 4
        return outputs

    def error_norm(self, worker: int, name: str) -> float:
        error = self._errors.get((worker, name))
        if error is None:
            return 0.0
        return float(np.linalg.norm(error))

    def reset(self) -> None:
        self._q.clear()
        self._errors.clear()

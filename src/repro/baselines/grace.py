"""GRACE baseline (Xu et al., ICDCS'21) as characterized in the paper.

Table 6's analysis attributes GRACE's >3x deficit against CGX to three
implementation choices, all reproduced here:

* **Allgather reduction** — every rank broadcasts its whole compressed
  gradient (NCCL has no compressed allreduce), so wire traffic scales
  with world size;
* **no bucketing** — one scale for the entire tensor, hurting accuracy
  (our tests measure the error gap vs bucketed QSGD);
* **INT8 wire format** — even 4-bit codes travel as one byte each, so
  the 4-bit setting only achieves ~4x wire compression.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compression import CompressionSpec
from repro.core import CGXConfig

__all__ = ["grace_config", "GRACE_NO_BUCKETING"]

#: GRACE quantizes each tensor with a single global scale
GRACE_NO_BUCKETING = 1 << 30


def grace_config(bits: int = 4) -> CGXConfig:
    """Engine configuration reproducing the GRACE comparison setup."""
    spec = CompressionSpec("qsgd", bits=bits, bucket_size=GRACE_NO_BUCKETING,
                           wire_dtype_bits=8)
    return CGXConfig(
        backend="nccl",
        scheme="allgather",
        compression=spec,
        filtered_keywords=(),   # GRACE compresses every tensor uniformly
        min_compress_numel=0,
        fuse_filtered=False,
        chunk_streams=1,
        overlap=False,          # hook fires after backward completes
    )


def grace_spec(bits: int = 4) -> CompressionSpec:
    """The GRACE wire spec alone (INT8-coded, unbucketed QSGD)."""
    return replace(grace_config(bits).compression)

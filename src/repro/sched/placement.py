"""Placement policies: mapping a job's ranks onto free fleet GPUs.

A policy sees the fleet topology and the currently free GPU set and
either returns the GPUs the job should occupy or ``None`` (the job
queues).  All policies are deterministic — identical inputs give
identical placements, which the fleet's byte-identical event logs rely
on.

* ``packed`` — best-fit onto the fewest machines: a job lands on the
  single node with the *least* free capacity that still fits it
  (classic best-fit, minimizing fragmentation), spilling across nodes
  only when no single node can host it.  Packed fleets keep jobs on
  fast intra-node links but pile them onto shared host-memory/QPI
  resources.
* ``spread`` — load-balance: ranks are dealt one at a time to the node
  with the most free GPUs.  Spread jobs straddle nodes, paying
  inter-node Ethernet on their own collectives but relieving the
  intra-node shared links.
* ``numa`` — PCIe-locality-aware packing: prefer a single NUMA group
  (one root complex — no QPI crossing at all), then a single node,
  then fall back to packed spilling.
"""

from __future__ import annotations

from repro.cluster import Topology

__all__ = ["PLACEMENT_POLICIES", "place"]

PLACEMENT_POLICIES = ("packed", "spread", "numa")


def place(policy: str, topology: Topology, world: int,
          free: set[int]) -> list[int] | None:
    """GPUs for a ``world``-rank job, or ``None`` if it must queue."""
    if policy not in PLACEMENT_POLICIES:
        raise KeyError(
            f"unknown policy {policy!r}; choose from {PLACEMENT_POLICIES}")
    if world > topology.n_gpus:
        raise ValueError(
            f"job wants {world} ranks but the fleet has {topology.n_gpus}")
    if len(free) < world:
        return None
    if policy == "packed":
        return _packed(topology, world, free)
    if policy == "spread":
        return _spread(topology, world, free)
    return _numa(topology, world, free)


def _free_by_node(topology: Topology, free: set[int]) -> dict[int, list[int]]:
    nodes: dict[int, list[int]] = {}
    for gpu in sorted(free):
        nodes.setdefault(topology.node_of[gpu], []).append(gpu)
    return nodes


def _locality_order(topology: Topology, gpus: list[int]) -> list[int]:
    """Free GPUs of one node, NUMA-group-first (fill one root, then the
    next) so intra-node placements avoid the QPI bridge when they can."""
    return sorted(gpus, key=lambda g: (topology.numa_of[g], g))


def _packed(topology: Topology, world: int,
            free: set[int]) -> list[int] | None:
    nodes = _free_by_node(topology, free)
    fitting = [(len(gpus), node) for node, gpus in nodes.items()
               if len(gpus) >= world]
    if fitting:
        _, node = min(fitting)   # best fit: least leftover capacity
        return _locality_order(topology, nodes[node])[:world]
    # no single node fits: spill across nodes, fewest nodes first
    chosen: list[int] = []
    for node, gpus in sorted(nodes.items(),
                             key=lambda kv: (-len(kv[1]), kv[0])):
        chosen.extend(_locality_order(topology, gpus)[:world - len(chosen)])
        if len(chosen) == world:
            return chosen
    return None


def _spread(topology: Topology, world: int,
            free: set[int]) -> list[int] | None:
    nodes = _free_by_node(topology, free)
    chosen: list[int] = []
    while len(chosen) < world:
        candidates = [(node, gpus) for node, gpus in nodes.items() if gpus]
        if not candidates:
            return None
        node, gpus = max(candidates, key=lambda kv: (len(kv[1]), -kv[0]))
        chosen.append(gpus.pop(0))
    return chosen


def _numa(topology: Topology, world: int,
          free: set[int]) -> list[int] | None:
    groups: dict[tuple[int, int], list[int]] = {}
    for gpu in sorted(free):
        key = (topology.node_of[gpu], topology.numa_of[gpu])
        groups.setdefault(key, []).append(gpu)
    fitting = [(len(gpus), key) for key, gpus in groups.items()
               if len(gpus) >= world]
    if fitting:
        _, key = min(fitting)   # best-fit NUMA group: zero QPI crossings
        return groups[key][:world]
    return _packed(topology, world, free)

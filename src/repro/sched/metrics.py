"""Fleet-level metrics: throughput, queueing delay, fairness, link load.

The fleet simulator reports *what happened*; this module turns it into
the numbers the scheduling literature argues about:

* **fleet throughput** — training items (images / tokens) processed per
  second of fleet time, summed over every job.
* **queueing delay** — seconds between a job's arrival and its
  placement; the mean and tail (p95) expose head-of-line blocking under
  the FIFO admission discipline.
* **Jain fairness** — computed over per-job *efficiency* (isolated step
  time ÷ achieved mean step time, in ``(0, 1]``), so a fleet where
  contention hits every job equally scores 1.0 and one that starves a
  subset scores toward ``1/n``.  Isolated baselines replay each job's
  exact plan and placement on an empty clone of the network.
* **link load** — busiest shared resources by busy-seconds, plus the
  binned per-link timelines when the simulator recorded them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Network

from .fleet import FleetResult

__all__ = ["FleetMetrics", "compute_metrics", "jain_fairness", "percentile"]


def jain_fairness(values: list[float]) -> float:
    """Jain's index ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly fair.

    Defined for non-negative allocations; an empty or all-zero vector
    degenerates to 1.0 (nobody is being treated unequally).
    """
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("Jain fairness is defined for non-negative values")
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    # float rounding can nudge a perfectly-fair vector a few ulps above
    # 1.0; the index is provably <= 1 (Cauchy-Schwarz), so clamp
    return min(1.0, (total * total) / (len(values) * square_sum))


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile (``p`` in [0, 100]) of ``values``.

    An empty sequence degenerates to 0.0 — an all-instantly-admitted
    fleet has no queue waits, and its tail wait is zero, not an error
    (certifier rule SCD006 evaluates the degenerate fleets too).
    """
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"p must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class FleetMetrics:
    """Aggregated outcome of one fleet campaign."""

    policy: str
    routing: str
    n_jobs: int
    completed: int
    makespan: float
    fleet_items_per_s: float        # training items processed per second
    fleet_steps_per_s: float
    mean_queue_wait: float
    p95_queue_wait: float
    max_queue_wait: float
    fairness: float                 # Jain index over per-job efficiencies
    mean_slowdown: float            # achieved / isolated step time, >= 1.0-ish
    max_slowdown: float
    total_wire_bytes: int
    per_job: list[dict] = field(default_factory=list)
    busiest_links: list[tuple[str, float]] = field(default_factory=list)
    link_timelines: dict[str, dict[int, float]] = field(default_factory=dict)
    link_load_bin: float = 0.0

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "routing": self.routing,
            "n_jobs": self.n_jobs,
            "completed": self.completed,
            "makespan": self.makespan,
            "fleet_items_per_s": self.fleet_items_per_s,
            "fleet_steps_per_s": self.fleet_steps_per_s,
            "mean_queue_wait": self.mean_queue_wait,
            "p95_queue_wait": self.p95_queue_wait,
            "max_queue_wait": self.max_queue_wait,
            "fairness": self.fairness,
            "mean_slowdown": self.mean_slowdown,
            "max_slowdown": self.max_slowdown,
            "total_wire_bytes": self.total_wire_bytes,
            "per_job": self.per_job,
            "busiest_links": [list(item) for item in self.busiest_links],
            "link_load_bin": self.link_load_bin,
        }


def isolated_step_times(result: FleetResult) -> dict[int, float]:
    """Each job's contention-free step time, with its fleet placement.

    Replays every job's precomputed plan on a fresh network over the
    same topology and backend — the counterfactual "this job had the
    cluster to itself" that slowdown and fairness are measured against.
    """
    baselines: dict[int, float] = {}
    for job_id, runner in result.runners.items():
        probe = Network(result.topology, result.network.backend)
        end, _ = runner.run_step(0.0, network=probe)
        baselines[job_id] = end
    return baselines


def compute_metrics(result: FleetResult, top_links: int = 8) -> FleetMetrics:
    """Reduce a :class:`FleetResult` to fleet-level numbers."""
    baselines = isolated_step_times(result)
    waits = [s.queue_wait for s in result.states if s.queue_wait is not None]
    makespan = result.makespan

    items = 0.0
    steps = 0
    efficiencies: list[float] = []
    slowdowns: list[float] = []
    per_job: list[dict] = []
    total_wire = 0
    for state in result.states:
        runner = result.runners.get(state.spec.job_id)
        total_wire += state.wire_bytes
        steps += state.steps_done
        entry = {
            "job": state.spec.job_id,
            "model": state.spec.model,
            "world": state.spec.world,
            "method": state.spec.method,
            "status": state.status,
            "queue_wait": state.queue_wait,
            "mean_step_time": state.mean_step_time,
            "wire_bytes": state.wire_bytes,
        }
        if runner is not None:
            items += runner.items_per_step * state.steps_done
            achieved = state.mean_step_time
            isolated = baselines[state.spec.job_id]
            if achieved and isolated > 0:
                slowdown = achieved / isolated
                slowdowns.append(slowdown)
                efficiencies.append(min(1.0, isolated / achieved))
                entry["isolated_step_time"] = isolated
                entry["slowdown"] = slowdown
        per_job.append(entry)

    busy = sorted(
        ((name, seconds)
         for name, seconds in result.network.pool.busy_seconds().items()
         if not name.startswith("gpu")),
        key=lambda kv: (-kv[1], kv[0]),
    )
    return FleetMetrics(
        policy=result.policy,
        routing=result.routing,
        n_jobs=len(result.states),
        completed=sum(1 for s in result.states if s.status == "done"),
        makespan=makespan,
        fleet_items_per_s=items / makespan if makespan > 0 else 0.0,
        fleet_steps_per_s=steps / makespan if makespan > 0 else 0.0,
        mean_queue_wait=sum(waits) / len(waits) if waits else 0.0,
        p95_queue_wait=percentile(waits, 95.0) if waits else 0.0,
        max_queue_wait=max(waits) if waits else 0.0,
        fairness=jain_fairness(efficiencies),
        mean_slowdown=(sum(slowdowns) / len(slowdowns)) if slowdowns else 1.0,
        max_slowdown=max(slowdowns) if slowdowns else 1.0,
        total_wire_bytes=total_wire,
        per_job=per_job,
        busiest_links=busy[:top_links],
        link_timelines=result.network.link_loads(),
        link_load_bin=result.network.load_bin_width,
    )

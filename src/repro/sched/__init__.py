"""Multi-tenant fleet scheduler: concurrent training jobs on one shared
simulated cluster.

``jobs`` declares what runs (seeded mixed-model workloads), ``placement``
decides where (packed / spread / NUMA-aware policies with FIFO admission
queueing), ``fleet`` advances everything on one shared event clock and
link-resource pool, and ``metrics`` reduces the outcome to fleet
throughput, queueing delay, Jain fairness, and link-load timelines.
``battery`` holds the ~30 seeded fleet cells the SCD certifier
(``repro.analysis.sched``) replays and certifies.
"""

from .battery import (DYADIC_SHARES, FleetCase, apply_throttles, fleet_cases,
                      run_fleet_case)
from .fleet import FLEET_LOG_VERSION, FleetResult, FleetSimulator, JobRunner
from .jobs import (DEFAULT_FLEET_MODELS, JOB_METHODS, JobSpec, JobState,
                   sample_fleet)
from .metrics import FleetMetrics, compute_metrics, jain_fairness, percentile
from .placement import PLACEMENT_POLICIES, place

__all__ = [
    "DYADIC_SHARES", "FleetCase", "apply_throttles", "fleet_cases",
    "run_fleet_case",
    "FLEET_LOG_VERSION", "FleetResult", "FleetSimulator", "JobRunner",
    "DEFAULT_FLEET_MODELS", "JOB_METHODS", "JobSpec", "JobState",
    "sample_fleet",
    "FleetMetrics", "compute_metrics", "jain_fairness", "percentile",
    "PLACEMENT_POLICIES", "place",
]

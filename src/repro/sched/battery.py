"""The seeded fleet battery the SCD certifier replays.

The fleet-schedule certifier (:mod:`repro.analysis.sched`) does not
certify the scheduler in the abstract — it certifies *runs*: ~30 seeded
fleets spanning 4–200 jobs, every placement policy, both routing
policies, throttled and unthrottled tenants, single-rank degenerate
jobs, and disjoint-placement cells whose isolation must be bit-exact.
The battery lives here (next to the subsystem it exercises, like
``repro.faults.cases`` for the liveness pillar) so the scheduler's own
tests and the certifier replay the identical cells.

Throttle shares are deliberately **dyadic** (powers of two): dividing a
float by ``0.5`` or ``0.25`` is exact, so the throttle-semantics rule
(SCD004) can demand bit-equality instead of a tolerance.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cluster import make_cluster

from .fleet import FleetResult, FleetSimulator
from .jobs import JobSpec, sample_fleet

__all__ = ["FleetCase", "apply_throttles", "fleet_cases", "run_fleet_case",
           "DYADIC_SHARES"]

#: exact-in-float bandwidth shares the battery throttles jobs to
DYADIC_SHARES = (0.5, 0.25)


@dataclass(frozen=True)
class FleetCase:
    """One certifiable cell: a seeded workload on a concrete cluster."""

    name: str
    machine: str                    # cluster template (repro.cluster.MACHINES)
    nodes: int                      # machines in the fleet
    n_jobs: int
    policy: str                     # placement policy
    routing: str                    # "static" | "adaptive"
    seed: int
    models: tuple[str, ...] = ("resnet50",)
    worlds: tuple[int, ...] = (2, 4, 8)
    mean_interarrival: float = 0.02
    steps_range: tuple[int, int] = (2, 5)
    throttle_stride: int = 0        # every stride-th job gets a dyadic share

    @property
    def path(self) -> str:
        """The finding pseudo-path, mirroring the DLV/OVL convention."""
        return f"<sched:{self.policy}-{self.routing}@n={self.n_jobs}/{self.name}>"

    def jobs(self) -> list[JobSpec]:
        specs = sample_fleet(
            self.n_jobs, seed=self.seed, models=self.models,
            worlds=self.worlds, mean_interarrival=self.mean_interarrival,
            steps_range=self.steps_range)
        if self.throttle_stride:
            specs = apply_throttles(specs, stride=self.throttle_stride)
        return specs


def apply_throttles(specs: list[JobSpec], stride: int = 3,
                    shares: tuple[float, ...] = DYADIC_SHARES
                    ) -> list[JobSpec]:
    """Throttle every ``stride``-th job to a cycling dyadic share."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    out: list[JobSpec] = []
    hit = 0
    for index, spec in enumerate(specs):
        if index % stride == 0:
            spec = dataclasses.replace(
                spec, throttle=shares[hit % len(shares)])
            hit += 1
        out.append(spec)
    return out


def fleet_cases() -> list[FleetCase]:
    """The certifier's ~30 cells; deterministic order and content."""
    cases: list[FleetCase] = []
    # the policy x routing grid at small sizes: adaptive routing only
    # bites where the topology registers detours, so adaptive cells run
    # on the NVLink-ring dgx1 and static ones on the commodity box
    for policy in ("packed", "spread", "numa"):
        for routing in ("static", "adaptive"):
            machine = "dgx1" if routing == "adaptive" else "rtx3090-8x"
            for n_jobs, seed in ((4, 101), (8, 102)):
                cases.append(FleetCase(
                    name=f"grid-{n_jobs}", machine=machine, nodes=2,
                    n_jobs=n_jobs, policy=policy, routing=routing,
                    seed=seed))                                     # 12
    # deeper queues with a mixed-model population
    for index, policy in enumerate(("packed", "spread", "numa")):
        cases.append(FleetCase(
            name="deep-queue", machine="rtx3090-8x", nodes=2, n_jobs=16,
            policy=policy, routing="static", seed=201 + index,
            models=("resnet50", "vgg16"), mean_interarrival=0.005))  # 15
    # throttled tenants (dyadic shares), each placement policy
    for index, policy in enumerate(("packed", "spread", "numa")):
        cases.append(FleetCase(
            name="throttled", machine="rtx3090-8x", nodes=2, n_jobs=12,
            policy=policy, routing="static", seed=301 + index,
            throttle_stride=3))                                      # 18
    cases.append(FleetCase(
        name="throttled-adaptive", machine="dgx1", nodes=2, n_jobs=12,
        policy="spread", routing="adaptive", seed=304,
        throttle_stride=2))                                          # 19
    # disjoint-placement cells: full-machine jobs on a multi-node fleet
    # land on private links, so SCD005's bit-identical leg has teeth
    cases.append(FleetCase(
        name="disjoint", machine="rtx3090-8x", nodes=4, n_jobs=6,
        policy="packed", routing="static", seed=401, worlds=(8,),
        mean_interarrival=0.05))                                     # 20
    cases.append(FleetCase(
        name="numa-fit", machine="rtx3090-8x", nodes=2, n_jobs=6,
        policy="numa", routing="static", seed=402, worlds=(4,)))     # 21
    # degenerate tenants: single-rank jobs have no collective at all
    cases.append(FleetCase(
        name="singles", machine="rtx3090-8x", nodes=1, n_jobs=8,
        policy="spread", routing="static", seed=403, worlds=(1, 2)))  # 22
    # embedding-heavy workload (very different package plan)
    cases.append(FleetCase(
        name="txl", machine="dgx1", nodes=2, n_jobs=6,
        policy="packed", routing="static", seed=404,
        models=("transformer_xl",), worlds=(2, 4)))                  # 23
    cases.append(FleetCase(
        name="vgg", machine="rtx3090-8x", nodes=2, n_jobs=16,
        policy="packed", routing="static", seed=405,
        models=("vgg16",), worlds=(2, 4)))                           # 24
    # heavy-traffic scale, up to the 200-job cell the pillar advertises;
    # short step counts keep the whole battery certifiable in seconds
    cases.append(FleetCase(
        name="scale-32", machine="rtx3090-8x", nodes=2, n_jobs=32,
        policy="packed", routing="static", seed=501,
        mean_interarrival=0.002, steps_range=(2, 3)))                # 25
    cases.append(FleetCase(
        name="scale-64", machine="rtx3090-8x", nodes=2, n_jobs=64,
        policy="spread", routing="static", seed=502,
        mean_interarrival=0.002, steps_range=(2, 3)))                # 26
    cases.append(FleetCase(
        name="scale-64-throttled", machine="rtx3090-8x", nodes=4,
        n_jobs=64, policy="numa", routing="static", seed=503,
        mean_interarrival=0.002, steps_range=(2, 3),
        throttle_stride=4))                                          # 27
    cases.append(FleetCase(
        name="scale-120", machine="dgx1", nodes=4, n_jobs=120,
        policy="numa", routing="adaptive", seed=504,
        mean_interarrival=0.001, steps_range=(1, 2)))                # 28
    cases.append(FleetCase(
        name="scale-200", machine="rtx3090-8x", nodes=4, n_jobs=200,
        policy="packed", routing="static", seed=505,
        mean_interarrival=0.001, steps_range=(1, 2)))                # 29
    cases.append(FleetCase(
        name="scale-200-adaptive", machine="dgx1", nodes=4, n_jobs=200,
        policy="spread", routing="adaptive", seed=506,
        mean_interarrival=0.001, steps_range=(1, 2)))                # 30
    return cases


def run_fleet_case(case: FleetCase) -> FleetResult:
    """Run one cell with the evidence recorders the certifier needs on
    (transfer trace for perturbation checks, exact conservation audit
    for SCD003)."""
    topology = make_cluster(case.machine, case.nodes)
    simulator = FleetSimulator(
        topology, case.jobs(), policy=case.policy, routing=case.routing,
        seed=case.seed, trace=True, audit=True)
    return simulator.run()

"""The fleet event loop: N concurrent training jobs on one shared clock.

:class:`FleetSimulator` advances a whole fleet — arrivals, FIFO
admission through a placement policy, per-job training steps, and
departures — on a single shared :class:`~repro.cluster.network.Network`.
Every job's transfers and compression kernels are scheduled onto the
*same* link-resource pool with a job tag, so contention between jobs
emerges on shared QPI, host-memory and Ethernet links exactly the way
intra-job contention does in the single-job model, and per-job throttle
rates and adaptive route selection (the psim-style knobs) apply on top.

Each job's step plan (engine packages + gradient-ready offsets) is
computed once at admission by :class:`JobRunner` and replayed per step
with the job's current clock as the base — the fleet analog of
``repro.training.perf.simulate_step``.

Event ordering is greedy list scheduling at step granularity: the
pending step with the earliest *start* time is scheduled next (ties
broken by job id), matching the resource pool's no-backfill semantics.
Two same-seed runs produce byte-identical canonical event logs
(:meth:`FleetResult.log_bytes`), the determinism contract every prior
subsystem follows.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster import Network, Topology, get_backend, get_gpu
from repro.cluster.backends import BackendModel
from repro.cluster.gpu import GPUSpec
from repro.collectives import time_allreduce
from repro.models import ModelSpec, build_spec
from repro.training.perf import (optimizer_time, package_ready_offsets,
                                 plan_step_packages)

from .jobs import JobSpec, JobState
from .placement import PLACEMENT_POLICIES, place

if TYPE_CHECKING:
    from .metrics import FleetMetrics

__all__ = ["FleetSimulator", "FleetResult", "JobRunner", "FLEET_LOG_VERSION"]

FLEET_LOG_VERSION = 1


class JobRunner:
    """One job's precomputed step model, replayed on a shared network.

    Planning (engine packages, fusion, gradient-ready offsets) happens
    once; each :meth:`run_step` then replays the plan with the job's
    current clock as origin, occupying the shared pool under the job's
    tag.
    """

    def __init__(self, spec: JobSpec, model: ModelSpec, gpu: GPUSpec,
                 ranks: list[int], network: Network) -> None:
        self.spec = spec
        self.ranks = list(ranks)
        self.network = network
        self.config, plan_mode = spec.build_config()
        batch = spec.batch_per_gpu or gpu.max_batch_per_gpu(model)
        self.batch_per_gpu = batch
        self.compute_time = gpu.step_compute_time(model, batch)
        self.optimizer_time = optimizer_time(model)
        self.items_per_step = len(ranks) * batch * model.items_per_sample
        if len(ranks) > 1:
            packages = plan_step_packages(model, self.config, plan_mode)
            offsets = package_ready_offsets(model, self.config,
                                            self.compute_time, packages)
            self.plan = sorted(zip(packages, offsets), key=lambda po: po[1])
        else:
            self.plan = []

    def run_step(self, start: float,
                 network: Network | None = None) -> tuple[float, int]:
        """Execute one training step starting at ``start``.

        Returns ``(step end time, wire bytes)``.  ``network`` overrides
        the shared network — the metrics layer uses a fresh one to
        measure the job's contention-free (isolated) step time with the
        identical plan and placement.
        """
        net = network if network is not None else self.network
        last_end = start + self.compute_time
        wire = 0
        for package, offset in self.plan:
            timing = time_allreduce(
                net, self.ranks, package.numel, package.spec,
                scheme=self.config.scheme, ready=start + offset,
                chunk_streams=self.config.chunk_streams,
                job=self.spec.job_id,
            )
            last_end = max(last_end, timing.end)
            wire += timing.wire_bytes
        return last_end + self.optimizer_time, wire

    def isolated_step_time(self, backend: BackendModel | str) -> float:
        """Step duration with this plan/placement on an empty network."""
        probe = Network(self.network.topology, backend)
        end, _ = self.run_step(0.0, network=probe)
        return end


@dataclass
class FleetResult:
    """Everything a finished fleet campaign produced."""

    policy: str
    routing: str
    backend_name: str
    seed: int | None
    topology: Topology
    states: list[JobState]
    records: list[dict]            # canonical event stream, processing order
    network: Network
    runners: dict[int, "JobRunner"] = field(repr=False, default_factory=dict)

    @property
    def makespan(self) -> float:
        ends = [s.finish_time for s in self.states if s.finish_time is not None]
        return max(ends) if ends else 0.0

    def log_bytes(self) -> bytes:
        """Canonical byte encoding of the fleet event log.

        Two same-seed campaigns must produce identical bytes — the
        determinism check CI enforces with ``cmp``.
        """
        payload = {
            "version": FLEET_LOG_VERSION,
            "fleet": {
                "policy": self.policy,
                "routing": self.routing,
                "backend": self.backend_name,
                "seed": self.seed,
                "topology": self.topology.name,
                "n_gpus": self.topology.n_gpus,
                "jobs": [s.spec.to_dict() for s in self.states],
            },
            "records": self.records,
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def metrics(self) -> FleetMetrics:
        """Fleet-level metrics (lazy import avoids a module cycle)."""
        from .metrics import compute_metrics

        return compute_metrics(self)

    def job_link_names(self, job_id: int) -> set[str]:
        """Shared (non-GPU-engine) resources this job's steps occupied."""
        return {name
                for name in self.network.job_link_seconds(job_id)
                if not name.startswith("gpu")}

    def isolated_replay(self, job_id: int) -> list[float]:
        """Recorded step end times, replayed as if the job ran alone.

        Replays the job's precomputed plan on a fresh network over the
        same topology/backend/routing (with the job's own throttle
        registered), launching every step at its *recorded* start time.
        Contention can only delay — resource starts are
        ``max(ready, busy_until)`` and float ``+``/``max`` are monotone
        — so each fleet step end is >= its replayed end, and for a job
        whose links were touched by no time-overlapping competitor the
        two are bit-identical (certifier rule SCD005).
        """
        runner = self.runners[job_id]
        spec = runner.spec
        probe = Network(self.topology, self.network.backend,
                        route_policy=self.routing)
        if spec.throttle < 1.0:
            probe.set_job_throttle(job_id, spec.throttle)
        ends: list[float] = []
        for record in self.records:
            if record["event"] == "step" and record["job"] == job_id:
                end, _ = runner.run_step(record["t"], network=probe)
                ends.append(end)
        return ends


class FleetSimulator:
    """Places and advances concurrent jobs on one shared simulated cluster.

    Args:
        topology: the fleet's interconnect (typically
            :func:`~repro.cluster.machine.make_cluster`).
        jobs: the submission schedule (see :func:`~repro.sched.jobs
            .sample_fleet`).
        gpu: compute envelope of every fleet GPU (name or spec).
        policy: placement policy (:data:`PLACEMENT_POLICIES`).
        backend: transport cost model for the shared network.
        routing: ``static`` or ``adaptive`` route selection.
        seed: recorded in the canonical log header (the workload
            generator's seed; the loop itself draws no randomness).
        trace: record per-transfer records (exportable to Perfetto with
            per-job lanes).
        link_load_bin: if > 0, track per-link busy seconds in bins of
            this width (the link-load timelines in the metrics).
        audit: record the exact occupation ledgers the conservation
            certifier sums in :class:`fractions.Fraction` arithmetic
            (rule SCD003); off by default — ledgers grow with every
            scheduled task.
    """

    def __init__(self, topology: Topology, jobs: list[JobSpec],
                 gpu: GPUSpec | str = "RTX3090", policy: str = "packed",
                 backend: str = "shm", routing: str = "static",
                 seed: int | None = None, trace: bool = False,
                 link_load_bin: float = 0.0,
                 spec_library: dict[str, ModelSpec] | None = None,
                 audit: bool = False) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise KeyError(
                f"unknown policy {policy!r}; choose from {PLACEMENT_POLICIES}")
        if len({spec.job_id for spec in jobs}) != len(jobs):
            raise ValueError("job ids must be unique")
        for spec in jobs:
            if spec.world > topology.n_gpus:
                raise ValueError(
                    f"job {spec.job_id} wants {spec.world} ranks; fleet has "
                    f"{topology.n_gpus} GPUs")
        self.topology = topology
        self.jobs = sorted(jobs, key=lambda s: (s.arrival, s.job_id))
        self.gpu = get_gpu(gpu) if isinstance(gpu, str) else gpu
        self.policy = policy
        self.backend = get_backend(backend)
        self.backend_name = backend
        self.routing = routing
        self.seed = seed
        self.network = Network(topology, self.backend, route_policy=routing)
        if trace:
            self.network.enable_trace()
        if link_load_bin:
            self.network.enable_link_loads(link_load_bin)
        if audit:
            self.network.enable_conservation_audit()
        self._specs: dict[str, ModelSpec] = dict(spec_library or {})

    def _model(self, name: str) -> ModelSpec:
        spec = self._specs.get(name)
        if spec is None:
            spec = build_spec(name)
            self._specs[name] = spec
        return spec

    def run(self) -> FleetResult:
        """Advance the fleet until every submitted job has departed."""
        states = {spec.job_id: JobState(spec) for spec in self.jobs}
        runners: dict[int, JobRunner] = {}
        records: list[dict] = []
        pending = deque(self.jobs)
        queue: deque[int] = deque()
        heap: list[tuple[float, int]] = []   # (next step start, job id)
        occupied: set[int] = set()
        free_at: dict[int, float] = {}       # gpu -> last departure's end

        def admit(now: float) -> None:
            # FIFO with head-of-line blocking: a big job at the head
            # holds back smaller ones — queueing delay is the honest
            # price of arrival order, not best-effort backfilling.
            while queue:
                spec = states[queue[0]].spec
                free = set(range(self.topology.n_gpus)) - occupied
                ranks = place(self.policy, self.topology, spec.world, free)
                if ranks is None:
                    return
                queue.popleft()
                # departures are processed in step-START order, so a GPU
                # freed by an early-ending job may still be held (on the
                # sim clock) by a later-ending one already popped from
                # the heap; starting at the GPUs' true free times keeps
                # placements overlap-free
                start = max([now] + [free_at.get(g, 0.0) for g in ranks])
                state = states[spec.job_id]
                state.status = "running"
                state.ranks = tuple(ranks)
                state.admit_time = start
                occupied.update(ranks)
                if spec.throttle < 1.0:
                    self.network.set_job_throttle(spec.job_id, spec.throttle)
                runners[spec.job_id] = JobRunner(
                    spec, self._model(spec.model), self.gpu, ranks,
                    self.network)
                records.append({"event": "admit", "job": spec.job_id,
                                "t": start, "ranks": list(ranks)})
                heapq.heappush(heap, (start, spec.job_id))

        while pending or queue or heap:
            next_arrival = pending[0].arrival if pending else float("inf")
            next_step = heap[0][0] if heap else float("inf")
            if next_arrival <= next_step:
                spec = pending.popleft()
                records.append({"event": "arrive", "job": spec.job_id,
                                "t": spec.arrival})
                queue.append(spec.job_id)
                admit(spec.arrival)
            else:
                start, job_id = heapq.heappop(heap)
                state = states[job_id]
                end, wire = runners[job_id].run_step(start)
                state.steps_done += 1
                state.wire_bytes += wire
                state.step_durations.append(end - start)
                records.append({"event": "step", "job": job_id,
                                "step": state.steps_done, "t": start,
                                "end": end})
                if state.steps_done == state.spec.steps:
                    state.status = "done"
                    state.finish_time = end
                    occupied.difference_update(state.ranks)
                    for gpu in state.ranks:
                        free_at[gpu] = end
                    self.network.clear_job_throttle(job_id)
                    records.append({"event": "finish", "job": job_id,
                                    "t": end})
                    admit(end)
                else:
                    heapq.heappush(heap, (end, job_id))

        return FleetResult(
            policy=self.policy, routing=self.routing,
            backend_name=self.backend_name, seed=self.seed,
            topology=self.topology,
            states=[states[spec.job_id] for spec in self.jobs],
            records=records, network=self.network, runners=runners,
        )

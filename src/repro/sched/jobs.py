"""Declarative job model for the fleet scheduler.

A :class:`JobSpec` is everything the scheduler needs to know about one
training job before it runs: which model, how many ranks, which
compression method, when it arrives, and how many steps it owes.  A
:class:`JobState` tracks the job through the fleet — queued, running,
done — with the progress counters (steps done, bytes on wire, queue
wait) the fairness and queueing-delay metrics are computed from.

Workloads are *seeded*: :func:`sample_fleet` draws mixed-model,
mixed-world, mixed-compression fleets from one ``random.Random(seed)``
stream, so the same seed always produces the same arrival process —
the determinism idiom every subsystem of this repo follows.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import available_specs

__all__ = ["JobSpec", "JobState", "sample_fleet", "JOB_METHODS",
           "DEFAULT_FLEET_MODELS"]

JOB_METHODS = ("cgx", "nccl")

#: the mixed workload the acceptance sweep uses: two CNNs with very
#: different gradient sizes plus the embedding-heavy Transformer-XL
DEFAULT_FLEET_MODELS = ("resnet50", "vgg16", "transformer_xl")


@dataclass(frozen=True)
class JobSpec:
    """One training job submitted to the fleet.

    Attributes:
        job_id: unique positive id (also the Perfetto process lane).
        model: a :mod:`repro.models` spec name.
        world: ranks (GPUs) the job needs, all-or-nothing.
        arrival: submission time on the fleet clock, seconds.
        steps: training steps the job runs before departing.
        method: ``cgx`` (4-bit-default QSGD, per-layer packages, SRA) or
            ``nccl`` (uncompressed fused ring baseline).
        bits: QSGD bit-width for ``cgx`` jobs.
        scheme: reduction scheme override for ``cgx`` jobs.
        batch_per_gpu: local batch; defaults to the model recipe scaled
            by GPU memory.
        throttle: effective-bandwidth share in (0, 1]; the scheduler
            registers it with the shared network at admission.
    """

    job_id: int
    model: str
    world: int
    arrival: float
    steps: int
    method: str = "cgx"
    bits: int = 4
    scheme: str = "sra"
    batch_per_gpu: int | None = None
    throttle: float = 1.0

    def __post_init__(self) -> None:
        if self.job_id < 1:
            raise ValueError("job_id must be >= 1 (0 is the untagged lane)")
        if self.world < 1:
            raise ValueError(f"job {self.job_id}: world must be >= 1")
        if self.steps < 1:
            raise ValueError(f"job {self.job_id}: steps must be >= 1")
        if self.arrival < 0:
            raise ValueError(f"job {self.job_id}: arrival must be >= 0")
        if self.method not in JOB_METHODS:
            raise ValueError(
                f"job {self.job_id}: method must be one of {JOB_METHODS}")
        if not 0.0 < self.throttle <= 1.0:
            raise ValueError(
                f"job {self.job_id}: throttle must be in (0, 1]")

    def build_config(self) -> tuple[CGXConfig, str]:
        """(engine config, plan mode) for this job's timed steps."""
        if self.method == "nccl":
            return CGXConfig.baseline_nccl(), "fused"
        config = CGXConfig.cgx_default()
        config.compression = CompressionSpec(
            "qsgd", bits=self.bits,
            bucket_size=config.compression.bucket_size)
        config.scheme = self.scheme
        return config, "cgx"

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class JobState:
    """A job's lifecycle through the fleet (mutable progress record)."""

    spec: JobSpec
    status: str = "queued"            # queued | running | done
    ranks: tuple[int, ...] = ()
    admit_time: float | None = None   # placement instant
    finish_time: float | None = None  # last step's end
    steps_done: int = 0
    wire_bytes: int = 0
    step_durations: list[float] = field(default_factory=list)

    @property
    def queue_wait(self) -> float | None:
        """Seconds spent waiting for GPUs (admission − arrival)."""
        if self.admit_time is None:
            return None
        return self.admit_time - self.spec.arrival

    @property
    def mean_step_time(self) -> float | None:
        if not self.step_durations:
            return None
        return sum(self.step_durations) / len(self.step_durations)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "status": self.status,
            "ranks": list(self.ranks),
            "admit_time": self.admit_time,
            "finish_time": self.finish_time,
            "steps_done": self.steps_done,
            "wire_bytes": self.wire_bytes,
            "step_durations": list(self.step_durations),
        }


def sample_fleet(
    n_jobs: int,
    seed: int = 0,
    models: tuple[str, ...] = DEFAULT_FLEET_MODELS,
    worlds: tuple[int, ...] = (2, 4, 8),
    mean_interarrival: float = 0.05,
    steps_range: tuple[int, int] = (2, 5),
    bits_choices: tuple[int, ...] = (2, 4, 8),
    nccl_fraction: float = 0.25,
) -> list[JobSpec]:
    """Draw a seeded fleet: Poisson arrivals over a mixed job population.

    Same seed, same fleet — byte for byte.  Interarrival times are
    exponential with the given mean, so shrinking ``mean_interarrival``
    relative to the jobs' service times deepens the admission queue
    (the heavy-traffic regime the metrics are designed to expose).
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    known = set(available_specs())
    for model in models:
        if model not in known:
            raise KeyError(f"unknown model spec {model!r}")
    rng = random.Random(seed)
    t = 0.0
    specs: list[JobSpec] = []
    for job_id in range(1, n_jobs + 1):
        t += rng.expovariate(1.0 / mean_interarrival)
        method = "nccl" if rng.random() < nccl_fraction else "cgx"
        specs.append(JobSpec(
            job_id=job_id,
            model=rng.choice(models),
            world=rng.choice(worlds),
            arrival=t,
            steps=rng.randint(*steps_range),
            method=method,
            bits=rng.choice(bits_choices),
        ))
    return specs

"""Multi-GPU cluster simulator: GPUs, topologies, backends, networks."""

from .backends import BACKENDS, BackendModel, get_backend
from .gpu import GPUS, GPUSpec, get_gpu
from .machine import MACHINES, Machine, get_machine, make_cluster
from .network import Network, TransferRecord, export_chrome_trace
from .simclock import Resource, ResourcePool
from .topology import Link, Topology, multinode, nvlink_mesh, pcie_dual_root

__all__ = [
    "BACKENDS", "BackendModel", "get_backend",
    "GPUS", "GPUSpec", "get_gpu",
    "MACHINES", "Machine", "get_machine", "make_cluster",
    "Network", "TransferRecord", "export_chrome_trace",
    "Resource", "ResourcePool",
    "Link", "Topology", "multinode", "nvlink_mesh", "pcie_dual_root",
]

"""Resource timelines for the event-free makespan simulator.

The performance model schedules work (transfers, compression kernels,
collective steps) onto *resources* that can each do one thing at a time.
A :class:`Resource` tracks its busy-until horizon; scheduling a task
returns concrete start/end times.  This greedy list-scheduling approach
is deterministic and sufficient for step-time makespans — a full
discrete-event engine is not needed because each training step's task
graph is known up front.

With the fleet scheduler (``repro.sched``) several concurrent jobs
share one pool: tasks carry an optional ``job`` tag so per-job busy
time stays attributable even though the timelines are shared.
"""

from __future__ import annotations

__all__ = ["Resource", "ResourcePool"]


class Resource:
    """A serially-occupied resource (a link direction, a GPU engine...)."""

    __slots__ = ("name", "busy_until", "busy_time", "busy_by_job")

    def __init__(self, name: str):
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0  # total occupied seconds, for utilization stats
        self.busy_by_job: dict[int, float] = {}  # job id -> occupied seconds

    def schedule(self, ready: float, duration: float,
                 job: int | None = None) -> tuple[float, float]:
        """Occupy the resource for ``duration`` no earlier than ``ready``.

        Returns ``(start, end)``.  When ``job`` is given the occupied
        seconds are additionally attributed to that job.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(ready, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        if job is not None:
            self.busy_by_job[job] = self.busy_by_job.get(job, 0.0) + duration
        return start, end

    def peek(self, ready: float) -> float:
        """Earliest start time without committing."""
        return max(ready, self.busy_until)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.busy_by_job.clear()


class ResourcePool:
    """Named collection of resources, created on first use."""

    def __init__(self) -> None:
        self._resources: dict[str, Resource] = {}

    def get(self, name: str) -> Resource:
        resource = self._resources.get(name)
        if resource is None:
            resource = Resource(name)
            self._resources[name] = resource
        return resource

    def schedule_path(
        self, names: list[str], ready: float, duration: float,
        job: int | None = None
    ) -> tuple[float, float]:
        """Occupy several resources simultaneously for one task.

        All resources in ``names`` are held for the same interval; the
        start time is the earliest instant at which every one is free.
        """
        resources = [self.get(n) for n in names]
        start = ready
        for resource in resources:
            start = resource.peek(start)
        end = start + duration
        for resource in resources:
            resource.busy_until = end
            resource.busy_time += duration
            if job is not None:
                resource.busy_by_job[job] = \
                    resource.busy_by_job.get(job, 0.0) + duration
        return start, end

    def reset(self) -> None:
        for resource in self._resources.values():
            resource.reset()

    def utilization(self, horizon: float) -> dict[str, float]:
        """Fraction of ``horizon`` each resource was busy."""
        if horizon <= 0:
            return {name: 0.0 for name in self._resources}
        return {
            name: min(1.0, res.busy_time / horizon)
            for name, res in self._resources.items()
        }

    def busy_seconds(self) -> dict[str, float]:
        """Total occupied seconds per resource (link-load summaries)."""
        return {name: res.busy_time for name, res in self._resources.items()}

    def job_busy_seconds(self, job: int) -> dict[str, float]:
        """Seconds each resource spent serving ``job`` (shared-pool use)."""
        return {
            name: res.busy_by_job[job]
            for name, res in self._resources.items()
            if job in res.busy_by_job
        }

"""Resource timelines for the event-free makespan simulator.

The performance model schedules work (transfers, compression kernels,
collective steps) onto *resources* that can each do one thing at a time.
A :class:`Resource` tracks its busy-until horizon; scheduling a task
returns concrete start/end times.  This greedy list-scheduling approach
is deterministic and sufficient for step-time makespans — a full
discrete-event engine is not needed because each training step's task
graph is known up front.

With the fleet scheduler (``repro.sched``) several concurrent jobs
share one pool: tasks carry an optional ``job`` tag so per-job busy
time stays attributable even though the timelines are shared.  The
fleet-schedule certifier (``repro.analysis.sched``, rule SCD003)
additionally needs *exact* conservation evidence — float accumulation
is order-sensitive, so "per-job seconds sum to the pool total" cannot
be checked to tolerance without hiding real accounting leaks.  With
:meth:`ResourcePool.enable_audit` every occupation is appended to a
per-resource ledger of ``(job, duration)`` entries; the exact accessors
sum those ledgers in :class:`fractions.Fraction` arithmetic (every
float is an exact rational), so conservation holds with **equality**
or not at all.
"""

from __future__ import annotations

from fractions import Fraction

__all__ = ["Resource", "ResourcePool"]


class Resource:
    """A serially-occupied resource (a link direction, a GPU engine...)."""

    __slots__ = ("name", "busy_until", "busy_time", "busy_by_job", "ledger")

    def __init__(self, name: str, audit: bool = False):
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0  # total occupied seconds, for utilization stats
        self.busy_by_job: dict[int, float] = {}  # job id -> occupied seconds
        #: exact occupation ledger, ``None`` unless auditing: every
        #: occupation appends ``(job, duration)`` in commit order
        self.ledger: list[tuple[int | None, float]] | None = \
            [] if audit else None

    def schedule(self, ready: float, duration: float,
                 job: int | None = None) -> tuple[float, float]:
        """Occupy the resource for ``duration`` no earlier than ``ready``.

        Returns ``(start, end)``.  When ``job`` is given the occupied
        seconds are additionally attributed to that job.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(ready, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        if job is not None:
            self.busy_by_job[job] = self.busy_by_job.get(job, 0.0) + duration
        if self.ledger is not None:
            self.ledger.append((job, duration))
        return start, end

    # -- exact (Fraction) conservation accessors --------------------------
    def exact_busy_seconds(self) -> Fraction:
        """Exact total occupied seconds (requires an audit ledger)."""
        if self.ledger is None:
            raise RuntimeError(
                f"resource {self.name}: exact accounting needs "
                f"ResourcePool.enable_audit() before simulating")
        return sum((Fraction(d) for _, d in self.ledger), Fraction(0))

    def exact_busy_by_job(self) -> dict[int | None, Fraction]:
        """Exact occupied seconds per job tag (``None`` = untagged)."""
        if self.ledger is None:
            raise RuntimeError(
                f"resource {self.name}: exact accounting needs "
                f"ResourcePool.enable_audit() before simulating")
        by_job: dict[int | None, Fraction] = {}
        for job, duration in self.ledger:
            by_job[job] = by_job.get(job, Fraction(0)) + Fraction(duration)
        return by_job

    def replay_float_accumulation(self) -> tuple[float, dict[int, float]]:
        """Re-fold the ledger with float addition, in commit order.

        Returns ``(busy_time, busy_by_job)`` as the ledger implies them.
        The certifier compares these bit-for-bit against the live
        counters: any mutation path that bumps a counter without
        appending to the ledger (or vice versa) is an accounting leak.
        """
        if self.ledger is None:
            raise RuntimeError(
                f"resource {self.name}: exact accounting needs "
                f"ResourcePool.enable_audit() before simulating")
        total = 0.0
        by_job: dict[int, float] = {}
        for job, duration in self.ledger:
            total += duration
            if job is not None:
                by_job[job] = by_job.get(job, 0.0) + duration
        return total, by_job

    def peek(self, ready: float) -> float:
        """Earliest start time without committing."""
        return max(ready, self.busy_until)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.busy_by_job.clear()
        if self.ledger is not None:
            self.ledger.clear()


class ResourcePool:
    """Named collection of resources, created on first use."""

    def __init__(self, audit: bool = False) -> None:
        self._resources: dict[str, Resource] = {}
        self._audit = audit

    def enable_audit(self) -> None:
        """Record exact occupation ledgers on every resource.

        Must be called before any resource is occupied — auditing half a
        simulation would make the conservation ledger lie by omission.
        """
        if any(res.busy_time for res in self._resources.values()):
            raise RuntimeError("enable_audit() after occupations began "
                               "would produce a partial ledger")
        self._audit = True
        for resource in self._resources.values():
            if resource.ledger is None:
                resource.ledger = []

    @property
    def audited(self) -> bool:
        return self._audit

    def get(self, name: str) -> Resource:
        resource = self._resources.get(name)
        if resource is None:
            resource = Resource(name, audit=self._audit)
            self._resources[name] = resource
        return resource

    def schedule_path(
        self, names: list[str], ready: float, duration: float,
        job: int | None = None
    ) -> tuple[float, float]:
        """Occupy several resources simultaneously for one task.

        All resources in ``names`` are held for the same interval; the
        start time is the earliest instant at which every one is free.
        """
        resources = [self.get(n) for n in names]
        start = ready
        for resource in resources:
            start = resource.peek(start)
        end = start + duration
        for resource in resources:
            resource.busy_until = end
            resource.busy_time += duration
            if job is not None:
                resource.busy_by_job[job] = \
                    resource.busy_by_job.get(job, 0.0) + duration
            if resource.ledger is not None:
                resource.ledger.append((job, duration))
        return start, end

    def reset(self) -> None:
        for resource in self._resources.values():
            resource.reset()

    def utilization(self, horizon: float) -> dict[str, float]:
        """Fraction of ``horizon`` each resource was busy."""
        if horizon <= 0:
            return {name: 0.0 for name in self._resources}
        return {
            name: min(1.0, res.busy_time / horizon)
            for name, res in self._resources.items()
        }

    def busy_seconds(self) -> dict[str, float]:
        """Total occupied seconds per resource (link-load summaries)."""
        return {name: res.busy_time for name, res in self._resources.items()}

    def resources(self) -> dict[str, Resource]:
        """Snapshot of the live resources by name (shared references)."""
        return dict(self._resources)

    def job_busy_seconds(self, job: int) -> dict[str, float]:
        """Seconds each resource spent serving ``job`` (shared-pool use)."""
        return {
            name: res.busy_by_job[job]
            for name, res in self._resources.items()
            if job in res.busy_by_job
        }

    # -- exact (Fraction) conservation accessors --------------------------
    def exact_busy_seconds(self) -> dict[str, Fraction]:
        """Exact occupied seconds per resource (requires
        :meth:`enable_audit` before simulating)."""
        return {name: res.exact_busy_seconds()
                for name, res in self._resources.items()}

    def exact_job_busy_seconds(self, job: int) -> dict[str, Fraction]:
        """Exact seconds each resource spent serving ``job``."""
        result: dict[str, Fraction] = {}
        for name, res in self._resources.items():
            by_job = res.exact_busy_by_job()
            if job in by_job:
                result[name] = by_job[job]
        return result

    def exact_untagged_seconds(self) -> dict[str, Fraction]:
        """Exact seconds occupied with no job tag, per resource.

        In a fleet simulation every transfer and kernel belongs to some
        job, so a nonzero entry here is tag leakage — busy time that
        per-job accounting silently loses (certifier rule SCD003).
        """
        result: dict[str, Fraction] = {}
        for name, res in self._resources.items():
            untagged = res.exact_busy_by_job().get(None, Fraction(0))
            if untagged:
                result[name] = untagged
        return result

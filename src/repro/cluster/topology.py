"""Interconnect topologies: links, routes, and machine wiring.

A :class:`Topology` is a set of directed :class:`Link` objects plus a
route table mapping ``(src_gpu, dst_gpu)`` to the link sequence a
transfer occupies.  Builders reproduce the paper's machines:

* :func:`pcie_dual_root` — the commodity RTX boxes (Figure 8): two NUMA
  roots bridged by QPI, GPUs hanging off PCIe with *no* GPUDirect, so
  every peer transfer is staged through host memory (a shared resource,
  which is where the measured 13-16 GB/s point-to-point collapses to
  ~1 GB/s of all-reduce bandwidth under 8-way contention).
* :func:`nvlink_mesh` — DGX-1-style backbone ring in a hypercube mesh;
  dedicated GPU-to-GPU links, no host staging.
* :func:`multinode` — several single-node topologies joined by Ethernet
  NICs (the Genesis multi-node experiments of Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Link", "Topology", "pcie_dual_root", "nvlink_mesh", "multinode"]


@dataclass(frozen=True)
class Link:
    """A directed communication resource."""

    name: str
    bandwidth: float  # bytes per second
    latency: float    # seconds per traversal

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.name}: latency must be non-negative")


@dataclass
class Topology:
    """Directed-link graph with explicit routes between GPUs."""

    name: str
    n_gpus: int
    links: dict[str, Link]
    routes: dict[tuple[int, int], list[str]]
    node_of: list[int] = field(default_factory=list)   # node index per GPU
    numa_of: list[int] = field(default_factory=list)   # NUMA group per GPU
    staged_through_host: bool = False  # no GPUDirect: extra host copies
    #: optional detour routes per (src, dst); an adaptive network may pick
    #: one of these instead of the primary route when it finishes earlier
    #: under current contention (e.g. the long way around an NVLink ring)
    alt_routes: dict[tuple[int, int], list[list[str]]] = \
        field(default_factory=dict)

    def __post_init__(self):
        if not self.node_of:
            self.node_of = [0] * self.n_gpus
        if not self.numa_of:
            self.numa_of = [0] * self.n_gpus
        for (src, dst), path in self.routes.items():
            for link_name in path:
                if link_name not in self.links:
                    raise KeyError(
                        f"route {src}->{dst} references unknown link {link_name}"
                    )
        for (src, dst), paths in self.alt_routes.items():
            if (src, dst) not in self.routes:
                raise KeyError(
                    f"alternate for unrouted pair {src}->{dst}")
            for path in paths:
                for link_name in path:
                    if link_name not in self.links:
                        raise KeyError(
                            f"alternate route {src}->{dst} references "
                            f"unknown link {link_name}")

    def path(self, src: int, dst: int) -> list[Link]:
        """Links a transfer from ``src`` to ``dst`` occupies, in order."""
        if src == dst:
            return []
        try:
            return [self.links[n] for n in self.routes[(src, dst)]]
        except KeyError:
            raise KeyError(f"no route {src}->{dst} in topology {self.name}") from None

    def candidate_paths(self, src: int, dst: int) -> list[list[Link]]:
        """Primary route first, then any registered detours."""
        primary = self.path(src, dst)
        if not primary:
            return []
        candidates = [primary]
        for alt in self.alt_routes.get((src, dst), []):
            candidates.append([self.links[n] for n in alt])
        return candidates

    def path_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck bandwidth of the route (no contention)."""
        path = self.path(src, dst)
        if not path:
            return float("inf")
        return min(link.bandwidth for link in path)

    def path_latency(self, src: int, dst: int) -> float:
        return sum(link.latency for link in self.path(src, dst))

    def n_nodes(self) -> int:
        return max(self.node_of) + 1

    def gpus_on_node(self, node: int) -> list[int]:
        return [g for g in range(self.n_gpus) if self.node_of[g] == node]

    def describe(self) -> str:
        """ASCII rendering of the topology (Figure 8 reproduction)."""
        lines = [f"Topology {self.name}: {self.n_gpus} GPUs, "
                 f"{self.n_nodes()} node(s)"]
        for node in range(self.n_nodes()):
            gpus = self.gpus_on_node(node)
            numa_groups: dict[int, list[int]] = {}
            for gpu in gpus:
                numa_groups.setdefault(self.numa_of[gpu], []).append(gpu)
            lines.append(f"  node {node}:")
            for numa, members in sorted(numa_groups.items()):
                tags = " ".join(f"GPU{g}" for g in members)
                lines.append(f"    NUMA{numa}: {tags}")
        shared = sorted({link.name.rsplit(".", 1)[0] for link in
                         self.links.values()})
        lines.append(f"  links: {', '.join(shared)}")
        if self.staged_through_host:
            lines.append("  (no GPUDirect: peer transfers staged via host memory)")
        return "\n".join(lines)


def _bidirectional(links: dict[str, Link], base: str, bandwidth: float,
                   latency: float) -> tuple[str, str]:
    """Register an up/down directed link pair; return their names."""
    up, down = f"{base}.up", f"{base}.down"
    links[up] = Link(up, bandwidth, latency)
    links[down] = Link(down, bandwidth, latency)
    return up, down


def pcie_dual_root(
    n_gpus: int = 8,
    pcie_bandwidth: float = 14e9,
    host_bandwidth: float = 24e9,
    qpi_bandwidth: float = 11e9,
    pcie_latency: float = 2e-6,
    qpi_latency: float = 1.5e-6,
    roots: int = 2,
    name: str = "pcie-dual-root",
) -> Topology:
    """Commodity server: NUMA roots with GPUs on PCIe, QPI bridge.

    Matches Figure 8 with ``roots=2``: GPUs ``0..n/2-1`` on NUMA 0, the
    rest on NUMA 1.  ``roots=1`` models small boxes (or ≤4-GPU subsets
    of the 8-GPU machines, which typically fit one root complex).  Host
    memory per root is a shared resource; all staged peer traffic in a
    root contends on it.
    """
    if roots not in (1, 2):
        raise ValueError("roots must be 1 or 2")
    if roots == 2 and n_gpus % 2:
        raise ValueError("dual-root layout expects an even GPU count")
    half = n_gpus // roots
    links: dict[str, Link] = {}
    for gpu in range(n_gpus):
        _bidirectional(links, f"pcie.g{gpu}", pcie_bandwidth, pcie_latency)
    for root in range(roots):
        _bidirectional(links, f"hostmem.r{root}", host_bandwidth, 0.5e-6)
    if roots == 2:
        _bidirectional(links, "qpi", qpi_bandwidth, qpi_latency)

    routes: dict[tuple[int, int], list[str]] = {}
    numa_of = [0 if gpu < half else 1 for gpu in range(n_gpus)]
    for src in range(n_gpus):
        for dst in range(n_gpus):
            if src == dst:
                continue
            src_root, dst_root = numa_of[src], numa_of[dst]
            path = [f"pcie.g{src}.up", f"hostmem.r{src_root}.up"]
            if src_root != dst_root:
                qpi_dir = "up" if src_root == 0 else "down"
                path.append(f"qpi.{qpi_dir}")
                path.append(f"hostmem.r{dst_root}.down")
            path.append(f"pcie.g{dst}.down")
            routes[(src, dst)] = path
    return Topology(name, n_gpus, links, routes, numa_of=numa_of,
                    staged_through_host=True)


def nvlink_mesh(
    n_gpus: int = 8,
    link_bandwidth: float = 100e9,
    link_latency: float = 1e-6,
    name: str = "nvlink-mesh",
) -> Topology:
    """DGX-style NVLink fabric: dedicated peer links, GPUDirect enabled.

    The DGX-1 backbone-ring-in-hypercube-mesh is modeled as dedicated
    directed links between ring neighbors (the links collective
    algorithms actually use) plus two-hop routes for non-neighbors.
    """
    links: dict[str, Link] = {}
    for gpu in range(n_gpus):
        nxt = (gpu + 1) % n_gpus
        _bidirectional(links, f"nvlink.g{gpu}g{nxt}", link_bandwidth, link_latency)

    def edge(a: int, b: int) -> str:
        """Directed link name for the ring edge between neighbors a->b."""
        if (a + 1) % n_gpus == b:
            return f"nvlink.g{a}g{b}.up"
        if (b + 1) % n_gpus == a:
            return f"nvlink.g{b}g{a}.down"
        raise ValueError(f"{a} and {b} are not ring neighbors")

    def walk(src: int, dst: int, step: int) -> list[str]:
        path, here = [], src
        while here != dst:
            nxt = (here + step) % n_gpus
            path.append(edge(here, nxt))
            here = nxt
        return path

    routes: dict[tuple[int, int], list[str]] = {}
    alt_routes: dict[tuple[int, int], list[list[str]]] = {}
    for src in range(n_gpus):
        for dst in range(n_gpus):
            if src == dst:
                continue
            # route the short way around the ring
            fwd = (dst - src) % n_gpus
            step = 1 if fwd <= n_gpus - fwd else -1
            routes[(src, dst)] = walk(src, dst, step)
            if n_gpus >= 3:
                # the long way around is a genuine detour an adaptive
                # network can take when the short arc is congested
                alt_routes[(src, dst)] = [walk(src, dst, -step)]
    numa_of = [0 if gpu < n_gpus // 2 else 1 for gpu in range(n_gpus)]
    return Topology(name, n_gpus, links, routes, numa_of=numa_of,
                    staged_through_host=False, alt_routes=alt_routes)


def multinode(
    node_topologies: list[Topology],
    inter_bandwidth: float = 5e9,
    inter_latency: float = 15e-6,
    name: str = "multinode",
) -> Topology:
    """Join single-node topologies with per-node Ethernet NICs.

    Cross-node transfers traverse: source node exit path -> source NIC
    -> destination NIC -> destination node entry path.
    """
    links: dict[str, Link] = {}
    routes: dict[tuple[int, int], list[str]] = {}
    alt_routes: dict[tuple[int, int], list[list[str]]] = {}
    node_of: list[int] = []
    numa_of: list[int] = []
    offsets: list[int] = []
    total = 0

    for node_idx, topo in enumerate(node_topologies):
        offsets.append(total)
        prefix = f"n{node_idx}."
        for link_name, link in topo.links.items():
            links[prefix + link_name] = Link(prefix + link_name,
                                             link.bandwidth, link.latency)
        for (src, dst), path in topo.routes.items():
            routes[(total + src, total + dst)] = [prefix + p for p in path]
        for (src, dst), paths in topo.alt_routes.items():
            alt_routes[(total + src, total + dst)] = \
                [[prefix + p for p in path] for path in paths]
        _bidirectional(links, f"eth.n{node_idx}", inter_bandwidth, inter_latency)
        node_of.extend([node_idx] * topo.n_gpus)
        numa_of.extend(topo.numa_of)
        total += topo.n_gpus

    # Cross-node routes: GPU -> host (if staged) -> NIC -> NIC -> host -> GPU
    for src_node, src_topo in enumerate(node_topologies):
        for dst_node, dst_topo in enumerate(node_topologies):
            if src_node == dst_node:
                continue
            for src_local in range(src_topo.n_gpus):
                for dst_local in range(dst_topo.n_gpus):
                    src = offsets[src_node] + src_local
                    dst = offsets[dst_node] + dst_local
                    path = [f"n{src_node}.pcie.g{src_local}.up"] if \
                        src_topo.staged_through_host else []
                    path.append(f"eth.n{src_node}.up")
                    path.append(f"eth.n{dst_node}.down")
                    if dst_topo.staged_through_host:
                        path.append(f"n{dst_node}.pcie.g{dst_local}.down")
                    routes[(src, dst)] = path
    staged = any(t.staged_through_host for t in node_topologies)
    return Topology(name, total, links, routes, node_of=node_of,
                    numa_of=numa_of, staged_through_host=staged,
                    alt_routes=alt_routes)

"""Communication backend cost models: SHM, NCCL, MPI.

The paper compares three point-to-point backends under the CGX engine
(Figure 11).  All three move the same bytes over the same physical
links; they differ in software overheads:

* **SHM** — CGX's UNIX shared-memory backend: one mapped copy through a
  pre-registered segment, CUDA-IPC sync, lowest per-message latency.
* **NCCL** — p2p primitives through NCCL; extra staging copy into
  NCCL's internal FIFO buffers and higher launch latency.
* **MPI** — GPU-aware MPI; requires a host/device synchronization per
  operation because the library's internal transfers are opaque
  (Section 4, "Backend Details").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BackendModel", "BACKENDS", "get_backend"]


@dataclass(frozen=True)
class BackendModel:
    """Software costs a backend adds on top of the physical topology."""

    name: str
    alpha: float             # per-message software latency (s)
    copy_factor: float       # bandwidth multiplier for extra staging copies
    per_op_overhead: float   # fixed cost per collective invocation (s)
    sync_per_op: float       # host/device sync per op (s); MPI only
    multinode: bool          # usable across nodes

    def message_time(self, nbytes: int, path_bandwidth: float,
                     path_latency: float) -> float:
        """Wire time of one point-to-point message on a given route."""
        if path_bandwidth <= 0:
            raise ValueError("path bandwidth must be positive")
        return self.alpha + path_latency + nbytes * self.copy_factor / path_bandwidth


BACKENDS: dict[str, BackendModel] = {
    # CGX shared-memory transport: single copy, cheap IPC sync.
    "shm": BackendModel("shm", alpha=6e-6, copy_factor=1.0,
                        per_op_overhead=4e-6, sync_per_op=0.0, multinode=False),
    # NCCL p2p: internal FIFO staging and launch overhead.
    "nccl": BackendModel("nccl", alpha=12e-6, copy_factor=1.5,
                         per_op_overhead=8e-6, sync_per_op=0.0, multinode=True),
    # GPU-aware MPI: staging plus a host/device sync per operation.
    "mpi": BackendModel("mpi", alpha=20e-6, copy_factor=1.5,
                        per_op_overhead=8e-6, sync_per_op=30e-6, multinode=True),
    # Gloo: CPU-mediated transport — every transfer crosses host memory
    # with an extra copy and higher latency (the paper found NCCL beat
    # both OpenMPI and Gloo, so neither is a default anywhere).
    "gloo": BackendModel("gloo", alpha=30e-6, copy_factor=2.0,
                         per_op_overhead=12e-6, sync_per_op=10e-6,
                         multinode=True),
}


def get_backend(name: str) -> BackendModel:
    if name not in BACKENDS:
        raise KeyError(f"unknown backend {name!r}; choose from {sorted(BACKENDS)}")
    return BACKENDS[name]

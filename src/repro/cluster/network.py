"""Timed network: schedules point-to-point transfers on topology links.

:class:`Network` combines a :class:`~repro.cluster.topology.Topology`
with a :class:`~repro.cluster.backends.BackendModel` and a pool of link
resources.  Each transfer occupies every directed link on its route for
the duration of the message; contention (the commodity boxes' collapse
from 14 GB/s point-to-point to ~1 GB/s all-reduce bandwidth) emerges
from shared host-memory and QPI links serializing concurrent flows.

The same serialization mechanism makes one network shareable between
*jobs*: the fleet scheduler (``repro.sched``) runs many concurrent
training jobs on a single pool, tagging every transfer and kernel with
a job id.  Cross-job contention then emerges on shared QPI, host-memory
and Ethernet links exactly as intra-job contention does today, with
per-job accounting (trace lanes, busy seconds, throttle rates) layered
on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backends import BackendModel, get_backend
from .simclock import ResourcePool
from .topology import Link, Topology

__all__ = ["Network", "TransferRecord", "export_chrome_trace"]

ROUTE_POLICIES = ("static", "adaptive")


@dataclass(frozen=True)
class TransferRecord:
    """One completed point-to-point transfer (for tracing/tests)."""

    src: int
    dst: int
    nbytes: int
    start: float
    end: float
    job: int | None = None   # owning job in shared (fleet) use


class Network:
    """Schedules transfers and per-GPU compute tasks on shared resources.

    Args:
        topology: link graph and route table.
        backend: transport cost model (name or instance).
        route_policy: ``static`` always takes the topology's primary
            route; ``adaptive`` also considers the topology's registered
            detours (:attr:`Topology.alt_routes`) and picks whichever
            candidate finishes earliest under current link contention.
    """

    def __init__(self, topology: Topology, backend: BackendModel | str = "shm",
                 route_policy: str = "static"):
        if route_policy not in ROUTE_POLICIES:
            raise ValueError(f"route_policy must be one of {ROUTE_POLICIES}")
        self.topology = topology
        self.backend = get_backend(backend) if isinstance(backend, str) else backend
        self.route_policy = route_policy
        self.pool = ResourcePool()
        self.trace: list[TransferRecord] = []
        self._trace_enabled = False
        self._job_throttle: dict[int, float] = {}
        self._load_bin_width: float = 0.0   # 0 = link-load tracking off
        self._load_bins: dict[str, dict[int, float]] = {}
        #: bytes put on links per job tag (None = untagged); integers, so
        #: cross-job conservation is checkable with exact equality
        self._job_bytes: dict[int | None, int] = {}

    # -- configuration ----------------------------------------------------
    def enable_trace(self, enabled: bool = True) -> None:
        self._trace_enabled = enabled

    def enable_conservation_audit(self) -> None:
        """Record the exact occupation ledger the SCD003 conservation
        checks need (see :meth:`ResourcePool.enable_audit`)."""
        self.pool.enable_audit()

    def enable_link_loads(self, bin_width: float = 0.01) -> None:
        """Track per-link busy seconds in ``bin_width``-second bins."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self._load_bin_width = bin_width
        self._load_bins.clear()

    def set_job_throttle(self, job: int, rate: float) -> None:
        """Scale ``job``'s effective link bandwidth by ``rate`` ∈ (0, 1].

        A throttled job's transfers take proportionally longer on every
        link, releasing bandwidth to its neighbors — the psim-style
        pressure valve the fleet scheduler applies to jobs that overrun
        their fair share of a contended link.
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"throttle rate must be in (0, 1], got {rate}")
        self._job_throttle[job] = rate

    def clear_job_throttle(self, job: int) -> None:
        self._job_throttle.pop(job, None)

    def job_throttle(self, job: int | None) -> float:
        if job is None:
            return 1.0
        return self._job_throttle.get(job, 1.0)

    def clear_trace(self, job: int | None = None) -> None:
        """Drop trace records — all of them, or only one job's.

        Draining a finished job must not wipe other jobs' in-flight
        accounting, so the fleet scheduler clears per job; ``reset()``
        remains the full fresh-start (pool *and* trace) for single-job
        use.
        """
        if job is None:
            self.trace.clear()
        else:
            self.trace = [r for r in self.trace if r.job != job]

    def reset(self) -> None:
        """Fresh start: resets resource timelines and clears all traces.

        Never call this to retire one job of a shared network — use
        :meth:`clear_trace` with a job id; resetting the pool would
        erase every other job's busy timelines mid-flight.
        """
        self.pool.reset()
        self.clear_trace()
        self._load_bins.clear()
        self._job_bytes.clear()

    # -- transfers ---------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int, ready: float,
                 job: int | None = None) -> float:
        """Send ``nbytes`` from GPU ``src`` to ``dst``; returns end time.

        Store-and-forward: the message traverses its route link by link,
        occupying each link only for that link's own service time
        (``bytes / link_bandwidth + latency``).  On direct NVLink paths
        this equals cut-through; on commodity routes it charges the
        extra host-memory staging hop that missing GPUDirect implies,
        and concurrent flows through a shared link serialize there —
        which is how 14 GB/s point-to-point collapses toward ~1 GB/s of
        8-way all-reduce bandwidth.

        ``job`` tags the transfer for shared (multi-job) networks: link
        busy time is attributed to the job, the job's throttle rate
        scales its effective bandwidth, and trace records land in the
        job's lane.
        """
        if src == dst:
            return ready
        start_overall = ready + self.backend.alpha
        scaled = nbytes * self.backend.copy_factor
        throttle = self.job_throttle(job)
        route = self._select_route(src, dst, start_overall, scaled, throttle)
        t = start_overall
        for link in route:
            service = scaled / (link.bandwidth * throttle) + link.latency
            t = self._schedule_link(link, t, service, job)
        self._job_bytes[job] = self._job_bytes.get(job, 0) + nbytes
        if self._trace_enabled:
            self.trace.append(
                TransferRecord(src, dst, nbytes, start_overall, t, job))
        return t

    def transfer_latency_only(self, src: int, dst: int, ready: float,
                              job: int | None = None) -> float:
        """A zero-byte control message (barriers, handshakes)."""
        return self.transfer(src, dst, 1, ready, job=job)

    def _schedule_link(self, link: Link, ready: float, service: float,
                       job: int | None) -> float:
        start, end = self.pool.get(link.name).schedule(ready, service, job=job)
        if self._load_bin_width:
            self._bin_load(link.name, start, end)
        return end

    def _bin_load(self, name: str, start: float, end: float) -> None:
        width = self._load_bin_width
        bins = self._load_bins.setdefault(name, {})
        b = int(start / width)
        while b * width < end:
            lo, hi = b * width, (b + 1) * width
            overlap = min(end, hi) - max(start, lo)
            if overlap > 0:
                bins[b] = bins.get(b, 0.0) + overlap
            b += 1

    def _select_route(self, src: int, dst: int, start: float,
                      scaled: float, throttle: float) -> list[Link]:
        """Pick the candidate route that finishes earliest right now.

        Static policy (and pairs without registered detours) always use
        the topology's primary route, preserving the single-job model
        byte for byte.  Peeking never commits resource time, so losing
        candidates leave no mark on the timelines.
        """
        if self.route_policy != "adaptive" or \
                (src, dst) not in self.topology.alt_routes:
            return self.topology.path(src, dst)
        best_route: list[Link] | None = None
        best_end = float("inf")
        for route in self.topology.candidate_paths(src, dst):
            t = start
            for link in route:
                service = scaled / (link.bandwidth * throttle) + link.latency
                t = self.pool.get(link.name).peek(t) + service
            if t < best_end:   # strict: ties keep the earlier (primary) route
                best_end = t
                best_route = route
        assert best_route is not None
        return best_route

    # -- per-GPU auxiliary engines -----------------------------------------
    def gpu_engine(self, gpu: int, engine: str) -> str:
        """Resource name of a per-GPU engine (e.g. 'compress', 'reduce')."""
        return f"gpu{gpu}.{engine}"

    def run_kernel(self, gpu: int, engine: str, duration: float,
                   ready: float, job: int | None = None) -> float:
        """Occupy a per-GPU engine (compression kernels, local reduce)."""
        _, end = self.pool.get(self.gpu_engine(gpu, engine)).schedule(
            ready, duration, job=job
        )
        return end

    # -- measurements -------------------------------------------------------
    def measure_p2p_bandwidth(self, src: int, dst: int,
                              nbytes: int = 256 * 1024 * 1024) -> float:
        """Effective point-to-point bandwidth in bytes/s.

        Probes on a scratch network over the same topology and backend,
        so measuring never clobbers this network's busy timelines or
        transfer trace mid-simulation.
        """
        probe = Network(self.topology, self.backend)
        end = probe.transfer(src, dst, nbytes, 0.0)
        return nbytes / end

    def link_loads(self) -> dict[str, dict[int, float]]:
        """Per-link busy seconds per time bin (requires
        :meth:`enable_link_loads`); bin ``b`` covers
        ``[b * bin_width, (b + 1) * bin_width)``."""
        return {name: dict(bins) for name, bins in self._load_bins.items()}

    @property
    def load_bin_width(self) -> float:
        return self._load_bin_width

    def job_link_seconds(self, job: int) -> dict[str, float]:
        """Seconds each resource spent serving ``job``."""
        return self.pool.job_busy_seconds(job)

    def total_transferred_bytes(self) -> int:
        """All bytes this network ever put on links (every job tag)."""
        return sum(self._job_bytes.values())

    def transferred_bytes(self, job: int | None) -> int:
        """Bytes put on links under one job tag (``None`` = untagged).

        Integer accounting, independent of the trace (which may be
        disabled or partially cleared), so the certifier can demand
        exact equality against the jobs' own ``wire_bytes`` counters
        (SCD003).
        """
        return self._job_bytes.get(job, 0)

    def job_byte_tags(self) -> dict[int | None, int]:
        """Bytes per job tag (``None`` = untagged), as recorded."""
        return dict(self._job_bytes)


def export_chrome_trace(network: Network, path: str) -> int:
    """Write the network's transfer trace as a Chrome/Perfetto trace file.

    Each transfer becomes a complete event; load the JSON at
    ``chrome://tracing`` or https://ui.perfetto.dev to see the
    communication schedule (requires ``network.enable_trace()`` before
    simulating).  Returns the number of transfer events written.

    Untagged (single-job) records all land on pid 0, keeping the
    historical output byte for byte.  Job-tagged records are grouped
    into per-job lanes — job id becomes the Perfetto *process*, source
    GPU the *thread* — with process_name metadata so a fleet trace
    reads as one row group per job.
    """
    import json

    events = []
    jobs = sorted({r.job for r in network.trace if r.job is not None})
    for job in jobs:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": job,
            "args": {"name": f"job {job}"},
        })
    for record in network.trace:
        events.append({
            "name": f"{record.src}->{record.dst} "
                    f"({record.nbytes / 1e6:.1f} MB)",
            "cat": "transfer",
            "ph": "X",
            "ts": record.start * 1e6,          # microseconds
            "dur": max(0.01, (record.end - record.start) * 1e6),
            "pid": 0 if record.job is None else record.job,
            "tid": record.src,
            "args": {"bytes": record.nbytes, "dst": record.dst},
        })
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle)
    return len(network.trace)

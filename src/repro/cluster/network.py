"""Timed network: schedules point-to-point transfers on topology links.

:class:`Network` combines a :class:`~repro.cluster.topology.Topology`
with a :class:`~repro.cluster.backends.BackendModel` and a pool of link
resources.  Each transfer occupies every directed link on its route for
the duration of the message; contention (the commodity boxes' collapse
from 14 GB/s point-to-point to ~1 GB/s all-reduce bandwidth) emerges
from shared host-memory and QPI links serializing concurrent flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backends import BackendModel, get_backend
from .simclock import ResourcePool
from .topology import Topology

__all__ = ["Network", "TransferRecord", "export_chrome_trace"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed point-to-point transfer (for tracing/tests)."""

    src: int
    dst: int
    nbytes: int
    start: float
    end: float


class Network:
    """Schedules transfers and per-GPU compute tasks on shared resources."""

    def __init__(self, topology: Topology, backend: BackendModel | str = "shm"):
        self.topology = topology
        self.backend = get_backend(backend) if isinstance(backend, str) else backend
        self.pool = ResourcePool()
        self.trace: list[TransferRecord] = []
        self._trace_enabled = False

    # -- configuration ----------------------------------------------------
    def enable_trace(self, enabled: bool = True) -> None:
        self._trace_enabled = enabled

    def reset(self) -> None:
        self.pool.reset()
        self.trace.clear()

    # -- transfers ---------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int, ready: float) -> float:
        """Send ``nbytes`` from GPU ``src`` to ``dst``; returns end time.

        Store-and-forward: the message traverses its route link by link,
        occupying each link only for that link's own service time
        (``bytes / link_bandwidth + latency``).  On direct NVLink paths
        this equals cut-through; on commodity routes it charges the
        extra host-memory staging hop that missing GPUDirect implies,
        and concurrent flows through a shared link serialize there —
        which is how 14 GB/s point-to-point collapses toward ~1 GB/s of
        8-way all-reduce bandwidth.
        """
        if src == dst:
            return ready
        start_overall = ready + self.backend.alpha
        t = start_overall
        scaled = nbytes * self.backend.copy_factor
        for link in self.topology.path(src, dst):
            service = scaled / link.bandwidth + link.latency
            _, t = self.pool.get(link.name).schedule(t, service)
        if self._trace_enabled:
            self.trace.append(TransferRecord(src, dst, nbytes, start_overall, t))
        return t

    def transfer_latency_only(self, src: int, dst: int, ready: float) -> float:
        """A zero-byte control message (barriers, handshakes)."""
        return self.transfer(src, dst, 1, ready)

    # -- per-GPU auxiliary engines -----------------------------------------
    def gpu_engine(self, gpu: int, engine: str) -> str:
        """Resource name of a per-GPU engine (e.g. 'compress', 'reduce')."""
        return f"gpu{gpu}.{engine}"

    def run_kernel(self, gpu: int, engine: str, duration: float,
                   ready: float) -> float:
        """Occupy a per-GPU engine (compression kernels, local reduce)."""
        _, end = self.pool.get(self.gpu_engine(gpu, engine)).schedule(
            ready, duration
        )
        return end

    # -- measurements -------------------------------------------------------
    def measure_p2p_bandwidth(self, src: int, dst: int,
                              nbytes: int = 256 * 1024 * 1024) -> float:
        """Effective point-to-point bandwidth in bytes/s.

        Probes on a scratch network over the same topology and backend,
        so measuring never clobbers this network's busy timelines or
        transfer trace mid-simulation.
        """
        probe = Network(self.topology, self.backend)
        end = probe.transfer(src, dst, nbytes, 0.0)
        return nbytes / end


def export_chrome_trace(network: Network, path: str) -> int:
    """Write the network's transfer trace as a Chrome/Perfetto trace file.

    Each transfer becomes a complete event on a per-source-GPU row; load
    the JSON at ``chrome://tracing`` or https://ui.perfetto.dev to see
    the communication schedule (requires ``network.enable_trace()``
    before simulating).  Returns the number of events written.
    """
    import json

    events = []
    for record in network.trace:
        events.append({
            "name": f"{record.src}->{record.dst} "
                    f"({record.nbytes / 1e6:.1f} MB)",
            "cat": "transfer",
            "ph": "X",
            "ts": record.start * 1e6,          # microseconds
            "dur": max(0.01, (record.end - record.start) * 1e6),
            "pid": 0,
            "tid": record.src,
            "args": {"bytes": record.nbytes, "dst": record.dst},
        })
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle)
    return len(events)

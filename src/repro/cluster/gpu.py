"""GPU compute envelopes, calibrated to the paper's Table 1.

Each :class:`GPUSpec` carries the architectural facts from Table 1 plus
two *measured* single-GPU training throughputs (ResNet50 images/s and
Transformer-XL tokens/s, from the NVIDIA Deep Learning Examples
benchmark).  From those anchors we derive effective training-FLOP rates
for the two model classes; all simulated compute times follow from them,
so simulated single-GPU throughput reproduces Table 1 by construction
and other models' throughputs are interpolated consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models import ModelSpec, build_spec

__all__ = ["GPUSpec", "GPUS", "get_gpu"]

#: forward+backward training FLOPs as a multiple of forward FLOPs
TRAIN_FLOP_FACTOR = 3.0


@dataclass(frozen=True)
class GPUSpec:
    """Static GPU description plus Table 1 calibration anchors."""

    name: str
    arch: str
    sm_count: int
    tensor_cores: int
    gpu_direct: bool
    memory_gb: int
    tdp_watts: int
    resnet50_imgs_per_s: float      # Table 1 measured anchor
    txl_tokens_per_s: float         # Table 1 measured anchor

    def effective_rate(self, model_class: str) -> float:
        """Effective training FLOP/s for a model class (cnn | transformer)."""
        if model_class == "cnn":
            anchor = build_spec("resnet50")
            throughput = self.resnet50_imgs_per_s
        elif model_class == "transformer":
            anchor = build_spec("transformer_xl")
            throughput = self.txl_tokens_per_s
        else:
            raise ValueError(f"unknown model class {model_class!r}")
        return anchor.flops_per_item * TRAIN_FLOP_FACTOR * throughput

    def step_compute_time(self, spec: ModelSpec, batch_per_gpu: int) -> float:
        """Seconds of forward+backward compute for one local batch."""
        items = batch_per_gpu * spec.items_per_sample
        flops = spec.flops_per_item * TRAIN_FLOP_FACTOR * items
        return flops / (self.effective_rate(spec.model_class)
                        * spec.rate_scale)

    def max_batch_per_gpu(self, spec: ModelSpec, reference_gb: float = 24.0,
                          reference_batch: int | None = None) -> int:
        """Scale the default batch by available GPU memory.

        The paper notes RTX 2080 Ti throughput suffers from its 10 GB
        limiting the local batch; we reproduce that by scaling the
        default (tuned-for-24GB) batch linearly in memory.
        """
        base = reference_batch or spec.default_batch_per_gpu
        scaled = int(base * min(1.0, self.memory_gb / reference_gb))
        return max(1, scaled)


GPUS: dict[str, GPUSpec] = {
    "V100": GPUSpec("V100", "Volta", 80, 640, True, 16, 250,
                    resnet50_imgs_per_s=1226.0, txl_tokens_per_s=37_000.0),
    "A6000": GPUSpec("A6000", "Ampere", 84, 336, True, 48, 300,
                     resnet50_imgs_per_s=566.0, txl_tokens_per_s=39_000.0),
    "RTX3090": GPUSpec("RTX3090", "Ampere", 82, 328, False, 24, 350,
                       resnet50_imgs_per_s=850.0, txl_tokens_per_s=39_000.0),
    "RTX2080Ti": GPUSpec("RTX2080Ti", "Turing", 68, 544, False, 10, 250,
                         resnet50_imgs_per_s=484.0, txl_tokens_per_s=13_000.0),
}


def get_gpu(name: str) -> GPUSpec:
    if name not in GPUS:
        raise KeyError(f"unknown GPU {name!r}; choose from {sorted(GPUS)}")
    return GPUS[name]

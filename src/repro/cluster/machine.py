"""Machine catalog: the paper's Table 2 systems and cloud instances.

Each :class:`Machine` binds a GPU type, an interconnect topology builder
and (for the cloud experiments) an hourly price.  Topologies for GPU
subsets follow the physical layout: up to four GPUs of a commodity box
sit on one NUMA root; the full eight span two roots bridged by QPI —
which is why the paper observes the worst scaling cliff from 4 to 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .backends import BackendModel
from .gpu import GPUSpec, get_gpu
from .network import Network
from .topology import Topology, multinode, nvlink_mesh, pcie_dual_root

__all__ = ["Machine", "MACHINES", "get_machine", "make_cluster"]


@dataclass(frozen=True)
class Machine:
    """A multi-GPU server configuration."""

    name: str
    gpu_name: str
    n_gpus: int
    interconnect: str              # "pcie" | "nvlink"
    pcie_bandwidth: float = 14e9   # per-GPU PCIe bandwidth (pcie machines)
    host_bandwidth: float = 24e9
    nvlink_bandwidth: float = 100e9
    price_per_hour: float = 0.0    # 0 = not a cloud offering
    description: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def gpu(self) -> GPUSpec:
        return get_gpu(self.gpu_name)

    def topology(self, n_gpus: int | None = None) -> Topology:
        n = n_gpus or self.n_gpus
        if n > self.n_gpus:
            raise ValueError(
                f"{self.name} has {self.n_gpus} GPUs, requested {n}"
            )
        if self.interconnect == "nvlink":
            if n == 1:
                # degenerate single-GPU "topology" with no links
                return Topology(f"{self.name}-1gpu", 1, {}, {})
            return nvlink_mesh(n, link_bandwidth=self.nvlink_bandwidth,
                               name=f"{self.name}-{n}gpu")
        roots = 2 if n > 4 else 1
        if n == 1:
            return Topology(f"{self.name}-1gpu", 1, {}, {})
        return pcie_dual_root(
            n,
            pcie_bandwidth=self.pcie_bandwidth,
            host_bandwidth=self.host_bandwidth,
            roots=roots,
            name=f"{self.name}-{n}gpu",
        )

    def network(self, backend: BackendModel | str = "shm",
                n_gpus: int | None = None) -> Network:
        return Network(self.topology(n_gpus), backend)


MACHINES: dict[str, Machine] = {
    # Table 2 systems -----------------------------------------------------
    "rtx3090-8x": Machine(
        "rtx3090-8x", "RTX3090", 8, "pcie", pcie_bandwidth=14e9,
        description="8x RTX 3090 commodity workstation (bus only, 13-16 GBps)"),
    "rtx2080-8x": Machine(
        "rtx2080-8x", "RTX2080Ti", 8, "pcie", pcie_bandwidth=7e9,
        host_bandwidth=14e9,
        description="8x RTX 2080 Ti commodity workstation (6-8 GBps bus)"),
    "dgx1": Machine(
        "dgx1", "V100", 8, "nvlink",
        description="NVIDIA DGX-1: 8x V100, NVLink backbone ring, 100 GBps"),
    "a6000-8x": Machine(
        "a6000-8x", "A6000", 8, "nvlink",
        description="8x A6000 server with NVLink, 100 GBps"),
    # Cloud instances (Table 4) -------------------------------------------
    "genesis-4x3090": Machine(
        "genesis-4x3090", "RTX3090", 4, "pcie",
        # "10 GBps intra-node" is the aggregate across the 4 GPUs of the
        # virtualized instance: ~2.5 GB/s effective per GPU.
        pcie_bandwidth=2.5e9, host_bandwidth=10e9, price_per_hour=6.8,
        description="Genesis Cloud 4x RTX 3090, 10 GBps intra-node"),
    "aws-p3.8xlarge": Machine(
        "aws-p3.8xlarge", "V100", 4, "nvlink", price_per_hour=12.2,
        description="AWS p3.8xlarge: 4x V100 with NVLink"),
    "aws-p3.16xlarge": Machine(
        "aws-p3.16xlarge", "V100", 8, "nvlink", price_per_hour=24.5,
        description="AWS p3.16xlarge: 8x V100 (DGX-1 equivalent)"),
}


def get_machine(name: str) -> Machine:
    if name not in MACHINES:
        raise KeyError(f"unknown machine {name!r}; choose from {sorted(MACHINES)}")
    return MACHINES[name]


def make_cluster(machine: Machine | str, n_nodes: int,
                 inter_bandwidth: float = 0.625e9,
                 inter_latency: float = 30e-6) -> Topology:
    """Multi-node cluster of identical machines joined by Ethernet.

    Reproduces the Table 5 setting: four Genesis 4x3090 nodes with
    "5 GBps" inter-node links — 5 gigabit/s of TCP throughput, i.e.
    ~0.625 GB/s, which is what makes the uncompressed multi-node
    baseline collapse and gives CGX its up-to-10x speedups there.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    nodes = [machine.topology() for _ in range(n_nodes)]
    return multinode(nodes, inter_bandwidth=inter_bandwidth,
                     inter_latency=inter_latency,
                     name=f"{machine.name}-x{n_nodes}")

"""Public CGX API, mirroring the paper's Listing 1 (torch_cgx).

The paper's Torch extension exposes ``register_model``,
``exclude_layer`` and per-layer compression control on top of the
communication engine; :class:`CGXSession` reproduces that surface:

    session = CGXSession()
    session.register_model([(name, p.numel) for name, p in model.named_parameters()])
    session.exclude_layer("bn")
    session.exclude_layer("bias")
    session.set_quantization_bits(4)
    session.set_layer_compression("embed.weight", CompressionSpec("qsgd", bits=2))

A session owns a :class:`~repro.core.config.CGXConfig` and hands a ready
:class:`~repro.core.engine.CommunicationEngine` to whichever frontend
(DDP wrapper, Horovod-style trainer, graph frontend) drives training.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compression import CompressionSpec

from .config import CGXConfig
from .engine import CommunicationEngine
from .filters import LayerInfo

__all__ = ["CGXSession"]


class CGXSession:
    """User-facing handle configuring CGX for one model."""

    def __init__(self, config: CGXConfig | None = None):
        self.config = config or CGXConfig.cgx_default()
        self._layers: list[LayerInfo] = []
        self._registered = False

    # -- Listing 1 surface --------------------------------------------------
    def register_model(self, layers: list[tuple[str, int]]) -> None:
        """Declare the model layout: ``[(tensor_name, numel), ...]``.

        Mirrors ``torch_qmpi.register_model``; the engine needs the
        layout because at the DDP level buffers arrive as anonymous
        blobs and layer offsets must be recovered from this table.
        """
        if not layers:
            raise ValueError("register_model needs a non-empty layer list")
        self._layers = [LayerInfo(name, int(numel)) for name, numel in layers]
        self._registered = True

    def exclude_layer(self, pattern: str) -> None:
        """Reduce every tensor whose name contains ``pattern`` in fp32."""
        if not pattern:
            raise ValueError("pattern must be non-empty")
        keywords = tuple(self.config.filtered_keywords) + (pattern,)
        self.config = replace(self.config, filtered_keywords=keywords)

    def set_quantization_bits(self, bits: int,
                              bucket_size: int | None = None) -> None:
        """Set the default quantization bit-width (and bucket size)."""
        spec = self.config.compression
        if spec.method != "qsgd":
            spec = CompressionSpec("qsgd", bits=bits,
                                   bucket_size=bucket_size or 128)
        else:
            spec = spec.with_bits(bits, bucket_size)
        self.config = self.config.with_compression(spec)

    def set_layer_compression(self, layer_name: str,
                              spec: CompressionSpec) -> None:
        """Override compression for one tensor (heterogeneous mode)."""
        self.config.per_layer[layer_name] = spec

    def set_layer_bits(self, layer_name: str, bits: int,
                       bucket_size: int | None = None) -> None:
        """Adaptive-path helper: per-layer quantization bit-width."""
        base = self.config.compression
        if base.method != "qsgd":
            base = CompressionSpec("qsgd", bits=bits,
                                   bucket_size=bucket_size or 128)
        self.set_layer_compression(layer_name, base.with_bits(bits, bucket_size))

    # -- engine handoff -------------------------------------------------------
    @property
    def layers(self) -> list[LayerInfo]:
        if not self._registered:
            raise RuntimeError("call register_model() before using the session")
        return list(self._layers)

    def engine(self) -> CommunicationEngine:
        """Engine configured with the session's current settings."""
        return CommunicationEngine(self.config)

    def plan(self, mode: str = "cgx"):
        """Package plan over the registered layout."""
        return self.engine().plan(self.layers, mode=mode)

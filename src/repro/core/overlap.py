"""Overlapped (async) reduction scheduling for the CGX engine.

Sequential mode runs the whole backward pass, then every collective;
the paper's engine instead enqueues each layer's gradient for reduction
as soon as its backward finishes, fuses consecutive small same-spec
packages into transmission buckets (``fusion_bytes``-targeted, exactly
the grouping the timed perf model uses), and drains the buckets over a
single communication channel in *first-needed-first-sent* order: the
next forward pass consumes front layers first, so their buckets launch
first once sealed.

This module holds the deterministic scheduling substrate the engine's
:meth:`~repro.core.engine.CommunicationEngine.reduce_overlapped` and
the overlap certifier (:mod:`repro.analysis.overlap`) share:

* :class:`OverlapDelays` — injectable per-layer compute and per-bucket
  communication intervals (the certifier injects known delays; the
  trainer uses a documented default envelope);
* :func:`assemble_buckets` — static DDP-style bucket assignment over
  the expected emission order, tie-broken on (first-needed forward
  position, emission index) so two same-seed runs produce byte-identical
  event logs;
* :func:`schedule_buckets` — the event-driven single-channel timeline:
  a bucket seals when its last member gradient is ready, and whenever
  the channel frees the sealed bucket with the smallest
  (first_needed, min_index) launches.

Everything here is simulated-time bookkeeping; the data-path math
(compression, reduction, error feedback) is untouched — buckets are
transmission groups only, each inner per-layer package still reduces
with its own compressor and state keys, which is what keeps overlapped
results bit-identical to sequential mode for deterministic compressors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .engine import Package, ReductionReport

__all__ = ["OverlapDelays", "OverlapBucket", "OverlapReport",
           "assemble_buckets", "layer_ready_times", "schedule_buckets"]

#: default backward-compute throughput assumed when no delays are given
#: (elements per second; tiny layers floor at DEFAULT_COMPUTE_FLOOR)
DEFAULT_COMPUTE_ELEMS_PER_S = 1e9
DEFAULT_COMPUTE_FLOOR = 1e-6
#: default wire envelope: per-bucket launch latency + per-byte cost
DEFAULT_COMM_LATENCY = 20e-6
DEFAULT_COMM_SECONDS_PER_BYTE = 1.0 / 5e9


@dataclass(frozen=True)
class OverlapDelays:
    """Injected compute/communication intervals for the overlapped timeline.

    ``compute`` maps layer names to backward-interval seconds (the gap
    between the previous layer's gradient and this one's); a bucket's
    transfer costs ``comm_latency + wire_bytes * comm_per_byte``.  The
    certifier injects known uniform delays so the makespan bound of
    OVL005 is exact; the trainer default derives compute from layer
    sizes and uses a fixed wire envelope.
    """

    compute: Mapping[str, float]
    comm_latency: float = DEFAULT_COMM_LATENCY
    comm_per_byte: float = DEFAULT_COMM_SECONDS_PER_BYTE

    def compute_for(self, name: str) -> float:
        return float(self.compute.get(name, DEFAULT_COMPUTE_FLOOR))

    def bucket_comm(self, wire_bytes: int) -> float:
        """Transfer seconds for one bucket of ``wire_bytes`` payload."""
        return self.comm_latency + wire_bytes * self.comm_per_byte

    @staticmethod
    def uniform(names: Sequence[str], compute: float = 1e-3,
                comm_latency: float = 4e-3,
                comm_per_byte: float = 0.0) -> "OverlapDelays":
        """Identical compute per layer, fixed comm per bucket (tests)."""
        return OverlapDelays({name: float(compute) for name in names},
                             comm_latency=float(comm_latency),
                             comm_per_byte=float(comm_per_byte))

    @staticmethod
    def default_for(numels: Mapping[str, int]) -> "OverlapDelays":
        """Size-proportional compute, fixed wire envelope (trainer)."""
        compute = {
            name: max(DEFAULT_COMPUTE_FLOOR,
                      numel / DEFAULT_COMPUTE_ELEMS_PER_S)
            for name, numel in numels.items()
        }
        return OverlapDelays(compute)


@dataclass
class OverlapBucket:
    """One fused transmission group of per-layer packages.

    ``first_needed`` is the smallest forward position among member
    layers (the step of the next forward pass that first needs one of
    them); ``min_index`` is the smallest emission index, the
    deterministic tie-break.  ``ready_t``/``launch_t``/``landed_t``
    are filled by :func:`schedule_buckets`; ``exec_span`` brackets the
    trace-timeline positions of the bucket's data-path records and
    ``measured_bytes`` holds the serialize_payload ground truth when
    the engine measures it (OVL002).
    """

    name: str
    packages: list[Package]
    first_needed: int
    min_index: int
    dense_bytes: int
    wire_bytes: int
    ready_t: float = 0.0
    launch_t: float = 0.0
    landed_t: float = 0.0
    measured_bytes: int = -1
    exec_span: tuple[int, int] = (-1, -1)

    @property
    def layer_names(self) -> list[str]:
        return [layer.name for pkg in self.packages for layer in pkg.layers]


@dataclass
class OverlapReport(ReductionReport):
    """A :class:`ReductionReport` plus the overlapped step's timeline."""

    buckets: list[OverlapBucket] = field(default_factory=list)
    compute_end: float = 0.0       # last gradient emission
    comm_total: float = 0.0        # sum of bucket transfer intervals
    overlapped_time: float = 0.0   # max(compute_end, last bucket landed)
    sequential_time: float = 0.0   # compute_end + comm_total

    @property
    def overlap_ratio(self) -> float:
        """Sequential over overlapped step time (>= 1 when overlap helps)."""
        if self.overlapped_time <= 0.0:
            return 1.0
        return self.sequential_time / self.overlapped_time


def layer_ready_times(ready_order: Sequence[str],
                      delays: OverlapDelays) -> dict[str, float]:
    """When each gradient is emitted: cumulative backward intervals."""
    ready: dict[str, float] = {}
    elapsed = 0.0
    for name in ready_order:
        elapsed += delays.compute_for(name)
        ready[name] = elapsed
    return ready


def assemble_buckets(packages: Sequence[Package],
                     forward_pos: Mapping[str, int],
                     fusion_bytes: int) -> list[OverlapBucket]:
    """Static bucket assignment over the expected emission order.

    ``packages`` are per-layer packages in emission (ready) order.
    Consecutive same-spec packages fuse until the dense size reaches
    ``fusion_bytes``; oversize packages and PowerSGD factors travel
    alone — the same policy as the timed perf model's grouping, so the
    overlapped data path and the step-time projections agree on what
    one collective carries.
    """
    from .engine import group_for_transmission

    grouped = group_for_transmission(list(packages), fusion_bytes)
    buckets: list[OverlapBucket] = []
    emitted = 0
    for i, pkg in enumerate(grouped):
        members: list[Package] = []
        covered = 0
        while covered < len(pkg.layers):
            inner = packages[emitted + len(members)]
            members.append(inner)
            covered += len(inner.layers)
        if covered != len(pkg.layers):
            raise AssertionError(
                f"bucket {pkg.name!r} does not align with the per-layer "
                f"package run starting at {emitted}")
        positions = [forward_pos[layer.name] for layer in pkg.layers]
        buckets.append(OverlapBucket(
            name=f"bucket{i}[{pkg.name}]",
            packages=members,
            first_needed=min(positions),
            min_index=emitted,
            dense_bytes=pkg.numel * 4,
            wire_bytes=sum(inner.wire_bytes() for inner in members),
        ))
        emitted += len(members)
    return buckets


def schedule_buckets(buckets: Sequence[OverlapBucket],
                     ready: Mapping[str, float],
                     comm: Callable[[OverlapBucket], float]
                     ) -> list[OverlapBucket]:
    """Fill seal/launch/land times; return buckets in launch order.

    One communication channel: a bucket seals (``ready_t``) when its
    last member gradient is emitted; whenever the channel frees, the
    sealed-but-unsent bucket with the smallest (first_needed,
    min_index) launches.  The tie-break is total, so the schedule — and
    with it the canonical event log — is a pure function of the inputs.
    """
    for bucket in buckets:
        bucket.ready_t = max(ready[name] for name in bucket.layer_names)
    remaining = list(buckets)
    free = 0.0
    order: list[OverlapBucket] = []
    while remaining:
        sealed = [b for b in remaining if b.ready_t <= free]
        if not sealed:
            free = min(b.ready_t for b in remaining)
            continue
        chosen = min(sealed, key=lambda b: (b.first_needed, b.min_index))
        chosen.launch_t = max(free, chosen.ready_t)
        chosen.landed_t = chosen.launch_t + comm(chosen)
        free = chosen.landed_t
        order.append(chosen)
        remaining.remove(chosen)
    return order

"""Distributed-data-parallel wrapper over the mini framework.

:class:`CGXDistributedDataParallel` holds N model replicas (the
simulated ranks), runs each worker's forward/backward on its own data
shard, and synchronizes gradients through the CGX engine — real
compression, real reduction scheme, real error.  After synchronization
every replica holds bit-identical averaged gradients, so identical
optimizers keep the replicas in lock-step (asserted by
:meth:`check_in_sync`, and by the test suite).

PowerSGD takes a separate path (:mod:`repro.baselines.powersgd_ddp`)
because its aggregation is associative over the P/Q factors rather than
over gradients.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.trace import emit_overlap
from repro.nn.module import Module

from .config import CGXConfig
from .engine import CommunicationEngine, ReductionReport
from .overlap import OverlapDelays, OverlapReport

__all__ = ["CGXDistributedDataParallel"]


class CGXDistributedDataParallel:
    """N in-process replicas synchronized through the CGX engine."""

    def __init__(
        self,
        replicas: list[Module],
        config: CGXConfig | None = None,
        mode: str = "cgx",
        seed: int = 0,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        names = [sorted(name for name, _ in r.named_parameters())
                 for r in replicas]
        if any(n != names[0] for n in names[1:]):
            raise ValueError("replicas must share an identical parameter set")
        self.replicas = replicas
        self.engine = CommunicationEngine(config or CGXConfig.cgx_default())
        self.mode = mode
        self.rng = np.random.default_rng(seed)
        self.last_report: ReductionReport | None = None
        # completion barrier for overlapped mode: gradients whose
        # reduction has landed this step (consumers must not read
        # ``param.grad`` before :meth:`mark_consumed` passes)
        self._landed: set[str] = set()
        self._landed_step = -1

    @property
    def world_size(self) -> int:
        return len(self.replicas)

    def _member_ranks(self, members: list[int] | None) -> list[int]:
        """Validated global ranks taking part in this step's reduction."""
        if members is None:
            return list(range(len(self.replicas)))
        ranks = sorted(set(members))
        if not ranks:
            raise ValueError("need at least one member")
        if any(not 0 <= r < len(self.replicas) for r in ranks):
            raise ValueError(
                f"member out of range: {ranks} with "
                f"{len(self.replicas)} replicas")
        return ranks

    def synchronize(self, participants: list[int] | None = None,
                    average_over: int | None = None,
                    members: list[int] | None = None) -> ReductionReport:
        """Average gradients across replicas via the configured engine.

        Call after every worker has completed its backward pass.  Missing
        gradients (parameters untouched this step) are treated as zeros.

        ``participants`` restricts the reduction to a quorum (graceful
        degradation; skipped ranks' gradients ride the engine's carry
        buffers) and ``average_over`` re-normalizes the mean over the
        number of actually contributing ranks (elastic membership).

        ``members`` names the global ranks that exist this step — elastic
        worlds exclude departed replicas entirely (their slots stay in
        ``self.replicas`` so indices never shift, but they neither
        contribute gradients nor receive the reduction).  ``participants``
        is interpreted in global rank numbers and must be a subset of the
        members.
        """
        ranks = self._member_ranks(members)
        pos = {rank: i for i, rank in enumerate(ranks)}
        if participants is not None:
            missing = sorted(set(participants) - set(ranks))
            if missing:
                raise ValueError(
                    f"participants {missing} are not members {ranks}")
            local_participants = [pos[p] for p in participants]
        else:
            local_participants = None

        per_worker = []
        for rank in ranks:
            grads = {}
            for name, param in self.replicas[rank].named_parameters():
                if param.grad is None:
                    grads[name] = np.zeros(param.data.shape, dtype=np.float32)
                else:
                    grads[name] = param.grad
            per_worker.append(grads)

        reduced, report = self.engine.reduce(per_worker, self.rng,
                                             mode=self.mode, average=True,
                                             participants=local_participants,
                                             average_over=average_over)
        for rank in ranks:
            replica = self.replicas[rank]
            for name, param in replica.named_parameters():
                param.grad = np.ascontiguousarray(
                    reduced[pos[rank]][name], dtype=np.float32
                )
        self.last_report = report
        return report

    def synchronize_overlapped(
        self,
        ready_order: list[str] | None = None,
        participants: list[int] | None = None,
        average_over: int | None = None,
        step: int = 0,
        delays: OverlapDelays | None = None,
        measure_payload: bool = False,
    ) -> OverlapReport:
        """Overlapped-mode :meth:`synchronize` (cgx planning only).

        ``ready_order`` is the per-layer gradient emission order of the
        backward pass (from the module grad-ready hooks); the engine
        enqueues each layer as it becomes ready, fuses transmission
        buckets and drains them first-needed-first-sent.  Returns once
        every bucket has landed — the completion barrier — after which
        :meth:`mark_consumed` certifies consumption ordering.
        """
        if self.mode != "cgx":
            raise ValueError(
                f"overlapped synchronization requires cgx planning, "
                f"not mode {self.mode!r} (blob mode reduces whole fusion "
                f"buffers, which cannot enqueue per layer)")
        per_worker = []
        for replica in self.replicas:
            grads = {}
            for name, param in replica.named_parameters():
                if param.grad is None:
                    grads[name] = np.zeros(param.data.shape, dtype=np.float32)
                else:
                    grads[name] = param.grad
            per_worker.append(grads)

        reduced, report = self.engine.reduce_overlapped(
            per_worker, self.rng, ready_order=ready_order, average=True,
            participants=participants, average_over=average_over,
            step=step, delays=delays, measure_payload=measure_payload)
        for worker, replica in enumerate(self.replicas):
            for name, param in replica.named_parameters():
                param.grad = np.ascontiguousarray(
                    reduced[worker][name], dtype=np.float32
                )
        self.last_report = report
        self._landed = set(per_worker[0])
        self._landed_step = step
        return report

    def mark_consumed(self, step: int) -> None:
        """Completion barrier check + ``grad_consumed`` trace events.

        Call after :meth:`synchronize_overlapped` and *before* any
        consumer (clipping, adaptive observation, optimizer) reads
        ``param.grad``.  Raises if a gradient's reduction has not
        landed this step — the invariant OVL001 certifies statically.
        """
        report = self.last_report
        t = report.overlapped_time if isinstance(report, OverlapReport) \
            else 0.0
        for name, _ in self.replicas[0].named_parameters():
            if step != self._landed_step or name not in self._landed:
                raise RuntimeError(
                    f"gradient {name!r} consumed at step {step} before "
                    f"its reduction landed (landed step "
                    f"{self._landed_step})")
            emit_overlap("grad_consumed", step, t, layer=name)

    def check_in_sync(self, atol: float = 0.0,
                      members: list[int] | None = None) -> bool:
        """True if all (member) replicas hold (near-)identical weights."""
        ranks = self._member_ranks(members)
        reference = dict(self.replicas[ranks[0]].named_parameters())
        for rank in ranks[1:]:
            for name, param in self.replicas[rank].named_parameters():
                if not np.allclose(param.data, reference[name].data, atol=atol,
                                   rtol=0.0):
                    return False
        return True

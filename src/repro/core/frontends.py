"""Framework frontends: eager (PyTorch-style) and graph (TensorFlow-style).

The paper integrates CGX with PyTorch (via Horovod and via a Torch-DDP
backend) and with TensorFlow (Appendix D); the engine itself is
frontend-agnostic.  We reproduce that portability claim with two thin
frontends over the same engine:

* :class:`EagerFrontend` — discovers the layer layout from live
  parameter gradients on every step (PyTorch-style define-by-run).
* :class:`GraphFrontend` — captures the layout once at build time and
  replays a fixed package plan (TensorFlow-style define-then-run);
  per-step planning overhead disappears, matching Appendix D's result
  that CGX's speedup carries over unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

from .api import CGXSession
from .engine import CommunicationEngine
from .filters import LayerInfo

__all__ = ["EagerFrontend", "GraphFrontend"]


class _FrontendBase:
    """Shared reduce path for both frontends."""

    def __init__(self, session: CGXSession, seed: int = 0):
        self.session = session
        self.rng = np.random.default_rng(seed)

    def _engine(self) -> CommunicationEngine:
        return self.session.engine()

    def reduce(self, per_worker_grads: list[dict[str, np.ndarray]]):
        raise NotImplementedError


class EagerFrontend(_FrontendBase):
    """Define-by-run: layout discovered from the gradients each step."""

    def reduce(self, per_worker_grads: list[dict[str, np.ndarray]]):
        reduced, report = self._engine().reduce(per_worker_grads, self.rng)
        return reduced, report


class GraphFrontend(_FrontendBase):
    """Define-then-run: the package plan is captured once.

    Requires :meth:`capture` (or a model) before the first reduce; a
    layout change after capture raises, mirroring static-graph
    frameworks rejecting shape changes.
    """

    def __init__(self, session: CGXSession, model: Module | None = None,
                 seed: int = 0):
        super().__init__(session, seed)
        self._layers: list[LayerInfo] | None = None
        self._engine_cache: CommunicationEngine | None = None
        if model is not None:
            self.capture_model(model)

    def capture_model(self, model: Module) -> None:
        layout = [(name, param.numel)
                  for name, param in model.named_parameters()]
        self.capture(layout)

    def capture(self, layout: list[tuple[str, int]]) -> None:
        self.session.register_model(layout)
        self._layers = self.session.layers
        self._engine_cache = self.session.engine()

    def reduce(self, per_worker_grads: list[dict[str, np.ndarray]]):
        if self._layers is None:
            raise RuntimeError("GraphFrontend.capture() must run before reduce")
        names = {layer.name for layer in self._layers}
        seen = set(per_worker_grads[0])
        if names != seen:
            raise ValueError(
                "gradient layout changed after graph capture: "
                f"missing={sorted(names - seen)}, new={sorted(seen - names)}"
            )
        reduced, report = self._engine_cache.reduce(per_worker_grads, self.rng)
        return reduced, report

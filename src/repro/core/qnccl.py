"""QNCCL: quantization inside the NCCL library (the "primitive" design).

The paper contributes QNCCL as a counterpoint artifact: vanilla NCCL
with Allreduce replaced by compress-before-transfer.  Operating at the
transport level means:

* no layer information — compression parameters are uniform over raw
  fusion buffers, so bias/norm tensors get quantized and buckets mix
  values from different layers (worse accuracy than CGX, Table 3
  discussion);
* NCCL's ring algorithm and its internal resource limits, which leave
  "non-negligible compression overhead" (modeled as a kernel-cost
  multiplier in the timing path).

In this reproduction QNCCL is a configuration of the same engine:
fused-blob planning + ring reduction + uniform quantization + NCCL
backend.
"""

from __future__ import annotations

from repro.compression import CompressionSpec

from .config import CGXConfig

__all__ = ["qnccl_config", "QNCCL_KERNEL_OVERHEAD_FACTOR", "QNCCL_PLAN_MODE"]

#: extra compression-kernel cost under NCCL's resource constraints
QNCCL_KERNEL_OVERHEAD_FACTOR = 2.0
#: QNCCL always plans fused blobs — it never sees layer boundaries
QNCCL_PLAN_MODE = "fused"


def qnccl_config(bits: int = 4, bucket_size: int = 128) -> CGXConfig:
    """Engine configuration reproducing the QNCCL artifact."""
    return CGXConfig(
        backend="nccl",
        scheme="ring",
        compression=CompressionSpec("qsgd", bits=bits, bucket_size=bucket_size),
        filtered_keywords=(),      # transport level: cannot filter layers
        min_compress_numel=0,
        fuse_filtered=False,
        chunk_streams=1,
    )

"""The CGX communication engine: package planning and data-path reduction.

The engine turns a model's gradient tensors into *packages* (the unit of
one collective call) according to the configuration:

* **CGX mode** — one package per compressed layer (compression is
  per-layer, never across concatenated tensors with different
  distributions), plus one fused fp32 package for all filtered tensors.
* **Fused (blob) mode** — the NCCL-baseline / QNCCL behaviour: tensors
  are concatenated into fusion buffers of ~25 MB regardless of layer
  boundaries, and whatever compression applies is uniform over the blob.

The same plan drives both the real data path (:meth:`reduce`) used in
accuracy experiments and the timed path in :mod:`repro.training.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collectives import PartialAllreduce, ReduceStats, allreduce
from repro.compression import CompressionSpec, Compressor, make_compressor
from repro.compression.topk import ErrorFeedback

from .config import CGXConfig
from .filters import LayerFilter, LayerInfo

__all__ = ["Package", "CommunicationEngine", "ReductionReport",
           "group_for_transmission"]


@dataclass(frozen=True)
class Package:
    """A group of tensors reduced in one collective call."""

    name: str
    layers: tuple[LayerInfo, ...]
    spec: CompressionSpec

    @property
    def numel(self) -> int:
        return sum(layer.numel for layer in self.layers)

    def wire_bytes(self) -> int:
        return self.spec.wire_bytes(self.numel)


@dataclass
class ReductionReport:
    """Aggregate statistics of one synchronization step."""

    packages: int = 0
    wire_bytes: int = 0      # actual bytes moved by the collectives
    payload_bytes: int = 0   # one-copy compressed size of the model gradient
    dense_bytes: int = 0     # one-copy fp32 size of the model gradient
    compress_calls: int = 0
    retries: int = 0         # fault-channel retransmissions this step
    retransmit_bytes: int = 0  # extra wire bytes those retries moved
    quorum_world: int | None = None  # participant count when degraded
    per_package: list[tuple[str, ReduceStats]] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Dense gradient bytes over compressed payload bytes (>= 1)."""
        if self.payload_bytes == 0:
            return 1.0
        return self.dense_bytes / self.payload_bytes


class CommunicationEngine:
    """Plans packages and executes real-data reductions."""

    def __init__(self, config: CGXConfig | None = None,
                 node_of: list[int] | None = None):
        self.config = config or CGXConfig()
        self.filter = LayerFilter(self.config.filtered_keywords,
                                  self.config.min_compress_numel)
        self.node_of = node_of  # rank -> node, for the hierarchical scheme
        self._compressors: dict[str, Compressor | ErrorFeedback] = {}
        # per-package quorum reducers, created on first degraded step so
        # carry buffers persist until the skipped mass has drained
        self._partials: dict[str, PartialAllreduce] = {}
        # residuals restored from a checkpoint before their package's
        # compressor exists; consumed lazily by _compressor_for
        self._pending_residuals: dict[str, dict] = {}

    # -- planning ----------------------------------------------------------
    def plan(self, layers: list[LayerInfo], mode: str = "cgx") -> list[Package]:
        """Build the package list for ``layers`` (in emission order)."""
        if mode == "cgx":
            return self._plan_cgx(layers)
        if mode == "fused":
            return self._plan_fused(layers)
        raise ValueError(f"unknown plan mode {mode!r}")

    def _plan_cgx(self, layers: list[LayerInfo]) -> list[Package]:
        compressed, filtered = self.filter.partition(layers)
        packages = [
            Package(layer.name, (layer,), self.config.spec_for(layer.name))
            for layer in compressed
        ]
        if filtered:
            fp32 = CompressionSpec("none")
            if self.config.fuse_filtered:
                packages.append(Package("filtered", tuple(filtered), fp32))
            else:
                packages.extend(
                    Package(layer.name, (layer,), fp32) for layer in filtered
                )
        return packages

    def _plan_fused(self, layers: list[LayerInfo]) -> list[Package]:
        packages: list[Package] = []
        bucket: list[LayerInfo] = []
        bucket_bytes = 0
        for layer in layers:
            bucket.append(layer)
            bucket_bytes += layer.numel * 4
            if bucket_bytes >= self.config.fusion_bytes:
                packages.append(
                    Package(f"fused{len(packages)}", tuple(bucket),
                            self.config.compression)
                )
                bucket, bucket_bytes = [], 0
        if bucket:
            packages.append(
                Package(f"fused{len(packages)}", tuple(bucket),
                        self.config.compression)
            )
        return packages

    # -- data path -----------------------------------------------------------
    def _reduce_package(
        self,
        package: Package,
        buffers: list[np.ndarray],
        rng: np.random.Generator,
        quorum: list[int],
        subset: bool,
    ) -> tuple[list[np.ndarray], ReduceStats]:
        """One package through the scheme or its quorum reducer.

        A strict-subset quorum routes through :class:`PartialAllreduce`
        (carry buffers bank the skipped contributions); once degraded a
        package stays on the quorum reducer until its carries drain.
        Shared by the sequential and overlapped data paths so both modes
        see identical quorum/carry semantics per package name.
        """
        world = len(buffers)
        compressor = self._compressor_for(package)
        reducer = self._partials.get(package.name)
        if subset or reducer is not None:
            if reducer is None or reducer.world != world:
                reducer = PartialAllreduce(world)
                self._partials[package.name] = reducer
            reduced, stats = reducer.reduce(buffers, quorum, compressor,
                                            rng, key=package.name)
            if not subset and not reducer.has_carries():
                # carries drained under full participation: return the
                # package to the configured scheme next step
                del self._partials[package.name]
        else:
            reduced, stats = allreduce(self.config.scheme, buffers,
                                       compressor, rng, key=package.name,
                                       node_of=self.node_of)
        return reduced, stats

    def _compressor_for(self, package: Package) -> Compressor | ErrorFeedback:
        """Per-package compressor, cached so stateful methods keep state.

        When the adaptive policy changes a package's spec without
        changing the method, error-feedback residuals carry over to the
        rebuilt compressor: they are in gradient units, independent of
        density/bit-width, and dropping them loses the compression error
        of the last step (the convergence guarantee assumes the residual
        is *always* folded back in).
        """
        comp = self._compressors.get(package.name)
        if comp is None or comp.spec != package.spec:
            fresh: Compressor | ErrorFeedback = make_compressor(package.spec)
            if package.spec.error_feedback:
                fresh = ErrorFeedback(fresh)
                if (isinstance(comp, ErrorFeedback)
                        and comp.spec.method == package.spec.method):
                    fresh.adopt_residuals(comp)
            self._compressors[package.name] = fresh
            comp = fresh
        if isinstance(comp, ErrorFeedback) \
                and package.name in self._pending_residuals:
            comp.load_residual_state(
                self._pending_residuals.pop(package.name))
        return comp

    def banked_carry_norm(self) -> float:
        """Total gradient mass banked in the quorum carry buffers.

        The elastic drain gate: membership may only grow or shrink when
        this is zero, because :class:`PartialAllreduce` carries are
        keyed by buffer index and changing the buffer list while mass
        is banked would orphan it (certified by ELA001).
        """
        return sum(reducer.total_carry_norm()
                   for reducer in self._partials.values())

    # -- checkpointable state ------------------------------------------------
    def state_dict(self) -> dict:
        """Stateful pieces of the engine: EF residuals, quorum carries.

        Everything else the engine holds (plans, compressor caches) is
        a pure function of the config and layer list, so this plus the
        config is enough for bit-identical resume.
        """
        residuals = {name: comp.residual_state()
                     for name, comp in sorted(self._compressors.items())
                     if isinstance(comp, ErrorFeedback)}
        for name, pending in self._pending_residuals.items():
            residuals.setdefault(name, dict(pending))
        partials = {name: {"world": reducer.world,
                           "carries": reducer.carry_state()}
                    for name, reducer in sorted(self._partials.items())}
        return {"error_feedback": residuals, "partials": partials}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (fresh or live engine)."""
        self._partials = {}
        for name, entry in state.get("partials", {}).items():
            reducer = PartialAllreduce(int(entry["world"]))
            reducer.load_carry_state(entry["carries"])
            self._partials[name] = reducer
        self._pending_residuals = {name: dict(res) for name, res
                                   in state.get("error_feedback", {}).items()}
        for name, comp in self._compressors.items():
            if isinstance(comp, ErrorFeedback) \
                    and name in self._pending_residuals:
                comp.load_residual_state(self._pending_residuals.pop(name))

    def reduce(
        self,
        per_worker_grads: list[dict[str, np.ndarray]],
        rng: np.random.Generator,
        mode: str = "cgx",
        average: bool = True,
        participants: list[int] | None = None,
        average_over: int | None = None,
    ) -> tuple[list[dict[str, np.ndarray]], ReductionReport]:
        """Reduce named gradients across workers through the plan.

        Args:
            per_worker_grads: one {tensor name: gradient} dict per worker;
                all workers must hold the same names and shapes.
            rng: shared randomness (quantization decisions are made once
                on the wire, identically for every receiving worker).
            mode: ``cgx`` or ``fused`` planning.
            average: divide by world size after summation.
            participants: graceful-degradation quorum.  ``None`` (or all
                ranks) runs the configured scheme; a strict subset routes
                every package through a :class:`PartialAllreduce`, whose
                carry buffers bank the skipped contributions.  Once a
                package has degraded it stays on the quorum reducer until
                its carries drain, so no gradient mass is lost.
            average_over: divisor for the average (default: world size).
                Elastic membership passes the number of *contributing*
                ranks so crashed workers do not dilute the mean.

        Returns:
            (per-worker reduced gradients, aggregate report).
        """
        if not per_worker_grads:
            raise ValueError("need at least one worker")
        names = list(per_worker_grads[0])
        for i, grads in enumerate(per_worker_grads):
            if list(grads) != names:
                raise ValueError(f"worker {i} gradient names differ")
        world = len(per_worker_grads)
        layers = [
            LayerInfo(name, per_worker_grads[0][name].size,
                      tuple(per_worker_grads[0][name].shape))
            for name in names
        ]
        quorum = sorted(set(participants)) if participants is not None \
            else list(range(world))
        if any(not 0 <= p < world for p in quorum):
            raise ValueError("participant rank out of range")
        subset = len(quorum) < world
        report = ReductionReport()
        if subset:
            report.quorum_world = len(quorum)
        outputs: list[dict[str, np.ndarray]] = [dict() for _ in range(world)]

        for package in self.plan(layers, mode=mode):
            buffers = [
                _gather_package(per_worker_grads[w], package) for w in range(world)
            ]
            reduced, stats = self._reduce_package(package, buffers, rng,
                                                  quorum, subset)
            scale = 1.0 / (average_over or world) if average else 1.0
            for w in range(world):
                _scatter_package(outputs[w], reduced[w] * scale, package)
            report.packages += 1
            report.wire_bytes += stats.wire_bytes
            report.payload_bytes += package.wire_bytes()
            report.compress_calls += stats.compress_calls
            report.retries += stats.retries
            report.retransmit_bytes += stats.retransmit_bytes
            report.per_package.append((package.name, stats))
        report.dense_bytes = sum(layer.numel * 4 for layer in layers)
        return outputs, report

    def reduce_overlapped(
        self,
        per_worker_grads: list[dict[str, np.ndarray]],
        rng: np.random.Generator,
        ready_order: list[str] | None = None,
        average: bool = True,
        participants: list[int] | None = None,
        average_over: int | None = None,
        step: int = 0,
        delays=None,
        measure_payload: bool = False,
    ):
        """Overlapped-mode reduction: per-layer enqueue, fused buckets.

        The async counterpart of :meth:`reduce` (cgx planning only).
        Each layer becomes its own package the moment its gradient is
        emitted (``ready_order``, default reverse forward order);
        consecutive same-spec packages fuse into ``fusion_bytes``
        transmission buckets, and buckets drain over one simulated
        communication channel in first-needed-first-sent order.  The
        reduction *math* is untouched — every inner package keeps its
        own compressor, error-feedback residuals and quorum carries
        keyed by layer name — so for deterministic compressors the
        reduced values are bit-identical to per-layer sequential mode;
        only the simulated timeline (and, for stochastic compressors,
        the shared-rng consumption order) differs.

        Emits ``grad_ready`` / ``reduce_enqueued`` / ``reduce_landed``
        overlap events in simulated-time order onto the active trace;
        ``delays`` (an :class:`~repro.core.overlap.OverlapDelays`)
        injects the compute/transfer intervals, defaulting to a
        size-proportional envelope.  ``measure_payload`` additionally
        serializes each inner package once through a fresh stateless
        compressor, grounding the bucket byte accounting (OVL002).

        Returns (per-worker reduced gradients,
        :class:`~repro.core.overlap.OverlapReport`).
        """
        from .overlap import (OverlapDelays, OverlapReport, assemble_buckets,
                              layer_ready_times, schedule_buckets)
        from .serialization import serialize_payload
        from repro.collectives.trace import emit_overlap, timeline_position

        if not per_worker_grads:
            raise ValueError("need at least one worker")
        names = list(per_worker_grads[0])
        for i, grads in enumerate(per_worker_grads):
            if list(grads) != names:
                raise ValueError(f"worker {i} gradient names differ")
        world = len(per_worker_grads)
        quorum = sorted(set(participants)) if participants is not None \
            else list(range(world))
        if any(not 0 <= p < world for p in quorum):
            raise ValueError("participant rank out of range")
        subset = len(quorum) < world

        if ready_order is None:
            ready_order = list(reversed(names))
        if sorted(ready_order) != sorted(names):
            raise ValueError("ready_order must be a permutation of the "
                             "gradient names")
        forward_pos = {name: i for i, name in enumerate(names)}
        layers = {
            name: LayerInfo(name, per_worker_grads[0][name].size,
                            tuple(per_worker_grads[0][name].shape))
            for name in names
        }
        # per-layer packages in emission order; the filter decides the
        # spec (filtered layers ride fp32 per-layer packages — bucket
        # fusion regroups them, replacing sequential mode's one fused
        # "filtered" package)
        fp32 = CompressionSpec("none")
        packages = [
            Package(name, (layers[name],),
                    fp32 if self.filter.excluded(layers[name])
                    else self.config.spec_for(name))
            for name in ready_order
        ]
        buckets = assemble_buckets(packages, forward_pos,
                                   self.config.fusion_bytes)
        if delays is None:
            delays = OverlapDelays.default_for(
                {name: layers[name].numel for name in names})
        ready = layer_ready_times(ready_order, delays)
        launch_order = schedule_buckets(
            buckets, ready, lambda b: delays.bucket_comm(b.wire_bytes))

        report = OverlapReport()
        if subset:
            report.quorum_world = len(quorum)
        report.buckets = list(buckets)
        report.compute_end = max(ready.values()) if ready else 0.0
        report.comm_total = sum(b.landed_t - b.launch_t for b in buckets)
        report.overlapped_time = max(
            [report.compute_end] + [b.landed_t for b in buckets])
        report.sequential_time = report.compute_end + report.comm_total
        report.dense_bytes = sum(info.numel * 4 for info in layers.values())
        outputs: list[dict[str, np.ndarray]] = [dict() for _ in range(world)]
        scale = 1.0 / (average_over or world) if average else 1.0

        # chronology: emit lifecycle events in simulated-time order;
        # each bucket's data path executes at its landing, bracketed by
        # exec_span for the certifier's in-flight attribution
        actions: list[tuple[float, int, int, str, object]] = []
        for seq, name in enumerate(ready_order):
            actions.append((ready[name], 0, seq, "ready", name))
        for seq, bucket in enumerate(buckets):
            actions.append((bucket.ready_t, 1, seq, "enqueue", bucket))
        for seq, bucket in enumerate(launch_order):
            actions.append((bucket.landed_t, 2, seq, "land", bucket))
        actions.sort(key=lambda a: (a[0], a[1], a[2]))

        for t, _, _, kind, payload in actions:
            if kind == "ready":
                emit_overlap("grad_ready", step, t, layer=str(payload))
                continue
            bucket = payload
            if kind == "enqueue":
                emit_overlap("reduce_enqueued", step, t, bucket=bucket.name,
                             first_needed=bucket.first_needed)
                continue
            exec_start = timeline_position()
            measured = 0
            for package in bucket.packages:
                buffers = [
                    _gather_package(per_worker_grads[w], package)
                    for w in range(world)
                ]
                if measure_payload:
                    probe = make_compressor(package.spec)
                    compressed = probe.compress(
                        buffers[0].copy(), np.random.default_rng(0),
                        key=package.name)
                    measured += len(serialize_payload(compressed))
                reduced, stats = self._reduce_package(package, buffers, rng,
                                                      quorum, subset)
                for w in range(world):
                    _scatter_package(outputs[w], reduced[w] * scale, package)
                report.packages += 1
                report.wire_bytes += stats.wire_bytes
                report.payload_bytes += package.wire_bytes()
                report.compress_calls += stats.compress_calls
                report.retries += stats.retries
                report.retransmit_bytes += stats.retransmit_bytes
                report.per_package.append((package.name, stats))
            if measure_payload:
                bucket.measured_bytes = measured
            bucket.exec_span = (exec_start, timeline_position())
            emit_overlap("reduce_landed", step, t, bucket=bucket.name,
                         first_needed=bucket.first_needed)
        return outputs, report


def group_for_transmission(packages: list[Package],
                           fusion_bytes: int) -> list[Package]:
    """Fuse consecutive same-spec compressed packages into one collective.

    CGX compresses *per layer* (each layer keeps its own buckets and
    spec) but groups the transmissions of consecutive small layers so a
    many-layer CNN does not pay one collective's latency per 100 KB
    tensor (Section 4, "Improved Scheduling": filtering and grouping
    remove extra kernel calls "without notable increase of communication
    costs").  Packages above the fusion threshold travel alone.

    Shared by the timed perf model (group-per-collective scheduling)
    and the overlapped engine mode (transmission buckets).
    """
    grouped: list[Package] = []
    pending: list[Package] = []
    pending_bytes = 0

    def flush() -> None:
        nonlocal pending, pending_bytes
        if not pending:
            return
        if len(pending) == 1:
            grouped.append(pending[0])
        else:
            fused = tuple(l for pkg in pending for l in pkg.layers)
            grouped.append(
                Package(f"group[{pending[0].name}..{pending[-1].name}]",
                        fused, pending[0].spec)
            )
        pending, pending_bytes = [], 0

    for package in packages:
        dense = package.numel * 4
        if (pending and (package.spec != pending[0].spec
                         or pending_bytes + dense > fusion_bytes)):
            flush()
        # PowerSGD factors are per-matrix; those packages never group
        if dense > fusion_bytes or package.spec.method == "powersgd":
            flush()
            grouped.append(package)
            continue
        pending.append(package)
        pending_bytes += dense
    flush()
    return grouped


def _gather_package(grads: dict[str, np.ndarray], package: Package) -> np.ndarray:
    """Concatenate a worker's gradients for one package into a flat buffer."""
    if len(package.layers) == 1:
        return grads[package.layers[0].name].ravel()
    return np.concatenate([grads[l.name].ravel() for l in package.layers])


def _scatter_package(out: dict[str, np.ndarray], flat: np.ndarray,
                     package: Package) -> None:
    """Split a reduced flat buffer back into named, shaped gradients.

    Multi-layer packages copy each chunk so no two outputs alias the
    shared flat buffer — an optimizer mutating one layer's gradient
    in place must not corrupt its neighbours.  A single-layer package's
    view is the sole owner of the (freshly allocated) buffer, so it is
    returned without the extra copy.
    """
    shared = len(package.layers) > 1
    offset = 0
    for layer in package.layers:
        chunk = flat[offset:offset + layer.numel]
        if shared:
            chunk = chunk.copy()
        out[layer.name] = chunk.reshape(layer.shape or (layer.numel,))
        offset += layer.numel

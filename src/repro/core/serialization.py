"""Serialization: configuration JSON and the compressed wire format.

Two independent concerns live here:

* JSON (de)serialization for configurations — lets experiment
  configurations live in version-controlled files and be passed to the
  CLI (``--config``), and lets benchmark results record the exact
  configuration that produced them.
* :func:`serialize_payload` — the byte-exact wire encoding of one
  :class:`~repro.compression.base.Compressed` tensor.  This is the
  ground truth that :meth:`CompressionSpec.wire_bytes` claims to
  predict; the contract checker (CON003) and the wire-accounting
  property test compare the two.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.compression import Compressed, CompressionSpec
from repro.compression.qsgd import pack_codes, unpack_codes

from .config import CGXConfig

__all__ = ["spec_to_dict", "spec_from_dict", "config_to_dict",
           "config_from_dict", "dump_config", "load_config",
           "serialize_payload", "measured_wire_bytes"]


def spec_to_dict(spec: CompressionSpec) -> dict:
    """CompressionSpec -> plain dict (only non-default fields)."""
    defaults = CompressionSpec()
    out = {}
    for field in dataclasses.fields(spec):
        value = getattr(spec, field.name)
        if value != getattr(defaults, field.name):
            out[field.name] = value
    out.setdefault("method", spec.method)
    return out


def spec_from_dict(data: dict) -> CompressionSpec:
    """Plain dict -> CompressionSpec, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(CompressionSpec)}
    unknown = set(data) - known
    if unknown:
        raise KeyError(f"unknown CompressionSpec fields: {sorted(unknown)}")
    return CompressionSpec(**data)


def config_to_dict(config: CGXConfig) -> dict:
    """CGXConfig -> JSON-safe dict."""
    return {
        "backend": config.backend,
        "scheme": config.scheme,
        "compression": spec_to_dict(config.compression),
        "filtered_keywords": list(config.filtered_keywords),
        "min_compress_numel": config.min_compress_numel,
        "per_layer": {name: spec_to_dict(spec)
                      for name, spec in config.per_layer.items()},
        "fuse_filtered": config.fuse_filtered,
        "fusion_bytes": config.fusion_bytes,
        "chunk_streams": config.chunk_streams,
        "cross_barrier": config.cross_barrier,
        "overlap": config.overlap,
    }


def config_from_dict(data: dict) -> CGXConfig:
    """JSON-safe dict -> CGXConfig, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(CGXConfig)}
    unknown = set(data) - known
    if unknown:
        raise KeyError(f"unknown CGXConfig fields: {sorted(unknown)}")
    payload = dict(data)
    if "compression" in payload:
        payload["compression"] = spec_from_dict(payload["compression"])
    if "per_layer" in payload:
        payload["per_layer"] = {
            name: spec_from_dict(spec)
            for name, spec in payload["per_layer"].items()
        }
    if "filtered_keywords" in payload:
        payload["filtered_keywords"] = tuple(payload["filtered_keywords"])
    return CGXConfig(**payload)


def dump_config(config: CGXConfig, path: str) -> None:
    """Write a config as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path: str) -> CGXConfig:
    """Read a config written by :func:`dump_config`."""
    with open(path) as handle:
        return config_from_dict(json.load(handle))


# -- compressed wire format --------------------------------------------------

def _codes_at_width(codes: np.ndarray, code_bits: int) -> bytes:
    """Encode quantization codes at a fixed bit-width.

    ``code_bits <= 8`` bit-packs (the CGX kernel layout); 16 and 32 use
    one fixed-width integer per code (the GRACE wire-dtype layout, where
    e.g. 4-bit codes still travel one byte each when
    ``wire_dtype_bits=8``).
    """
    if code_bits <= 8:
        return pack_codes(codes, code_bits).tobytes()
    if code_bits == 16:
        return codes.astype(np.uint16).tobytes()
    if code_bits == 32:
        return codes.astype(np.uint32).tobytes()
    raise ValueError(f"unsupported code width {code_bits}")


def serialize_payload(compressed: Compressed) -> bytes:
    """Byte-exact wire encoding of one compressed tensor's payload.

    Every method's layout matches what
    :meth:`~repro.compression.base.CompressionSpec.wire_bytes` accounts
    for: quantizers send codes at ``wire_dtype_bits or bits`` width plus
    one fp32 scale per bucket, sparsifiers send int32 index + fp32 value
    pairs, PowerSGD sends its fp32 factors.  Shape/numel metadata is
    negotiated once at plan time and never travels per step, so it is
    deliberately not part of the encoding.
    """
    spec = compressed.spec
    payload = compressed.payload
    method = spec.method
    if method == "none":
        return payload["values"].astype(np.float32).tobytes()
    if method == "fp16":
        return payload["values"].astype(np.float16).tobytes()
    if method in ("qsgd", "nuq"):
        code_bits = spec.wire_dtype_bits or spec.bits
        codes = unpack_codes(payload["codes"], spec.bits, compressed.numel)
        return (_codes_at_width(codes, code_bits)
                + payload["norms"].astype(np.float32).tobytes())
    if method in ("topk", "dgc"):
        return (payload["indices"].astype(np.int32).tobytes()
                + payload["values"].astype(np.float32).tobytes())
    if method == "onebit":
        return (payload["signs"].tobytes()
                + payload["pos_mean"].astype(np.float32).tobytes()
                + payload["neg_mean"].astype(np.float32).tobytes())
    if method == "powersgd":
        if "dense" in payload:
            return payload["dense"].astype(np.float32).tobytes()
        return (payload["p"].astype(np.float32).tobytes()
                + payload["q"].astype(np.float32).tobytes())
    if method == "fake":
        return payload["head"].astype(np.float32).tobytes()
    raise ValueError(f"no wire encoding for method {method!r}")


def measured_wire_bytes(compressed: Compressed) -> int:
    """Size of the actual serialized payload (vs. the spec's claim)."""
    return len(serialize_payload(compressed))

"""JSON (de)serialization for configurations.

Lets experiment configurations live in version-controlled files and be
passed to the CLI (``--config``), and lets benchmark results record the
exact configuration that produced them.
"""

from __future__ import annotations

import dataclasses
import json

from repro.compression import CompressionSpec

from .config import CGXConfig

__all__ = ["spec_to_dict", "spec_from_dict", "config_to_dict",
           "config_from_dict", "dump_config", "load_config"]


def spec_to_dict(spec: CompressionSpec) -> dict:
    """CompressionSpec -> plain dict (only non-default fields)."""
    defaults = CompressionSpec()
    out = {}
    for field in dataclasses.fields(spec):
        value = getattr(spec, field.name)
        if value != getattr(defaults, field.name):
            out[field.name] = value
    out.setdefault("method", spec.method)
    return out


def spec_from_dict(data: dict) -> CompressionSpec:
    """Plain dict -> CompressionSpec, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(CompressionSpec)}
    unknown = set(data) - known
    if unknown:
        raise KeyError(f"unknown CompressionSpec fields: {sorted(unknown)}")
    return CompressionSpec(**data)


def config_to_dict(config: CGXConfig) -> dict:
    """CGXConfig -> JSON-safe dict."""
    return {
        "backend": config.backend,
        "scheme": config.scheme,
        "compression": spec_to_dict(config.compression),
        "filtered_keywords": list(config.filtered_keywords),
        "min_compress_numel": config.min_compress_numel,
        "per_layer": {name: spec_to_dict(spec)
                      for name, spec in config.per_layer.items()},
        "fuse_filtered": config.fuse_filtered,
        "fusion_bytes": config.fusion_bytes,
        "chunk_streams": config.chunk_streams,
        "cross_barrier": config.cross_barrier,
        "overlap": config.overlap,
    }


def config_from_dict(data: dict) -> CGXConfig:
    """JSON-safe dict -> CGXConfig, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(CGXConfig)}
    unknown = set(data) - known
    if unknown:
        raise KeyError(f"unknown CGXConfig fields: {sorted(unknown)}")
    payload = dict(data)
    if "compression" in payload:
        payload["compression"] = spec_from_dict(payload["compression"])
    if "per_layer" in payload:
        payload["per_layer"] = {
            name: spec_from_dict(spec)
            for name, spec in payload["per_layer"].items()
        }
    if "filtered_keywords" in payload:
        payload["filtered_keywords"] = tuple(payload["filtered_keywords"])
    return CGXConfig(**payload)


def dump_config(config: CGXConfig, path: str) -> None:
    """Write a config as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path: str) -> CGXConfig:
    """Read a config written by :func:`dump_config`."""
    with open(path) as handle:
        return config_from_dict(json.load(handle))

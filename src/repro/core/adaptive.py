"""Adaptive layer-wise compression (paper Section 5, Algorithm 1).

The *adaptive compression problem*: choose per-layer bit-widths
``b_1..b_L`` minimizing the bandwidth objective ``sum_l b_l * size(L_l)``
subject to the total compression error not exceeding ``alpha * E4``,
where ``E4`` is the error of uniform 4-bit compression (known to recover
accuracy) and ``alpha`` is typically between 1.5 and 3.

Three solvers, as evaluated in Table 7:

* :func:`kmeans_assign` — Algorithm 1: cluster layers by
  ``(size, top-gradient norm)``, sort centroids by ``norm - size``, map
  bit-widths to clusters.  Best compression and speedup in the paper.
* :func:`bayes_assign` — surrogate-based optimization over a threshold
  family (stands in for the paper's Bayesian-optimization attempt,
  which they also found needed instance tuning).
* :func:`linear_assign` — sort by ``norm/size`` and interpolate
  bit-widths linearly.  Simplest, smallest gains.

The error model is calibrated to the QSGD operator in this repository:
max-scaled bucketed stochastic quantization at ``b`` bits has relative
error ``~ 1.12 / (2^(b-1) - 1)`` on dense gradients (measured; see
tests/test_adaptive.py which re-validates the constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

__all__ = [
    "LayerStat",
    "estimate_relative_error",
    "assignment_error",
    "uniform_error",
    "assignment_wire_fraction",
    "exact_relative_error_sq",
    "exact_assignment_error_sq",
    "exact_uniform_error_sq",
    "certify_assignment",
    "assignment_cost_bits",
    "brute_force_assign",
    "resolve_bucket",
    "kmeans_assign",
    "linear_assign",
    "bayes_assign",
    "AdaptiveController",
    "ASSIGNERS",
    "synthetic_stats_for_spec",
]

#: calibrated QSGD error constant: rel_err(bits) = _QSGD_C / (2^(bits-1) - 1)
_QSGD_C = 1.12
DEFAULT_BITWIDTHS = (2, 3, 4, 8)
#: bucket size paired with each bit-width when re-assigning
BUCKET_FOR_BITS = {2: 64, 3: 128, 4: 128, 5: 256, 6: 256, 8: 512}


@dataclass(frozen=True)
class LayerStat:
    """Per-layer statistics feeding the adaptive solvers.

    ``grad_norm`` is the L2 norm of the top-magnitude values of the
    accumulated gradient (Algorithm 1 input).
    """

    name: str
    numel: int
    grad_norm: float


def estimate_relative_error(bits: int) -> float:
    """Expected relative QSGD error at a bit-width."""
    levels = 2 ** (bits - 1) - 1
    if levels < 1:
        raise ValueError(f"bits={bits} has no quantization levels")
    return _QSGD_C / levels


def assignment_error(stats: list[LayerStat], bits: dict[str, int]) -> float:
    """Model-wide L2 compression error under a bit assignment."""
    total_sq = 0.0
    for stat in stats:
        err = stat.grad_norm * estimate_relative_error(bits[stat.name])
        total_sq += err * err
    return float(np.sqrt(total_sq))


def uniform_error(stats: list[LayerStat], bits: int = 4) -> float:
    """E_b: error when every layer is compressed to ``bits`` bits."""
    return assignment_error(stats, {s.name: bits for s in stats})


def assignment_wire_fraction(stats: list[LayerStat],
                             bits: dict[str, int],
                             reference_bits: int = 4) -> float:
    """Compressed size relative to the uniform static assignment."""
    assigned = sum(bits[s.name] * s.numel for s in stats)
    reference = sum(reference_bits * s.numel for s in stats)
    return assigned / reference


# -- exact arithmetic --------------------------------------------------------
#
# The float error model above is what the solvers *optimize*; certifying
# that a solution actually satisfies ``error <= alpha * E4`` with float
# spot-checks would inherit their rounding.  The hooks below evaluate the
# same calibrated model over exact rationals: every float input (norms,
# alpha, the calibrated constant) is lifted to its exact binary value via
# ``Fraction``, and the budget comparison is done on *squared* errors so
# no irrational square root ever enters.  ``repro.analysis.plans``
# (rule BWP001) certifies every solver through these hooks.

def exact_relative_error_sq(bits: int) -> Fraction:
    """Squared relative QSGD error at a bit-width, as an exact rational."""
    levels = 2 ** (bits - 1) - 1
    if levels < 1:
        raise ValueError(f"bits={bits} has no quantization levels")
    return (Fraction(_QSGD_C) / levels) ** 2


def exact_assignment_error_sq(stats: list[LayerStat],
                              bits: dict[str, int]) -> Fraction:
    """Exact squared model-wide error under a bit assignment."""
    total = Fraction(0)
    for stat in stats:
        total += Fraction(stat.grad_norm) ** 2 \
            * exact_relative_error_sq(bits[stat.name])
    return total


def exact_uniform_error_sq(stats: list[LayerStat], bits: int = 4) -> Fraction:
    """Exact squared ``E_b``: every layer compressed to ``bits`` bits."""
    return exact_assignment_error_sq(stats, {s.name: bits for s in stats})


def certify_assignment(stats: list[LayerStat], bits: dict[str, int],
                       alpha: float, reference_bits: int = 4) -> bool:
    """Exact proof that ``assignment_error <= alpha * E_ref`` holds.

    Compares squared errors as rationals, so the answer is not subject
    to float rounding: ``True`` means the budget constraint *provably*
    holds under the calibrated error model.
    """
    budget_sq = Fraction(alpha) ** 2 \
        * exact_uniform_error_sq(stats, reference_bits)
    return exact_assignment_error_sq(stats, bits) <= budget_sq


def assignment_cost_bits(stats: list[LayerStat], bits: dict[str, int]) -> int:
    """Exact transmitted payload bits under an assignment (the objective)."""
    return sum(bits[s.name] * s.numel for s in stats)


def brute_force_assign(
    stats: list[LayerStat],
    bitwidths: tuple[int, ...] = DEFAULT_BITWIDTHS,
    alpha: float = 2.0,
    max_layers: int = 16,
) -> dict[str, int]:
    """Exact optimum of the adaptive compression problem (small instances).

    Branch-and-bound over per-layer bit choices: minimize transmitted
    bits subject to the exact squared-error budget.  Feasibility is
    decided in exact rational arithmetic (same model as
    :func:`certify_assignment`), so the result is the true optimum of
    the calibrated problem — the reference the heuristics are measured
    against (rule BWP003).  Exponential in the worst case; refuses
    instances above ``max_layers``.
    """
    if not stats:
        return {}
    if len(stats) > max_layers:
        raise ValueError(
            f"brute force limited to {max_layers} layers, got {len(stats)}")
    ladder = sorted(set(bitwidths))
    budget_sq = Fraction(alpha) ** 2 * exact_uniform_error_sq(stats, 4)
    # large layers first: their cost dominates, so good bounds come early
    order = sorted(stats, key=lambda s: -s.numel)
    err_sq = {  # per layer, per width: exact squared error contribution
        s.name: [Fraction(s.grad_norm) ** 2 * exact_relative_error_sq(b)
                 for b in ladder]
        for s in order
    }
    # suffix lower bounds: cheapest possible remaining cost / lowest
    # possible remaining error, used to prune dominated branches
    n = len(order)
    min_cost_suffix = [0] * (n + 1)
    min_err_suffix = [Fraction(0)] * (n + 1)
    for i in range(n - 1, -1, -1):
        min_cost_suffix[i] = min_cost_suffix[i + 1] + ladder[0] * order[i].numel
        min_err_suffix[i] = min_err_suffix[i + 1] + err_sq[order[i].name][-1]

    best_cost = [assignment_cost_bits(stats, {s.name: ladder[-1]
                                              for s in stats}) + 1]
    best_choice: list[list[int]] = [[len(ladder) - 1] * n]
    choice = [0] * n

    def descend(i: int, cost: int, err: Fraction) -> None:
        if cost + min_cost_suffix[i] >= best_cost[0]:
            return
        if err + min_err_suffix[i] > budget_sq:
            return
        if i == n:
            best_cost[0] = cost
            best_choice[0] = choice.copy()
            return
        layer = order[i]
        for level, width in enumerate(ladder):
            choice[i] = level
            descend(i + 1, cost + width * layer.numel,
                    err + err_sq[layer.name][level])

    descend(0, 0, Fraction(0))
    return {layer.name: ladder[best_choice[0][i]]
            for i, layer in enumerate(order)}


def resolve_bucket(bits: int) -> int:
    """Bucket size paired with a bit-width, with a nearest-defined fallback.

    ``BUCKET_FOR_BITS`` only lists the widths the solvers emit today
    (2..6, 8); solver extensions can legally produce e.g. 7 bits.  An
    undefined width falls back to the nearest defined one (ties go to
    the wider width, matching its coarser bucket).  Widths below 2 have
    no quantization levels and are rejected outright.
    """
    if bits < 2:
        raise ValueError(
            f"bits={bits} has no quantization levels (need >= 2)")
    bucket = BUCKET_FOR_BITS.get(bits)
    if bucket is not None:
        return bucket
    nearest = min(BUCKET_FOR_BITS,
                  key=lambda known: (abs(known - bits), -known))
    return BUCKET_FOR_BITS[nearest]


def _enforce_constraint(stats: list[LayerStat], bits: dict[str, int],
                        alpha: float,
                        bitwidths: tuple[int, ...],
                        reference_bits: int = 4) -> dict[str, int]:
    """Raise bit-widths until the error budget is met, cheapest first.

    Each candidate bump is scored by squared-error reduction per added
    wire bit, so small noisy layers are promoted before paying the huge
    bandwidth cost of promoting an embedding.  The stopping test runs in
    exact rational arithmetic (:func:`exact_assignment_error_sq`), so a
    returned assignment is certifiably within the budget, never just
    within float rounding of it.
    """
    ladder = sorted(set(bitwidths))
    bits = dict(bits)
    budget_sq = Fraction(alpha) ** 2 \
        * exact_uniform_error_sq(stats, reference_bits)
    err_sq = exact_assignment_error_sq(stats, bits)
    for _ in range(len(stats) * len(ladder)):
        if err_sq <= budget_sq:
            break
        best, best_gain = None, 0.0
        for stat in stats:
            idx = ladder.index(bits[stat.name])
            if idx == len(ladder) - 1:
                continue
            err_now = stat.grad_norm * estimate_relative_error(ladder[idx])
            err_next = stat.grad_norm * estimate_relative_error(ladder[idx + 1])
            cost = (ladder[idx + 1] - ladder[idx]) * stat.numel
            gain = (err_now**2 - err_next**2) / max(1, cost)
            if gain > best_gain:
                best, best_gain = stat, gain
        if best is None:
            # float gains underflow to 0.0 for denormal norms; redo the
            # scoring in exact arithmetic before declaring infeasibility
            best_exact = Fraction(0)
            for stat in stats:
                idx = ladder.index(bits[stat.name])
                if idx == len(ladder) - 1:
                    continue
                drop = Fraction(stat.grad_norm) ** 2 * (
                    exact_relative_error_sq(ladder[idx])
                    - exact_relative_error_sq(ladder[idx + 1]))
                exact_gain = drop / ((ladder[idx + 1] - ladder[idx])
                                     * stat.numel)
                if exact_gain > best_exact:
                    best, best_exact = stat, exact_gain
        if best is None:
            break
        old = bits[best.name]
        bits[best.name] = ladder[ladder.index(old) + 1]
        err_sq += Fraction(best.grad_norm) ** 2 * (
            exact_relative_error_sq(bits[best.name])
            - exact_relative_error_sq(old))
    return bits


def _finalize(stats: list[LayerStat], bits: dict[str, int], alpha: float,
              bitwidths: tuple[int, ...],
              reference_bits: int = 4) -> dict[str, int]:
    """Enforce the error budget; never return worse-than-static size.

    Also guards the solver output structurally: any emitted width below
    2 bits has no quantization levels and cannot be realized by the
    quantizers, so it is rejected here rather than at encode time.
    """
    bad = sorted({b for b in bits.values() if b < 2})
    if bad:
        raise ValueError(
            f"assignment emits bit-width(s) {bad} below the 2-bit floor")
    bits = _enforce_constraint(stats, bits, alpha, bitwidths, reference_bits)
    if assignment_wire_fraction(stats, bits, reference_bits) > 1.0:
        return {s.name: reference_bits for s in stats}
    return bits


def _features(stats: list[LayerStat]) -> np.ndarray:
    """2-D representation of each layer: (log10 size, log10 top-grad norm).

    Log scale keeps the features comparable across the 5 orders of
    magnitude separating embeddings from projection matrices; the raw
    (unstandardized) scale is deliberate — layer *size* is the dominant
    structural signal and standardizing would let the dense blob of
    near-identical transformer matrices dictate the geometry.
    """
    size = np.log10([max(1, s.numel) for s in stats])
    norm = np.log10([max(1e-12, s.grad_norm) for s in stats])
    return np.column_stack([size, norm])


def _kmeans(points: np.ndarray, k: int, iterations: int = 60) -> np.ndarray:
    """Deterministic Lloyd's k-means; returns a label per point.

    Initialized on quantiles of the (norm - size) score so repeated runs
    agree; empty clusters re-seed on the farthest point.
    """
    n = len(points)
    k = min(k, n)
    score = points[:, 1] - points[:, 0]
    order = np.argsort(score)
    seeds = [order[int(round(q * (n - 1)))] for q in np.linspace(0, 1, k)]
    centroids = points[seeds].astype(np.float64).copy()
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = np.linalg.norm(points[:, None, :] - centroids[None], axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = points[farthest]
    return labels


def kmeans_assign(
    stats: list[LayerStat],
    bitwidths: tuple[int, ...] = DEFAULT_BITWIDTHS,
    alpha: float = 2.0,
) -> dict[str, int]:
    """Algorithm 1: k-means clustering of (size, norm) -> bit-widths.

    Clusters are sorted by ``norm(C) - size(C)``; the lowest-scoring
    cluster (large layers with small gradients — embeddings, giant FC
    layers) gets the lowest bit-width.  The ``alpha * E4`` constraint is
    enforced afterwards by raising bit-widths greedily.
    """
    if not stats:
        return {}
    ladder = sorted(set(bitwidths))
    points = _features(stats)
    labels = _kmeans(points, k=len(ladder))
    used = sorted(set(labels.tolist()))
    centroids = {c: points[labels == c].mean(axis=0) for c in used}
    # sort clusters: score = norm - size, ascending -> lowest bits first
    ranked = sorted(used, key=lambda c: centroids[c][1] - centroids[c][0])
    ladder_for_cluster = {}
    for i, cluster in enumerate(ranked):
        if len(ranked) == 1:
            ladder_for_cluster[cluster] = ladder[-1]
        else:
            idx = round(i * (len(ladder) - 1) / (len(ranked) - 1))
            ladder_for_cluster[cluster] = ladder[idx]
    bits = {stat.name: ladder_for_cluster[label]
            for stat, label in zip(stats, labels)}
    return _finalize(stats, bits, alpha, bitwidths)


def linear_assign(
    stats: list[LayerStat],
    bitwidths: tuple[int, ...] = DEFAULT_BITWIDTHS,
    alpha: float = 2.0,
) -> dict[str, int]:
    """Sort by gradient-magnitude/size ratio; interpolate bit-widths."""
    if not stats:
        return {}
    ladder = sorted(set(bitwidths))
    ratio = sorted(stats, key=lambda s: s.grad_norm / max(1, s.numel))
    bits = {}
    for rank, stat in enumerate(ratio):
        position = rank / max(1, len(ratio) - 1)
        bits[stat.name] = ladder[
            min(int(position * len(ladder)), len(ladder) - 1)
        ]
    return _finalize(stats, bits, alpha, bitwidths)


def bayes_assign(
    stats: list[LayerStat],
    bitwidths: tuple[int, ...] = DEFAULT_BITWIDTHS,
    alpha: float = 2.0,
    samples: int = 80,
    seed: int = 0,
) -> dict[str, int]:
    """Surrogate-based optimization over a two-threshold family.

    Candidate assignments map each layer's standardized score
    ``norm - size`` through two learned thresholds onto the bit ladder;
    the objective is transmitted bits with a hard error budget.  A
    random-search phase is followed by local refinement around the
    incumbent (the acquisition loop of a simplified Bayesian optimizer).
    """
    if not stats:
        return {}
    ladder = sorted(set(bitwidths))
    points = _features(stats)
    score = points[:, 1] - points[:, 0]
    rng = np.random.default_rng(seed)
    budget = alpha * uniform_error(stats, 4)

    def realize(t_low: float, t_high: float) -> dict[str, int]:
        lo, hi = min(t_low, t_high), max(t_low, t_high)
        bits = {}
        for stat, s in zip(stats, score):
            if s <= lo:
                level = 0
            elif s >= hi:
                level = len(ladder) - 1
            else:
                frac = (s - lo) / max(1e-12, hi - lo)
                level = min(int(frac * len(ladder)), len(ladder) - 1)
            bits[stat.name] = ladder[level]
        return bits

    def objective(bits: dict[str, int]) -> float:
        cost = sum(bits[s.name] * s.numel for s in stats)
        err = assignment_error(stats, bits)
        if err > budget:
            # budget underflows to 0.0 for denormal gradient norms; any
            # positive error is then infinitely over budget
            ratio = err / budget if budget > 0 else 1e18
            cost += 1e18 * ratio
        return cost

    lo0, hi0 = float(score.min()), float(score.max())
    best_params = (lo0, hi0)
    best_bits = realize(*best_params)
    best_cost = objective(best_bits)
    for trial in range(samples):
        if trial < samples // 2:
            candidate = tuple(rng.uniform(lo0 - 0.5, hi0 + 0.5, size=2))
        else:  # refine around incumbent
            candidate = tuple(np.asarray(best_params)
                              + rng.normal(scale=0.25, size=2))
        bits = realize(*candidate)
        cost = objective(bits)
        if cost < best_cost:
            best_params, best_bits, best_cost = candidate, bits, cost
    # the uniform static assignment is always feasible; never do worse
    uniform = {s.name: 4 for s in stats}
    if objective(uniform) < best_cost:
        best_bits = uniform
    return _finalize(stats, best_bits, alpha, bitwidths)


ASSIGNERS = {
    "kmeans": kmeans_assign,
    "linear": linear_assign,
    "bayes": bayes_assign,
}


class AdaptiveController:
    """Collects gradient statistics during training and retunes bit-widths.

    Attach to a training loop: call :meth:`observe` after every
    synchronized step with the averaged gradients; every ``period``
    steps the controller recomputes the assignment and writes per-layer
    specs into the session/config.
    """

    def __init__(self, config, method: str = "kmeans",
                 bitwidths: tuple[int, ...] = DEFAULT_BITWIDTHS,
                 alpha: float = 2.0, period: int = 20,
                 top_fraction: float = 0.01):
        if method not in ASSIGNERS:
            raise KeyError(f"unknown adaptive method {method!r}; "
                           f"choose from {sorted(ASSIGNERS)}")
        from .filters import LayerFilter, LayerInfo
        self._filter = LayerFilter(config.filtered_keywords,
                                   config.min_compress_numel)
        self._layer_info = LayerInfo
        self.config = config
        self.method = method
        self.bitwidths = bitwidths
        self.alpha = alpha
        self.period = period
        self.top_fraction = top_fraction
        self._accumulated: dict[str, np.ndarray] = {}
        self._steps = 0
        self.assignments: dict[str, int] = {}
        self.reassign_count = 0
        # elastic-membership hooks: fleet-relative error budget plus an
        # audit trail of every respec (certified by ELA004)
        self._alpha_scale = 1.0
        self.respec_history: list[dict] = []
        self._world = 0

    def observe(self, grads: dict[str, np.ndarray]) -> bool:
        """Feed one step's gradients; returns True if bits were retuned.

        Filtered layers (bias/norm, tiny tensors) are skipped — they are
        reduced in fp32 regardless, so they take no part in the
        assignment problem.
        """
        for name, grad in grads.items():
            if self._filter.excluded(self._layer_info(name, int(grad.size))):
                continue
            acc = self._accumulated.get(name)
            if acc is None:
                self._accumulated[name] = np.abs(grad).ravel().astype(np.float64)
            else:
                acc += np.abs(grad).ravel()
        self._steps += 1
        if self._steps % self.period:
            return False
        self.reassign()
        return True

    def _stats(self) -> list[LayerStat]:
        stats = []
        for name, acc in self._accumulated.items():
            k = max(1, int(acc.size * self.top_fraction))
            top = np.partition(acc, acc.size - k)[-k:]
            stats.append(LayerStat(name, acc.size, float(np.linalg.norm(top))))
        return stats

    @property
    def effective_alpha(self) -> float:
        """Error budget actually handed to the assigner this respec.

        Heterogeneous fleets scale the budget: a fleet faster than the
        reference GPU can afford a tighter (smaller-alpha) assignment
        without slowing the step; a slower fleet loosens it.
        """
        return self.alpha * self._alpha_scale

    def reassign(self, trigger: str = "period") -> dict[str, int]:
        """Recompute the assignment from accumulated statistics."""
        stats = self._stats()
        if not stats:
            return {}
        alpha = self.effective_alpha
        self.assignments = ASSIGNERS[self.method](
            stats, bitwidths=self.bitwidths, alpha=alpha
        )
        base = self.config.compression
        for name, bits in self.assignments.items():
            self.config.per_layer[name] = base.with_bits(bits,
                                                         resolve_bucket(bits))
        self.respec_history.append({
            "trigger": trigger,
            "world": self._world,
            "alpha": alpha,
            "stats": stats,
            "assignment": dict(self.assignments),
        })
        self._accumulated.clear()
        self.reassign_count += 1
        return dict(self.assignments)

    def on_composition_change(self, world: int,
                              alpha_scale: float = 1.0) -> dict[str, int]:
        """Respec bit-widths after the training world grew or shrank.

        ``alpha_scale`` rescales the error budget for the new fleet mix
        (see :func:`repro.faults.elastic.fleet_alpha_scale`).  Returns
        the fresh assignment, or ``{}`` when no statistics have been
        accumulated yet (nothing to retune from — the next periodic
        respec picks up the new scale).
        """
        self._world = world
        self._alpha_scale = float(alpha_scale)
        if not self._accumulated:
            return {}
        return self.reassign(trigger=f"composition:world={world}")


def synthetic_stats_for_spec(spec, exclude_kinds=("norm", "bias"),
                             top_fraction: float = 0.01) -> list[LayerStat]:
    """Layer statistics for a full-size ModelSpec, for perf experiments.

    Accuracy experiments collect real accumulated-gradient statistics;
    the performance benches need statistics for the *full-size* models,
    whose gradients we never materialize.  The generator reproduces the
    structure observed in our scaled training runs: the top-values norm
    grows with sqrt(top_fraction * numel), scaled by a per-kind
    sensitivity factor (embeddings' gradients are sparse and small per
    element; norm/bias layers are the most sensitive but are filtered
    out of the assignment problem anyway).
    """
    factors = {"embedding": 0.25, "linear": 1.0, "conv": 1.2,
               "norm": 2.0, "bias": 2.0}
    stats = []
    for tensor in spec.tensors:
        if tensor.kind in exclude_kinds:
            continue
        base = float(np.sqrt(max(1.0, top_fraction * tensor.numel)))
        stats.append(LayerStat(tensor.name, tensor.numel,
                               base * factors.get(tensor.kind, 1.0)))
    return stats

"""CGX configuration objects.

One :class:`CGXConfig` describes everything the engine needs: the
communication backend and reduction scheme, the default compression
spec, per-layer overrides, the layer filters that keep small
accuracy-critical tensors in full precision, and the scheduling knobs
(fusion, chunk streams, cross-barrier).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compression import CompressionSpec

__all__ = ["CGXConfig", "DEFAULT_FILTERED_KEYWORDS"]

#: substrings of tensor names reduced in full precision by default —
#: biases plus batch/layer norms, per Section 3 ("layers like batch/layer
#: normalization and bias layers are sensitive to gradient compression,
#: while being small").
DEFAULT_FILTERED_KEYWORDS = ("bias", "bn", "ln", "norm", "batchnorm")


@dataclass
class CGXConfig:
    """Engine configuration.

    Attributes:
        backend: point-to-point transport (``shm | nccl | mpi``).
        scheme: reduction algorithm (``sra | ring | tree | allgather | ps``).
        compression: default spec for non-filtered layers.  The paper's
            baseline is 4-bit QSGD, bucket 128 (Transformers) or 1024
            (CNNs).
        filtered_keywords: name substrings always reduced in fp32.
        min_compress_numel: tensors smaller than this are treated like
            filtered layers (compression kernels don't pay off).
        per_layer: name -> spec overrides (the adaptive algorithm and the
            public API write here).
        fuse_filtered: pack all filtered tensors into one fp32 package.
        fusion_bytes: fusion-buffer size for blob-mode engines (NCCL
            baseline and QNCCL); CGX itself reduces per layer.
        chunk_streams: parallel GPU streams for SRA chunks (+5% in the
            paper's Transformer-XL benchmark).
        cross_barrier: start reductions before the global barrier; minor
            effect on a single node, per the paper.
        overlap: start a package's reduction as soon as its gradients are
            emitted (all CGX/NCCL paths).  GRACE's hook processes the
            gradient after the backward pass completes (overlap=False).
    """

    backend: str = "shm"
    scheme: str = "sra"
    compression: CompressionSpec = field(
        default_factory=lambda: CompressionSpec("qsgd", bits=4, bucket_size=128)
    )
    filtered_keywords: tuple[str, ...] = DEFAULT_FILTERED_KEYWORDS
    min_compress_numel: int = 2048
    per_layer: dict[str, CompressionSpec] = field(default_factory=dict)
    fuse_filtered: bool = True
    fusion_bytes: int = 25 * 1024 * 1024
    chunk_streams: int = 4
    cross_barrier: bool = False
    overlap: bool = True

    def spec_for(self, layer_name: str) -> CompressionSpec:
        """Effective compression spec for a tensor name."""
        override = self.per_layer.get(layer_name)
        if override is not None:
            return override
        return self.compression

    def with_compression(self, spec: CompressionSpec) -> "CGXConfig":
        return replace(self, compression=spec, per_layer=dict(self.per_layer))

    @staticmethod
    def baseline_nccl() -> "CGXConfig":
        """The uncompressed Horovod-NCCL / DDP-NCCL baseline: fused fp32
        buckets over ring allreduce, no filtering."""
        return CGXConfig(
            backend="nccl",
            scheme="ring",
            compression=CompressionSpec("none"),
            filtered_keywords=(),
            fuse_filtered=False,
            chunk_streams=1,
        )

    @staticmethod
    def cgx_default(bucket_size: int = 128) -> "CGXConfig":
        """CGX as evaluated: 4-bit QSGD, SHM backend, SRA reduction."""
        return CGXConfig(
            compression=CompressionSpec("qsgd", bits=4, bucket_size=bucket_size)
        )

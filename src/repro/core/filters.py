"""Layer filters: which tensors bypass compression.

CGX splits model gradients into "logical subsets ... handled
differently: some accuracy-critical subsets are communicated in full
precision, while other subsets are compressed" (Section 3).  The filter
works on tensor *names* (substring match, as in the paper's
``exclude_layer("bn")`` API) plus a minimum-size rule, since compressing
tiny tensors costs a kernel launch without saving meaningful bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerInfo", "LayerFilter"]


@dataclass(frozen=True)
class LayerInfo:
    """What the engine knows about one gradient tensor."""

    name: str
    numel: int
    shape: tuple[int, ...] = ()
    kind: str = ""


class LayerFilter:
    """Decides, per tensor name, whether compression applies."""

    def __init__(self, keywords: tuple[str, ...] = (),
                 min_compress_numel: int = 0):
        self.keywords = tuple(k.lower() for k in keywords)
        self.min_compress_numel = min_compress_numel

    def excluded(self, layer: LayerInfo) -> bool:
        """True if the tensor must be reduced in full precision."""
        lowered = layer.name.lower()
        if any(keyword in lowered for keyword in self.keywords):
            return True
        return layer.numel < self.min_compress_numel

    def partition(
        self, layers: list[LayerInfo]
    ) -> tuple[list[LayerInfo], list[LayerInfo]]:
        """Split into (compressed, full-precision) preserving order."""
        compressed, filtered = [], []
        for layer in layers:
            (filtered if self.excluded(layer) else compressed).append(layer)
        return compressed, filtered

"""CGX core: configuration, engine, DDP wrapper, adaptive compression."""

from .adaptive import (
    ASSIGNERS,
    AdaptiveController,
    LayerStat,
    assignment_cost_bits,
    assignment_error,
    assignment_wire_fraction,
    bayes_assign,
    brute_force_assign,
    certify_assignment,
    estimate_relative_error,
    exact_assignment_error_sq,
    exact_relative_error_sq,
    exact_uniform_error_sq,
    kmeans_assign,
    linear_assign,
    resolve_bucket,
    synthetic_stats_for_spec,
    uniform_error,
)
from .api import CGXSession
from .config import CGXConfig, DEFAULT_FILTERED_KEYWORDS
from .ddp import CGXDistributedDataParallel
from .engine import (CommunicationEngine, Package, ReductionReport,
                     group_for_transmission)
from .filters import LayerFilter, LayerInfo
from .frontends import EagerFrontend, GraphFrontend
from .overlap import (OverlapBucket, OverlapDelays, OverlapReport,
                      assemble_buckets, layer_ready_times, schedule_buckets)
from .qnccl import QNCCL_KERNEL_OVERHEAD_FACTOR, QNCCL_PLAN_MODE, qnccl_config
from .serialization import (
    config_from_dict,
    config_to_dict,
    dump_config,
    load_config,
    measured_wire_bytes,
    serialize_payload,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "CGXConfig", "DEFAULT_FILTERED_KEYWORDS",
    "CGXSession",
    "CGXDistributedDataParallel",
    "CommunicationEngine", "Package", "ReductionReport",
    "group_for_transmission",
    "OverlapBucket", "OverlapDelays", "OverlapReport",
    "assemble_buckets", "layer_ready_times", "schedule_buckets",
    "LayerFilter", "LayerInfo",
    "EagerFrontend", "GraphFrontend",
    "qnccl_config", "QNCCL_KERNEL_OVERHEAD_FACTOR", "QNCCL_PLAN_MODE",
    "AdaptiveController", "LayerStat", "ASSIGNERS",
    "kmeans_assign", "linear_assign", "bayes_assign",
    "assignment_error", "assignment_wire_fraction",
    "estimate_relative_error", "uniform_error",
    "exact_relative_error_sq", "exact_assignment_error_sq",
    "exact_uniform_error_sq", "certify_assignment",
    "assignment_cost_bits", "brute_force_assign", "resolve_bucket",
    "synthetic_stats_for_spec",
    "config_to_dict", "config_from_dict", "dump_config", "load_config",
    "spec_to_dict", "spec_from_dict",
    "serialize_payload", "measured_wire_bytes",
]

"""Full-size model inventories used by the performance simulator."""

from .specs import ModelSpec, SPEC_BUILDERS, TensorSpec, available_specs, build_spec

__all__ = ["ModelSpec", "TensorSpec", "build_spec", "available_specs", "SPEC_BUILDERS"]

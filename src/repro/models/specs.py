"""Full-size layer inventories of the paper's evaluation models.

The performance experiments (Figures 1, 3, 10, 11; Tables 4-8) depend
only on *layer sizes and order*, not on actual weights: what matters is
how many bytes each layer's gradient occupies, when the backward pass
produces it, and how much compute the layer contributes.  This module
captures exactly that, as :class:`ModelSpec` objects whose parameter
counts match the real architectures:

* ResNet50 (~25.6 M), VGG16 (~138 M), ViT-Base/16 (~86 M),
  Transformer-XL base with a tied WikiText-103 embedding (~188 M),
  BERT-Base (~109 M), GPT-2 small (~124 M).

Tensors are listed in *forward* order; the backward pass emits gradients
in reverse, which is why the paper's Appendix E observes that huge input
embeddings are synchronized last.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TensorSpec", "ModelSpec", "build_spec", "SPEC_BUILDERS", "available_specs"]

FP32_BYTES = 4


@dataclass(frozen=True)
class TensorSpec:
    """One parameter tensor of a model.

    Attributes:
        name: dotted tensor name (PyTorch-style), used by layer filters.
        kind: one of ``conv | linear | embedding | norm | bias``.
        numel: number of elements.
        flops: per-item forward FLOPs attributed to this tensor's module
            (an "item" is one image for CNNs/ViT, one token for LMs).
        position: forward-order index of the owning module.
    """

    name: str
    kind: str
    numel: int
    flops: float
    position: int
    shape: tuple[int, ...] = ()

    @property
    def bytes_fp32(self) -> int:
        return self.numel * FP32_BYTES

    @property
    def matrix_shape(self) -> tuple[int, int]:
        """(rows, cols) view used by decomposition compressors."""
        if len(self.shape) < 2:
            return (1, self.numel)
        rows = self.shape[0]
        return (rows, self.numel // rows)


@dataclass
class ModelSpec:
    """Layer inventory plus workload metadata for one evaluation model."""

    name: str
    tensors: list[TensorSpec] = field(default_factory=list)
    item_unit: str = "imgs"          # what throughput counts: imgs or tokens
    items_per_sample: int = 1        # tokens per sequence for LM workloads
    default_batch_per_gpu: int = 32  # samples (sequences for LMs) per GPU
    model_class: str = "cnn"         # cnn | transformer (compute calibration)
    #: training-efficiency multiplier vs the class anchor.  The anchors
    #: (ResNet50 AMP, Transformer-XL fp16) run at high utilization; BERT-QA
    #: follows the paper's recipe of fp32 at batch 3/GPU (Appendix C),
    #: which runs the GPU far below its mixed-precision envelope.  The
    #: value is calibrated so a single V100 reaches ~3.6k tokens/s, the
    #: per-GPU rate implied by Table 4's AWS p3.8xlarge row.
    rate_scale: float = 1.0
    #: compute slowdown when forced to full fp32 (PowerSGD cannot run on
    #: fp16 gradients — Section 2.4).  Models whose recipes use AMP lose
    #: their tensor-core speedup; BERT's recipe is already fp32 (1.0).
    fp32_compute_factor: float = 1.0

    @property
    def num_parameters(self) -> int:
        return sum(t.numel for t in self.tensors)

    @property
    def gradient_bytes(self) -> int:
        return self.num_parameters * FP32_BYTES

    @property
    def flops_per_item(self) -> float:
        """Forward FLOPs per item (image or token)."""
        return sum(t.flops for t in self.tensors)

    def backward_order(self) -> list[TensorSpec]:
        """Tensors in the order their gradients become available."""
        return sorted(self.tensors, key=lambda t: -t.position)

    def layer_infos(self) -> list:
        """The engine's view of this model: one ``LayerInfo`` per tensor.

        Bridges the full-size inventories to everything that consumes
        :class:`~repro.core.filters.LayerInfo` — engine planning, the
        adaptive controller's filter, and the shape/dtype pipeline
        interpreter (``repro.analysis.shapes``), which symbolically
        pushes these layers through plan → encode → serialize → chunk
        without materializing any gradient.
        """
        from repro.core.filters import LayerInfo

        return [
            LayerInfo(t.name, t.numel, t.shape or (t.numel,), t.kind)
            for t in self.tensors
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelSpec({self.name}, params={self.num_parameters / 1e6:.1f}M, "
            f"tensors={len(self.tensors)})"
        )


class _SpecBuilder:
    """Accumulates tensors with automatic position numbering."""

    def __init__(self) -> None:
        self.tensors: list[TensorSpec] = []
        self._position = 0

    def add(self, name: str, kind: str, numel: int, flops: float = 0.0,
            shape: tuple[int, ...] = ()) -> None:
        self.tensors.append(
            TensorSpec(name, kind, int(numel), flops, self._position, shape)
        )
        self._position += 1

    def linear(self, name: str, fan_in: int, fan_out: int, tokens: float,
               bias: bool = True) -> None:
        flops = 2.0 * fan_in * fan_out * tokens
        self.add(f"{name}.weight", "linear", fan_in * fan_out, flops,
                 shape=(fan_out, fan_in))
        if bias:
            self.add(f"{name}.bias", "bias", fan_out, shape=(fan_out,))

    def conv(self, name: str, c_in: int, c_out: int, k: int, out_hw: int,
             bias: bool = False) -> None:
        numel = c_in * c_out * k * k
        flops = 2.0 * numel * out_hw * out_hw
        self.add(f"{name}.weight", "conv", numel, flops,
                 shape=(c_out, c_in, k, k))
        if bias:
            self.add(f"{name}.bias", "bias", c_out, shape=(c_out,))

    def norm(self, name: str, dim: int) -> None:
        self.add(f"{name}.weight", "norm", dim)
        self.add(f"{name}.bias", "bias", dim)


def _resnet50() -> ModelSpec:
    """ResNet50 on 224x224 ImageNet: 4 stages of bottleneck blocks."""
    b = _SpecBuilder()
    b.conv("conv1", 3, 64, 7, 112)
    b.norm("bn1", 64)
    stages = [  # (blocks, width, out_hw)
        (3, 64, 56),
        (4, 128, 28),
        (6, 256, 14),
        (3, 512, 7),
    ]
    c_in = 64
    for stage_idx, (blocks, width, out_hw) in enumerate(stages, start=1):
        expanded = width * 4
        for block in range(blocks):
            prefix = f"layer{stage_idx}.{block}"
            b.conv(f"{prefix}.conv1", c_in, width, 1, out_hw)
            b.norm(f"{prefix}.bn1", width)
            b.conv(f"{prefix}.conv2", width, width, 3, out_hw)
            b.norm(f"{prefix}.bn2", width)
            b.conv(f"{prefix}.conv3", width, expanded, 1, out_hw)
            b.norm(f"{prefix}.bn3", expanded)
            if block == 0:
                b.conv(f"{prefix}.downsample.0", c_in, expanded, 1, out_hw)
                b.norm(f"{prefix}.downsample.1", expanded)
            c_in = expanded
    b.linear("fc", 2048, 1000, tokens=1.0)
    return ModelSpec("resnet50", b.tensors, item_unit="imgs",
                     default_batch_per_gpu=32, model_class="cnn",
                     fp32_compute_factor=1.25)


def _vgg16() -> ModelSpec:
    """VGG16 on 224x224 ImageNet: plain conv stack + 3 FC layers."""
    b = _SpecBuilder()
    cfg = [  # (name, c_in, c_out, out_hw)
        ("features.0", 3, 64, 224), ("features.2", 64, 64, 224),
        ("features.5", 64, 128, 112), ("features.7", 128, 128, 112),
        ("features.10", 128, 256, 56), ("features.12", 256, 256, 56),
        ("features.14", 256, 256, 56),
        ("features.17", 256, 512, 28), ("features.19", 512, 512, 28),
        ("features.21", 512, 512, 28),
        ("features.24", 512, 512, 14), ("features.26", 512, 512, 14),
        ("features.28", 512, 512, 14),
    ]
    for name, c_in, c_out, out_hw in cfg:
        b.conv(name, c_in, c_out, 3, out_hw, bias=True)
    b.linear("classifier.0", 512 * 7 * 7, 4096, tokens=1.0)
    b.linear("classifier.3", 4096, 4096, tokens=1.0)
    b.linear("classifier.6", 4096, 1000, tokens=1.0)
    return ModelSpec("vgg16", b.tensors, item_unit="imgs",
                     default_batch_per_gpu=32, model_class="cnn",
                     fp32_compute_factor=1.25)


def _transformer_body(b: _SpecBuilder, depth: int, dim: int, ffn: int,
                      tokens: float, prefix: str = "blocks",
                      fused_qkv: bool = True) -> None:
    """Append ``depth`` standard transformer encoder/decoder blocks."""
    attn_flops_extra = 2.0 * 2.0 * dim * tokens  # QK^T and attn*V per token
    for layer in range(depth):
        p = f"{prefix}.{layer}"
        b.norm(f"{p}.ln1", dim)
        if fused_qkv:
            b.linear(f"{p}.attn.qkv", dim, 3 * dim, tokens)
        else:
            for proj in ("query", "key", "value"):
                b.linear(f"{p}.attn.{proj}", dim, dim, tokens)
        b.linear(f"{p}.attn.proj", dim, dim, tokens)
        # account attention score flops on the proj module (approximation)
        b.tensors[-2] = TensorSpec(
            b.tensors[-2].name, b.tensors[-2].kind, b.tensors[-2].numel,
            b.tensors[-2].flops + attn_flops_extra, b.tensors[-2].position,
        )
        b.norm(f"{p}.ln2", dim)
        b.linear(f"{p}.mlp.fc1", dim, ffn, tokens)
        b.linear(f"{p}.mlp.fc2", ffn, dim, tokens)


def _vit_base() -> ModelSpec:
    """ViT-Base/16 on 224x224 ImageNet (197 tokens per image)."""
    b = _SpecBuilder()
    tokens = 197.0
    b.conv("patch_embed.proj", 3, 768, 16, 14, bias=True)
    b.add("cls_token", "embedding", 768)
    b.add("pos_embed", "embedding", 197 * 768)
    _transformer_body(b, depth=12, dim=768, ffn=3072, tokens=tokens)
    b.norm("norm", 768)
    b.linear("head", 768, 1000, tokens=1.0)
    return ModelSpec("vit", b.tensors, item_unit="imgs",
                     default_batch_per_gpu=72, model_class="transformer",
                     fp32_compute_factor=1.8)


def _transformer_xl() -> ModelSpec:
    """Transformer-XL base on WikiText-103: 16 layers, d=512, tied embedding.

    The WikiText-103 vocabulary (267735 tokens) makes the embedding a
    single ~137 M-parameter tensor at the *input* of the model — the
    layer the paper's Appendix E identifies as the scaling limiter.
    """
    b = _SpecBuilder()
    vocab, dim, seq = 267_735, 512, 192
    b.add("word_emb.weight", "embedding", vocab * dim, flops=2.0 * dim,
          shape=(vocab, dim))
    _transformer_body(b, depth=16, dim=dim, ffn=2048, tokens=1.0,
                      prefix="layers", fused_qkv=True)
    b.norm("ln_f", dim)
    # tied adaptive softmax: projection clusters, small relative to embedding
    b.add("crit.cluster_weight", "linear", 4 * dim, flops=2.0 * vocab * dim)
    spec = ModelSpec("transformer_xl", b.tensors, item_unit="tokens",
                     items_per_sample=seq, default_batch_per_gpu=32,
                     model_class="transformer", fp32_compute_factor=1.9)
    return spec


def _bert_base() -> ModelSpec:
    """BERT-Base for SQuAD QA: 12 layers, d=768, 384-token sequences."""
    b = _SpecBuilder()
    dim, seq = 768, 384
    b.add("embeddings.word_embeddings.weight", "embedding", 30_522 * dim,
          flops=2.0 * dim, shape=(30_522, dim))
    b.add("embeddings.position_embeddings.weight", "embedding", 512 * dim)
    b.add("embeddings.token_type_embeddings.weight", "embedding", 2 * dim)
    b.norm("embeddings.LayerNorm", dim)
    _transformer_body(b, depth=12, dim=dim, ffn=3072, tokens=1.0,
                      prefix="encoder.layer", fused_qkv=False)
    b.linear("qa_outputs", dim, 2, tokens=1.0)
    return ModelSpec("bert", b.tensors, item_unit="tokens",
                     items_per_sample=seq, default_batch_per_gpu=3,
                     model_class="transformer", rate_scale=0.045)


def _gpt2() -> ModelSpec:
    """GPT-2 small on WikiText-2: 12 layers, d=768, 1024-token context."""
    b = _SpecBuilder()
    dim, seq = 768, 1024
    b.add("wte.weight", "embedding", 50_257 * dim, flops=2.0 * dim,
          shape=(50_257, dim))
    b.add("wpe.weight", "embedding", 1024 * dim)
    _transformer_body(b, depth=12, dim=dim, ffn=3072, tokens=1.0, prefix="h")
    b.norm("ln_f", dim)
    return ModelSpec("gpt2", b.tensors, item_unit="tokens",
                     items_per_sample=seq, default_batch_per_gpu=3,
                     model_class="transformer", rate_scale=0.6,
                     fp32_compute_factor=1.9)


SPEC_BUILDERS = {
    "resnet50": _resnet50,
    "vgg16": _vgg16,
    "vit": _vit_base,
    "transformer_xl": _transformer_xl,
    "bert": _bert_base,
    "gpt2": _gpt2,
}


def build_spec(name: str) -> ModelSpec:
    """Build the full-size :class:`ModelSpec` for a paper model."""
    if name not in SPEC_BUILDERS:
        raise KeyError(
            f"unknown model spec {name!r}; choose from {sorted(SPEC_BUILDERS)}"
        )
    return SPEC_BUILDERS[name]()


def available_specs() -> list[str]:
    return sorted(SPEC_BUILDERS)

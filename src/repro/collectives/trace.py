"""Schedule-tracing hooks for the collectives.

The collectives in this package execute the *data path* of each
reduction scheme in-process, so there is no real transport whose
send/recv calls could be intercepted.  Instead each scheme is
instrumented at the points where payloads logically move between ranks:
it emits one ``send`` event at the encode/transmit site and one ``recv``
event at the decode/accumulate site, per logical point-to-point
message (broadcasts emit one event pair per receiving rank, matching
the ``ReduceStats.wire_bytes`` accounting).

The hooks are no-ops unless a :class:`ScheduleTrace` has been installed
with :func:`capture`, so the data path pays one ``None`` check per
transfer when tracing is off.  The static checks over a captured trace
live in :mod:`repro.analysis.schedule`.

Nested collectives (hierarchical composes per-node SRA calls whose
internal rank ids are 0..k-1) translate their local ranks to global
ones by wrapping the inner call in :func:`rank_scope`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "TraceEvent",
    "ScheduleTrace",
    "capture",
    "rank_scope",
    "emit_send",
    "emit_recv",
    "tracing_active",
]


@dataclass(frozen=True)
class TraceEvent:
    """One logical point-to-point message endpoint.

    ``kind`` is ``"send"`` (emitted where the payload is encoded) or
    ``"recv"`` (emitted where it is decoded).  A send and its matching
    recv share ``(src, dst, step, nbytes, tag)``.
    """

    kind: str
    step: int
    src: int
    dst: int
    nbytes: int
    tag: str

    def match_key(self) -> tuple:
        return (self.src, self.dst, self.step, self.nbytes, self.tag)


class ScheduleTrace:
    """An append-only log of :class:`TraceEvent` in emission order."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def sends(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "send"]

    @property
    def recvs(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "recv"]

    def send_bytes(self) -> int:
        """Total payload bytes across all send events."""
        return sum(e.nbytes for e in self.sends)

    def __len__(self) -> int:
        return len(self.events)


_active: ScheduleTrace | None = None
_rank_maps: list[Sequence[int]] = []


def tracing_active() -> bool:
    return _active is not None


def _translate(rank: int) -> int:
    """Map a collective-local rank through the nested scopes."""
    for mapping in reversed(_rank_maps):
        rank = mapping[rank]
    return rank


def emit_send(src: int, dst: int, nbytes: int, step: int,
              tag: str = "") -> None:
    """Record that ``src`` transmits ``nbytes`` to ``dst`` at ``step``."""
    if _active is None:
        return
    _active.record(TraceEvent("send", step, _translate(src), _translate(dst),
                              int(nbytes), tag))


def emit_recv(dst: int, src: int, nbytes: int, step: int,
              tag: str = "") -> None:
    """Record that ``dst`` consumes the payload ``src`` sent at ``step``."""
    if _active is None:
        return
    _active.record(TraceEvent("recv", step, _translate(src), _translate(dst),
                              int(nbytes), tag))


@contextmanager
def capture() -> Iterator[ScheduleTrace]:
    """Install a fresh trace; events emitted inside the block land in it."""
    global _active
    previous = _active
    trace = ScheduleTrace()
    _active = trace
    try:
        yield trace
    finally:
        _active = previous


@contextmanager
def rank_scope(mapping: Sequence[int]) -> Iterator[None]:
    """Translate local ranks 0..k-1 of a nested collective to global ids.

    ``mapping[i]`` is the global rank of the nested call's rank ``i``.
    Scopes nest: the innermost mapping applies first.  No-op (beyond a
    list push) when tracing is inactive.
    """
    _rank_maps.append(mapping)
    try:
        yield
    finally:
        _rank_maps.pop()

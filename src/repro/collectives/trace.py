"""Schedule-tracing hooks for the collectives.

The collectives in this package execute the *data path* of each
reduction scheme in-process, so there is no real transport whose
send/recv calls could be intercepted.  Instead each scheme is
instrumented at the points where payloads logically move between ranks:
it emits one ``send`` event at the encode/transmit site and one ``recv``
event at the decode/accumulate site, per logical point-to-point
message (broadcasts emit one event pair per receiving rank, matching
the ``ReduceStats.wire_bytes`` accounting).

The hooks are no-ops unless a :class:`ScheduleTrace` has been installed
with :func:`capture`, so the data path pays one ``None`` check per
transfer when tracing is off.  The static checks over a captured trace
live in :mod:`repro.analysis.schedule`.

Nested collectives (hierarchical composes per-node SRA calls whose
internal rank ids are 0..k-1) translate their local ranks to global
ones by wrapping the inner call in :func:`rank_scope`.

Besides message endpoints the trace records **buffer accesses**
(:class:`BufferAccess`): reads, writes and in-place updates on
rank-local numpy views, plus uses of keyed compressor state (error-
feedback residual dicts, PowerSGD warm-start memory, partial-allreduce
carries).  Memory accesses carry the absolute byte span of the array so
aliasing is detected from addresses, not names; the trace keeps a
reference to every recorded array so spans stay valid for the capture's
lifetime.  The happens-before race detector over these records lives in
:mod:`repro.analysis.races`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

import numpy as np

try:  # numpy >= 2.0 moved byte_bounds out of the top-level namespace
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover - numpy < 2.0
    from numpy import byte_bounds  # type: ignore[attr-defined, no-redef]

__all__ = [
    "TraceEvent",
    "BufferAccess",
    "OverlapEvent",
    "ScheduleTrace",
    "capture",
    "rank_scope",
    "phase_scope",
    "emit_send",
    "emit_recv",
    "emit_overlap",
    "translate_rank",
    "emit_buffer_read",
    "emit_buffer_write",
    "emit_buffer_update",
    "emit_state_use",
    "declare_buffer",
    "tracing_active",
    "timeline_position",
]


@dataclass(frozen=True)
class TraceEvent:
    """One logical point-to-point message endpoint.

    ``kind`` is ``"send"`` (emitted where the payload is encoded) or
    ``"recv"`` (emitted where it is decoded).  A send and its matching
    recv share ``(src, dst, step, nbytes, tag)``.

    ``blocking`` records the synchronization semantics the liveness
    certifier (:mod:`repro.analysis.liveness`) assumes: sends are eager
    (buffered, never block) while recvs block until a matching payload
    is available — the execution model of both the in-process data path
    and the rendezvous-free transports CGX targets.
    """

    kind: str
    step: int
    src: int
    dst: int
    nbytes: int
    tag: str
    blocking: bool = False

    def match_key(self) -> tuple:
        return (self.src, self.dst, self.step, self.nbytes, self.tag)


@dataclass(frozen=True)
class BufferAccess:
    """One access to rank-local memory or keyed compressor state.

    ``kind`` is ``"read"``, ``"write"`` (overwrite) or ``"update"``
    (in-place read-modify-write, e.g. ``+=`` accumulation).  ``space``
    selects the aliasing model: ``"mem"`` accesses alias when their
    absolute byte spans ``[start, end)`` overlap; ``"state"`` accesses
    (residual dicts, warm-start memory) alias when their ``buffer``
    labels are equal — dict entries have no stable address.
    """

    kind: str
    rank: int
    space: str     # "mem" | "state"
    buffer: str    # label: the emitting tag (mem) or the state key (state)
    start: int     # absolute byte span for mem accesses; 0 for state
    end: int
    tag: str

    @property
    def is_write(self) -> bool:
        return self.kind in ("write", "update")

    def aliases(self, other: "BufferAccess") -> bool:
        """Whether the two accesses can touch the same storage."""
        if self.space != other.space:
            return False
        if self.space == "state":
            return self.buffer == other.buffer
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class OverlapEvent:
    """One lifecycle event of a gradient in the overlapped engine mode.

    ``kind`` is one of ``grad_ready`` (a layer's backward finished and
    its gradient was emitted), ``reduce_enqueued`` (a fused bucket
    sealed — its last member gradient arrived), ``reduce_landed`` (the
    bucket's reduction completed and its outputs are installed) and
    ``grad_consumed`` (a consumer past the completion barrier read the
    reduced gradient).  ``grad_ready``/``grad_consumed`` carry a layer
    name; ``reduce_enqueued``/``reduce_landed`` carry a bucket name.

    ``t`` is the event's simulated time on the overlapped timeline and
    ``pos`` the length of the trace ``timeline`` at emission, so the
    overlap certifier can order these events against the send/recv and
    buffer-access records the bucket's data path produced.
    """

    kind: str
    step: int
    t: float
    layer: str = ""
    bucket: str = ""
    first_needed: int = -1
    pos: int = 0


class ScheduleTrace:
    """An append-only log of events and accesses in emission order.

    ``events`` holds only the send/recv endpoints (the schedule
    verifier's input, unchanged); ``timeline`` interleaves them with
    :class:`BufferAccess` records in true emission order, which is what
    the happens-before analysis consumes.  ``overlap_events`` holds the
    overlapped engine mode's gradient-lifecycle records (kept out of
    ``timeline``: they are scheduling metadata, not rank operations).
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.accesses: list[BufferAccess] = []
        self.overlap_events: list[OverlapEvent] = []
        self.timeline: list[Union[TraceEvent, BufferAccess]] = []
        #: (rank, name, start, end) of each declared rank-local buffer
        self.declared: list[tuple[int, str, int, int]] = []
        #: (label, first event index, one-past-last event index) for each
        #: completed :func:`phase_scope` block, in completion order.
        #: Phases model the global barrier between sequential collective
        #: calls: the liveness certifier analyzes each span separately so
        #: tag reuse across calls cannot alias messages from different
        #: phases.
        self.phase_spans: list[tuple[str, int, int]] = []
        # recorded arrays are pinned so freed storage cannot be reused
        # by a later allocation at the same address mid-capture
        self._keepalive: list = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.timeline.append(event)

    def record_access(self, access: BufferAccess, array=None) -> None:
        self.accesses.append(access)
        self.timeline.append(access)
        if array is not None:
            self._keepalive.append(array)

    @property
    def sends(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "send"]

    @property
    def recvs(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "recv"]

    def send_bytes(self) -> int:
        """Total payload bytes across all send events."""
        return sum(e.nbytes for e in self.sends)

    def __len__(self) -> int:
        return len(self.events)


_active: ScheduleTrace | None = None
_rank_maps: list[Sequence[int]] = []


def tracing_active() -> bool:
    return _active is not None


def _translate(rank: int) -> int:
    """Map a collective-local rank through the nested scopes.

    Scopes compose innermost-first: each mapping resolves a local rank
    into its *enclosing* scope's numbering, so after the outermost
    mapping the result is a global rank.  Ranks are validated at every
    level — a negative rank must not silently wrap through python's
    negative indexing (it would translate to a legal-looking global
    rank and hide the schedule bug from SCH007), and an out-of-range
    rank gets a diagnosis instead of a bare ``IndexError`` from deep
    inside a nested collective.
    """
    rank = int(rank)
    for depth, mapping in enumerate(reversed(_rank_maps)):
        if not 0 <= rank < len(mapping):
            raise IndexError(
                f"rank {rank} out of range for rank_scope mapping of "
                f"{len(mapping)} rank(s) at nesting depth "
                f"{depth + 1} (innermost=1): {tuple(mapping)!r}")
        rank = int(mapping[rank])
    return rank


def translate_rank(rank: int) -> int:
    """Public rank translation through the active :func:`rank_scope` stack.

    The fault channel (:mod:`repro.faults.inject`) matches fault-plan
    routes on *global* ranks, so it must apply the same translation the
    trace events get — including inside nested collectives.
    """
    return _translate(rank)


def emit_send(src: int, dst: int, nbytes: int, step: int,
              tag: str = "") -> None:
    """Record that ``src`` transmits ``nbytes`` to ``dst`` at ``step``."""
    if _active is None:
        return
    _active.record(TraceEvent("send", step, _translate(src), _translate(dst),
                              int(nbytes), tag))


def emit_recv(dst: int, src: int, nbytes: int, step: int,
              tag: str = "") -> None:
    """Record that ``dst`` consumes the payload ``src`` sent at ``step``.

    Receives are the blocking endpoints of the execution model: the
    event carries ``blocking=True`` so the liveness certifier knows the
    receiver cannot proceed until the matching send exists.
    """
    if _active is None:
        return
    _active.record(TraceEvent("recv", step, _translate(src), _translate(dst),
                              int(nbytes), tag, blocking=True))


def _record_mem_access(kind: str, rank: int, array, tag: str) -> None:
    if _active is None:
        return
    arr = np.asarray(array)
    start, end = byte_bounds(arr)
    _active.record_access(
        BufferAccess(kind, _translate(rank), "mem", tag, int(start),
                     int(end), tag),
        array=arr,
    )


def emit_buffer_read(rank: int, array, tag: str = "") -> None:
    """Record that ``rank`` reads ``array`` (e.g. to compress it)."""
    _record_mem_access("read", rank, array, tag)


def emit_buffer_write(rank: int, array, tag: str = "") -> None:
    """Record that ``rank`` overwrites ``array`` (e.g. ``buf[:] = x``)."""
    _record_mem_access("write", rank, array, tag)


def emit_buffer_update(rank: int, array, tag: str = "") -> None:
    """Record an in-place read-modify-write (e.g. ``buf += x``)."""
    _record_mem_access("update", rank, array, tag)


def emit_state_use(rank: int, key, tag: str = "") -> None:
    """Record that ``rank`` reads+writes keyed compressor state.

    Error-feedback residuals, PowerSGD warm-start memory and DGC
    accumulators are all read-modify-write per compress call, so every
    state use is an ``update``; two ranks sharing a key without an
    ordering message is a race (RACE003).
    """
    if _active is None:
        return
    _active.record_access(
        BufferAccess("update", _translate(rank), "state", repr(key), 0, 0, tag)
    )


def emit_overlap(kind: str, step: int, t: float, layer: str = "",
                 bucket: str = "", first_needed: int = -1) -> None:
    """Record one overlapped-mode gradient lifecycle event.

    The ``pos`` stamp (timeline length at emission) lets the overlap
    certifier bracket each bucket's data-path records — the send/recv
    and state accesses its reduction emitted land between the bucket's
    ``reduce_enqueued`` and ``reduce_landed`` positions.
    """
    if _active is None:
        return
    _active.overlap_events.append(OverlapEvent(
        kind, int(step), float(t), layer=layer, bucket=bucket,
        first_needed=int(first_needed), pos=len(_active.timeline)))


def timeline_position() -> int:
    """Current timeline length of the active trace (-1 when inactive)."""
    if _active is None:
        return -1
    return len(_active.timeline)


def declare_buffer(rank: int, array, name: str = "") -> None:
    """Declare ``array`` as ``rank``'s private input/output buffer.

    Declarations feed the static aliasing check (RACE004): two ranks
    declaring overlapping storage share memory that the schedule treats
    as rank-local.
    """
    if _active is None:
        return
    arr = np.asarray(array)
    start, end = byte_bounds(arr)
    _active.declared.append((_translate(rank), name, int(start), int(end)))
    _active._keepalive.append(arr)


@contextmanager
def capture() -> Iterator[ScheduleTrace]:
    """Install a fresh trace; events emitted inside the block land in it."""
    global _active
    previous = _active
    trace = ScheduleTrace()
    _active = trace
    try:
        yield trace
    finally:
        _active = previous


@contextmanager
def rank_scope(mapping: Sequence[int]) -> Iterator[None]:
    """Translate local ranks 0..k-1 of a nested collective to global ids.

    ``mapping[i]`` is the rank of the nested call's rank ``i`` **in the
    enclosing scope** — a global rank only when this is the outermost
    scope.  Scopes nest and compose: the innermost mapping applies
    first, and its values are then resolved through every enclosing
    mapping in turn, so a collective nested two levels deep still emits
    correct global ranks.  No-op (beyond a list push) when tracing is
    inactive.
    """
    _rank_maps.append(mapping)
    try:
        yield
    finally:
        _rank_maps.pop()


@contextmanager
def phase_scope(label: str) -> Iterator[None]:
    """Mark the events emitted inside the block as one barrier phase.

    Sequential collective calls reuse steps and tags, so their events
    alias under :meth:`TraceEvent.match_key` even though a real engine
    separates the calls with a (conceptual) global barrier.  Wrapping
    each call in a phase scope records the span boundaries on the
    active trace; the liveness certifier then analyzes each span as an
    independent schedule.  Scopes may nest (an inner collective can
    label its own sub-phases); consumers that need barrier semantics
    keep only the outermost spans.  No-op when tracing is inactive.
    """
    trace = _active
    if trace is None:
        yield
        return
    start = len(trace.events)
    try:
        yield
    finally:
        trace.phase_spans.append((label, start, len(trace.events)))

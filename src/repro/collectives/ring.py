"""Ring-Allreduce with per-hop compression.

The bandwidth-optimal dense scheme (NCCL/Gloo default).  With a
non-associative compressor each reduce-scatter hop must decompress,
accumulate, and *re-compress*, so a value absorbed at the first hop is
re-quantized N-1 times before the allgather phase — the error
amplification that makes quantized Ring inferior to SRA (Figure 10).
The allgather phase forwards the owner's final payload verbatim (no
further error), so all ranks decode identical results.
"""

from __future__ import annotations

import numpy as np

from repro.compression import Compressor

from .base import (
    ReduceStats,
    accumulate_chunk,
    check_buffers,
    compress_chunk,
    decompress_chunk,
    deliver_chunk,
    split_chunks,
    store_chunk,
)
from .trace import declare_buffer, emit_recv, emit_send

__all__ = ["ring_allreduce"]


def ring_allreduce(
    buffers: list[np.ndarray],
    compressor: Compressor,
    rng: np.random.Generator,
    key: str = "",
) -> tuple[list[np.ndarray], ReduceStats]:
    """Sum ``buffers`` across ranks via a compression-aware ring."""
    numel = check_buffers(buffers)
    world = len(buffers)
    stats = ReduceStats("ring", world, numel)
    if world == 1:
        return [buffers[0].astype(np.float32).copy()], stats
    for rank, buf in enumerate(buffers):
        declare_buffer(rank, buf, name=f"{key}/input")

    # working copies, chunked; chunk c starts its journey at rank c
    work = [
        [chunk.astype(np.float32).copy() for chunk in split_chunks(buf, world)]
        for buf in buffers
    ]

    # Phase 1: reduce-scatter.  In step s, rank r sends chunk (r - s) mod N
    # to rank r+1, which accumulates it.
    for step in range(world - 1):
        transfers = []
        for rank in range(world):
            chunk_id = (rank - step) % world
            wire = compress_chunk(compressor, work[rank][chunk_id], rng,
                                  key=f"{key}/rs/{step}/{rank}", stats=stats,
                                  rank=rank, tag=f"rs/{step}/{rank}")
            emit_send(rank, (rank + 1) % world, wire.nbytes, step=step,
                      tag=f"rs/{step}/{rank}")
            transfers.append((rank, chunk_id, wire))
        for rank, chunk_id, wire in transfers:
            nxt = (rank + 1) % world
            wire = deliver_chunk(wire, stats, rank, nxt, step=step,
                                 tag=f"rs/{step}/{rank}")
            emit_recv(nxt, rank, wire.nbytes, step=step,
                      tag=f"rs/{step}/{rank}")
            accumulate_chunk(work[nxt][chunk_id],
                             decompress_chunk(compressor, wire, stats),
                             rank=nxt, tag=f"rs/acc/{step}/{nxt}")

    # After N-1 steps, rank r holds the full sum of chunk (r + 1) mod N.
    # Phase 2: allgather.  Each owner compresses its final chunk once and
    # the payload is forwarded around the ring unchanged.
    final_payloads = {}
    for rank in range(world):
        owned = (rank + 1) % world
        wire = compress_chunk(compressor, work[rank][owned], rng,
                              key=f"{key}/ag/{rank}", stats=stats,
                              rank=rank, tag=f"ag/{owned}")
        stats.wire_bytes += wire.nbytes * (world - 2)  # forwarded N-1 hops total
        # the payload hops the ring verbatim: rank -> rank+1 -> ... (N-1 hops)
        for hop in range(world - 1):
            src = (rank + hop) % world
            dst = (rank + hop + 1) % world
            emit_send(src, dst, wire.nbytes, step=world - 1 + hop,
                      tag=f"ag/{owned}")
            # per-hop fault accounting; the forwarded payload every rank
            # decodes stays the owner's canonical encoding
            deliver_chunk(wire, stats, src, dst, step=world - 1 + hop,
                          tag=f"ag/{owned}")
        final_payloads[owned] = decompress_chunk(compressor, wire, stats)
        for hop in range(world - 1):
            src = (rank + hop) % world
            dst = (rank + hop + 1) % world
            emit_recv(dst, src, wire.nbytes, step=world - 1 + hop,
                      tag=f"ag/{owned}")

    outputs = []
    for rank in range(world):
        out = np.empty(numel, dtype=np.float32)
        for chunk_id, view in enumerate(split_chunks(out, world)):
            store_chunk(view, final_payloads[chunk_id], rank=rank,
                        tag=f"ag/out/{chunk_id}")
        outputs.append(out.reshape(buffers[0].shape))
    stats.max_recompressions = world  # N-1 reduce hops + 1 allgather encode
    return outputs, stats

"""Parameter-server reduction: all workers push to rank 0.

The degenerate 1-level tree: every worker sends its compressed gradient
to a single aggregator, which decompresses, sums, re-compresses and
broadcasts.  Two quantization rounds like SRA, but rank 0's links carry
all N-1 flows, so it does not scale — included as the baseline that
motivates chunk-parallel schemes.
"""

from __future__ import annotations

import numpy as np

from repro.compression import Compressor

from .base import (ReduceStats, accumulate_chunk, check_buffers,
                   compress_chunk, decompress_chunk, deliver_chunk)
from .trace import declare_buffer, emit_recv, emit_send

__all__ = ["ps_allreduce"]


def ps_allreduce(
    buffers: list[np.ndarray],
    compressor: Compressor,
    rng: np.random.Generator,
    key: str = "",
) -> tuple[list[np.ndarray], ReduceStats]:
    """Sum ``buffers`` through a single aggregator at rank 0."""
    numel = check_buffers(buffers)
    world = len(buffers)
    stats = ReduceStats("ps", world, numel)
    for rank, buf in enumerate(buffers):
        declare_buffer(rank, buf, name=f"{key}/input")

    total = buffers[0].astype(np.float32).ravel().copy()
    for rank in range(1, world):
        wire = compress_chunk(compressor, buffers[rank].ravel(), rng,
                              key=f"{key}/push/{rank}", stats=stats,
                              rank=rank, tag=f"push/{rank}")
        emit_send(rank, 0, wire.nbytes, step=0, tag=f"push/{rank}")
        wire = deliver_chunk(wire, stats, rank, 0, step=0, tag=f"push/{rank}")
        emit_recv(0, rank, wire.nbytes, step=0, tag=f"push/{rank}")
        accumulate_chunk(total, decompress_chunk(compressor, wire, stats),
                         rank=0, tag="push/agg")

    wire = compress_chunk(compressor, total, rng, key=f"{key}/bcast",
                          stats=stats, rank=0, tag="bcast")
    stats.wire_bytes += wire.nbytes * max(0, world - 2)
    for rank in range(1, world):
        emit_send(0, rank, wire.nbytes, step=1, tag="bcast")
        # per-worker fault accounting; decoding stays canonical
        deliver_chunk(wire, stats, 0, rank, step=1, tag="bcast")
    result = decompress_chunk(compressor, wire, stats)
    for rank in range(1, world):
        emit_recv(rank, 0, wire.nbytes, step=1, tag="bcast")
    stats.max_recompressions = 2
    shaped = result.reshape(buffers[0].shape)
    return [shaped.copy() for _ in range(world)], stats

"""Shared machinery for compression-aware collective operations.

The paper's central systems observation (Section 3) is that lossy
compression operators are *non-associative*, so the reduction scheme and
the compression operator must be chosen together: each scheme implies a
different number of compress->decompress round-trips per value, hence a
different accumulated error.  The collectives in this package therefore
execute the *real* data path on numpy buffers — errors are measured,
never modeled.

All collectives return the **sum** of the inputs; callers average by
dividing afterwards (in full precision, which adds no error).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.compression import Compressor
from repro.compression.topk import ErrorFeedback

from .trace import (emit_buffer_read, emit_buffer_update, emit_buffer_write,
                    emit_state_use, tracing_active)

__all__ = ["ReduceStats", "chunk_bounds", "split_chunks", "check_buffers",
           "compress_chunk", "decompress_chunk", "accumulate_chunk",
           "store_chunk", "wire_faults", "deliver_chunk", "faults_active"]


@dataclass
class ReduceStats:
    """Accounting of one collective call."""

    scheme: str
    world_size: int
    numel: int
    wire_bytes: int = 0          # total payload bytes moved between ranks
    compress_calls: int = 0      # compression kernel invocations
    decompress_calls: int = 0
    max_recompressions: int = 0  # worst-case quantize rounds any value saw
    retries: int = 0             # fault-channel retransmissions
    retransmit_bytes: int = 0    # extra wire bytes those retries moved

    def record_send(self, nbytes: int) -> None:
        self.wire_bytes += nbytes


# -- fault-channel hook ------------------------------------------------------
#
# The schemes in this package move payloads between ranks at the same
# sites that emit send/recv trace events.  A fault channel (installed by
# repro.faults via wire_faults) intercepts those payloads without the
# collectives importing the faults package — which would be circular,
# since faults imports this module.  The hook is a single None check per
# logical message when no campaign is running.

_channel = None


def faults_active() -> bool:
    """Whether a fault channel is currently installed."""
    return _channel is not None


@contextmanager
def wire_faults(channel) -> Iterator[None]:
    """Install ``channel`` as the active fault interceptor.

    ``channel`` must expose ``deliver(wire, stats, src, dst, step, tag)``
    returning the payload the receiver should decode (normally a
    :class:`~repro.faults.inject.FaultChannel`).  Channels nest like
    traces: the innermost wins, the previous one is restored on exit.
    """
    global _channel
    previous = _channel
    _channel = channel
    try:
        yield
    finally:
        _channel = previous


def deliver_chunk(wire, stats: ReduceStats, src: int, dst: int,
                  step: int = 0, tag: str = ""):
    """Pass one logical point-to-point payload through the fault channel.

    Schemes call this between the encode (``compress_chunk``/
    ``emit_send``) and decode (``emit_recv``/``decompress_chunk``) sites
    of every message.  With no channel installed it returns ``wire``
    unchanged; under a campaign it may account retransmissions into
    ``stats`` and, when CRC checking is disabled, hand back a corrupted
    payload for the receiver to absorb.
    """
    if _channel is None:
        return wire
    return _channel.deliver(wire, stats, src, dst, step, tag)


def chunk_bounds(numel: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, nearly equal chunk boundaries covering [0, numel)."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    base, extra = divmod(numel, n_chunks)
    bounds = []
    start = 0
    for chunk in range(n_chunks):
        size = base + (1 if chunk < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def split_chunks(buffer: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Views of ``buffer`` split into ``n_chunks`` contiguous chunks."""
    flat = buffer.ravel()
    return [flat[a:b] for a, b in chunk_bounds(flat.size, n_chunks)]


def check_buffers(buffers: list[np.ndarray]) -> int:
    """Validate a per-rank buffer list; returns the common element count."""
    if not buffers:
        raise ValueError("need at least one rank buffer")
    numel = buffers[0].size
    for i, buf in enumerate(buffers):
        if buf.size != numel:
            raise ValueError(
                f"rank {i} buffer has {buf.size} elements, expected {numel}"
            )
    return numel


def _uses_keyed_state(compressor) -> bool:
    """Whether compressing under a key touches per-key mutable state."""
    if isinstance(compressor, ErrorFeedback):
        return True
    contract = getattr(type(compressor), "contract", None)
    return bool(contract is not None and contract.stateful)


def compress_chunk(compressor: Compressor, chunk: np.ndarray,
                   rng: np.random.Generator, key, stats: ReduceStats,
                   rank: int | None = None, tag: str = ""):
    """Compress one chunk, updating stats; returns the wire object.

    ``rank`` attributes the access under an active trace: a buffer read
    of ``chunk``, plus a state use of ``key`` when the compressor keeps
    per-key state (error feedback, PowerSGD/DGC accumulators).
    """
    if rank is not None and tracing_active():
        emit_buffer_read(rank, chunk, tag=tag or str(key))
        if _uses_keyed_state(compressor):
            emit_state_use(rank, key, tag=tag or str(key))
    compressed = compressor.compress(chunk, rng, key=key)
    stats.compress_calls += 1
    stats.record_send(compressed.nbytes)
    return compressed


def decompress_chunk(compressor: Compressor, compressed,
                     stats: ReduceStats) -> np.ndarray:
    stats.decompress_calls += 1
    return compressor.decompress(compressed)


def accumulate_chunk(target: np.ndarray, value: np.ndarray,
                     rank: int | None = None, tag: str = "") -> np.ndarray:
    """``target += value`` with an in-place-update access record."""
    if rank is not None:
        emit_buffer_update(rank, target, tag=tag)
    target += value
    return target


def store_chunk(target: np.ndarray, value: np.ndarray,
                rank: int | None = None, tag: str = "") -> np.ndarray:
    """``target[:] = value`` with a write access record."""
    if rank is not None:
        emit_buffer_write(rank, target, tag=tag)
    target[:] = value
    return target

"""Allgather-based reduction: the GRACE-style scheme.

Every rank broadcasts its *whole* compressed gradient to every other
rank; each rank decompresses all N contributions and sums locally.
Only **one** quantization round per value (lowest possible error), but
the wire carries N compressed gradients instead of ~1, so bandwidth is
a factor N worse than SRA/Ring — the paper's explanation for GRACE
being >3x slower than CGX despite using the same QSGD operator
(Table 6 discussion).
"""

from __future__ import annotations

import numpy as np

from repro.compression import Compressor

from .base import (ReduceStats, check_buffers, compress_chunk,
                   decompress_chunk, deliver_chunk)
from .trace import declare_buffer, emit_recv, emit_send

__all__ = ["allgather_allreduce"]


def allgather_allreduce(
    buffers: list[np.ndarray],
    compressor: Compressor,
    rng: np.random.Generator,
    key: str = "",
) -> tuple[list[np.ndarray], ReduceStats]:
    """Sum ``buffers`` by all-gathering compressed gradients."""
    numel = check_buffers(buffers)
    world = len(buffers)
    stats = ReduceStats("allgather", world, numel)
    for rank, buf in enumerate(buffers):
        declare_buffer(rank, buf, name=f"{key}/input")

    decoded = []
    for rank in range(world):
        wire = compress_chunk(compressor, buffers[rank].ravel(), rng,
                              key=f"{key}/{rank}", stats=stats,
                              rank=rank, tag=f"bcast/{rank}")
        # one encode, broadcast to world-1 peers
        stats.wire_bytes += wire.nbytes * max(0, world - 2)
        for dst in range(world):
            if dst != rank:
                emit_send(rank, dst, wire.nbytes, step=0, tag=f"bcast/{rank}")
                # per-receiver fault accounting; decoding stays canonical
                deliver_chunk(wire, stats, rank, dst, step=0,
                              tag=f"bcast/{rank}")
        decoded.append(decompress_chunk(compressor, wire, stats))
        for dst in range(world):
            if dst != rank:
                emit_recv(dst, rank, wire.nbytes, step=0, tag=f"bcast/{rank}")

    total = np.sum(decoded, axis=0, dtype=np.float32)
    stats.max_recompressions = 1
    shaped = total.reshape(buffers[0].shape)
    return [shaped.copy() for _ in range(world)], stats

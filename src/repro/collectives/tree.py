"""Tree-Allreduce: hierarchical reduce + broadcast with compression.

A binary reduction tree (Section 3: "a hierarchical parameter server"):
values travel up the tree, re-quantized at every internal node
(log2 N re-compressions), then the root's final payload is broadcast
down unchanged.  Latency is O(log N) rounds but each value crosses the
wire 2 log N times, and the repeated re-compression inflates error —
both reasons the paper rejects it in favor of SRA.
"""

from __future__ import annotations

import numpy as np

from repro.compression import Compressor

from .base import (ReduceStats, accumulate_chunk, check_buffers,
                   compress_chunk, decompress_chunk, deliver_chunk)
from .trace import declare_buffer, emit_recv, emit_send

__all__ = ["tree_allreduce"]


def tree_allreduce(
    buffers: list[np.ndarray],
    compressor: Compressor,
    rng: np.random.Generator,
    key: str = "",
) -> tuple[list[np.ndarray], ReduceStats]:
    """Sum ``buffers`` across ranks via a binary reduction tree."""
    numel = check_buffers(buffers)
    world = len(buffers)
    stats = ReduceStats("tree", world, numel)
    for rank, buf in enumerate(buffers):
        declare_buffer(rank, buf, name=f"{key}/input")
    partial = [buf.astype(np.float32).ravel().copy() for buf in buffers]

    # Reduce phase: at stride s, rank r (multiple of 2s) absorbs rank r+s.
    stride = 1
    depth = 0
    edges: list[tuple[int, int, int]] = []  # (parent, child, reduce step)
    while stride < world:
        for receiver in range(0, world - stride, 2 * stride):
            sender = receiver + stride
            wire = compress_chunk(compressor, partial[sender], rng,
                                  key=f"{key}/up/{stride}/{sender}", stats=stats,
                                  rank=sender, tag=f"up/{stride}/{sender}")
            emit_send(sender, receiver, wire.nbytes, step=depth,
                      tag=f"up/{stride}/{sender}")
            wire = deliver_chunk(wire, stats, sender, receiver, step=depth,
                                 tag=f"up/{stride}/{sender}")
            emit_recv(receiver, sender, wire.nbytes, step=depth,
                      tag=f"up/{stride}/{sender}")
            accumulate_chunk(partial[receiver],
                             decompress_chunk(compressor, wire, stats),
                             rank=receiver, tag=f"up/acc/{receiver}")
            edges.append((receiver, sender, depth))
        stride *= 2
        depth += 1

    # Broadcast phase: the root compresses once; the payload is forwarded
    # down the tree verbatim so every rank decodes the same values.  The
    # forwarding retraces the reduce edges parent->child in reverse stride
    # order (the edge reduced at step k is broadcast at step 2*depth-1-k).
    wire = compress_chunk(compressor, partial[0], rng, key=f"{key}/down",
                          stats=stats, rank=0, tag="down")
    stats.wire_bytes += wire.nbytes * max(0, world - 2)
    for parent, child, k in reversed(edges):
        emit_send(parent, child, wire.nbytes, step=2 * depth - 1 - k,
                  tag="down")
        # per-edge fault accounting; every rank decodes the root's
        # canonical payload
        deliver_chunk(wire, stats, parent, child, step=2 * depth - 1 - k,
                      tag="down")
    result = decompress_chunk(compressor, wire, stats)
    for parent, child, k in reversed(edges):
        emit_recv(child, parent, wire.nbytes, step=2 * depth - 1 - k,
                  tag="down")
    stats.max_recompressions = depth + 1
    shaped = result.reshape(buffers[0].shape)
    return [shaped.copy() for _ in range(world)], stats

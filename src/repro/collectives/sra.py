"""Scatter-Reduce-Allgather (SRA): CGX's default reduction scheme.

Two rounds (Section 3, "Reduction Schemes"): each of the N ranks owns
one contiguous chunk of the buffer.  Round 1 (scatter-reduce): every
rank compresses each foreign chunk and sends it to that chunk's owner,
which decompresses and accumulates.  Round 2 (allgather): each owner
compresses its aggregated chunk once and broadcasts it.

Every value therefore survives exactly **two** quantizations — one on
the worker gradient, one on the aggregate — which is the lowest error
of any O(d) scheme and the reason CGX defaults to SRA (Figure 10).
All ranks decompress identical broadcast payloads, so replicas stay
bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.compression import Compressor

from .base import (
    ReduceStats,
    accumulate_chunk,
    check_buffers,
    compress_chunk,
    decompress_chunk,
    deliver_chunk,
    split_chunks,
    store_chunk,
)
from .trace import declare_buffer, emit_recv, emit_send

__all__ = ["sra_allreduce"]


def sra_allreduce(
    buffers: list[np.ndarray],
    compressor: Compressor,
    rng: np.random.Generator,
    key: str = "",
) -> tuple[list[np.ndarray], ReduceStats]:
    """Sum ``buffers`` across ranks via scatter-reduce-allgather.

    Args:
        buffers: one gradient buffer per rank (equal sizes).
        compressor: applied to every transmitted chunk.
        rng: randomness for stochastic quantization.
        key: state key prefix for stateful compressors.

    Returns:
        (per-rank summed buffers, transfer/kernel statistics).
    """
    numel = check_buffers(buffers)
    world = len(buffers)
    stats = ReduceStats("sra", world, numel)
    for rank, buf in enumerate(buffers):
        declare_buffer(rank, buf, name=f"{key}/input")
    per_rank_chunks = [split_chunks(buf, world) for buf in buffers]

    # Round 1: scatter-reduce.  Owner o aggregates chunk o of every rank.
    aggregated: list[np.ndarray] = []
    for owner in range(world):
        total = per_rank_chunks[owner][owner].astype(np.float32).copy()
        for rank in range(world):
            if rank == owner:
                continue
            wire = compress_chunk(
                compressor, per_rank_chunks[rank][owner], rng,
                key=f"{key}/sr/{owner}/{rank}", stats=stats,
                rank=rank, tag=f"sr/{owner}/{rank}",
            )
            emit_send(rank, owner, wire.nbytes, step=0,
                      tag=f"sr/{owner}/{rank}")
            wire = deliver_chunk(wire, stats, rank, owner, step=0,
                                 tag=f"sr/{owner}/{rank}")
            emit_recv(owner, rank, wire.nbytes, step=0,
                      tag=f"sr/{owner}/{rank}")
            accumulate_chunk(total, decompress_chunk(compressor, wire, stats),
                             rank=owner, tag=f"sr/agg/{owner}")
        aggregated.append(total)

    # Round 2: allgather.  Owner compresses its aggregate once; all ranks
    # (owner included) decode the same payload.
    outputs = [np.empty(numel, dtype=np.float32) for _ in range(world)]
    out_chunks = [split_chunks(out, world) for out in outputs]
    for owner in range(world):
        wire = compress_chunk(compressor, aggregated[owner], rng,
                              key=f"{key}/ag/{owner}", stats=stats,
                              rank=owner, tag=f"ag/{owner}")
        # broadcast costs world-1 sends of the same payload
        stats.wire_bytes += wire.nbytes * (world - 2) if world > 1 else 0
        for dst in range(world):
            if dst != owner:
                emit_send(owner, dst, wire.nbytes, step=1, tag=f"ag/{owner}")
                # broadcast payloads are delivered per receiver for fault
                # accounting; all ranks decode the canonical wire object,
                # preserving the replicas-stay-identical invariant
                deliver_chunk(wire, stats, owner, dst, step=1,
                              tag=f"ag/{owner}")
        decoded = decompress_chunk(compressor, wire, stats)
        for rank in range(world):
            if rank != owner:
                emit_recv(rank, owner, wire.nbytes, step=1, tag=f"ag/{owner}")
            store_chunk(out_chunks[rank][owner], decoded, rank=rank,
                        tag=f"ag/out/{owner}")
    stats.max_recompressions = 2
    shaped = [out.reshape(buffers[0].shape) for out in outputs]
    return shaped, stats

"""Partial (quorum) allreduce — the hybrid-synchronization extension.

The paper's conclusion lists "hybrid synchronization setups, e.g. Zhou
et al.; Li et al." as future work; the mechanism underneath those
systems is the *partial collective* (Li et al., PPoPP 2020): a step's
reduction proceeds once a quorum of workers has contributed, and
late workers receive the result without having been waited for.  Their
skipped contribution is not lost — each worker folds its unsent gradient
into its next contribution via a local carry buffer, so the estimator
stays unbiased over time (elastic consistency).

Data path here; the timed schedule lives in
:func:`repro.collectives.timing.time_partial_allreduce`.
"""

from __future__ import annotations

import ast

import numpy as np

from repro.compression import Compressor

from .base import (ReduceStats, check_buffers, compress_chunk,
                   decompress_chunk, deliver_chunk)
from .sra import sra_allreduce
from .trace import (emit_recv, emit_send, emit_state_use, phase_scope,
                    rank_scope)

__all__ = ["PartialAllreduce"]


class PartialAllreduce:
    """Stateful quorum reduction with carry buffers for skipped ranks.

    Each call reduces over ``participants`` only; non-participants'
    gradients accumulate in per-rank carry buffers and are added to
    their next participating contribution, so every gradient is
    delivered exactly once (possibly a few steps late).  The long-run
    sum therefore matches full synchronization exactly — the elastic-
    consistency property — while individual steps see a smaller
    effective batch.
    """

    def __init__(self, world: int):
        if world < 1:
            raise ValueError("world must be >= 1")
        self.world = world
        self._carry: dict[tuple, np.ndarray] = {}

    def reduce(
        self,
        buffers: list[np.ndarray],
        participants: list[int],
        compressor: Compressor,
        rng: np.random.Generator,
        key: str = "",
    ) -> tuple[list[np.ndarray], ReduceStats]:
        """Quorum-sum ``buffers``; every rank receives the result."""
        numel = check_buffers(buffers)
        if len(buffers) != self.world:
            raise ValueError(
                f"expected {self.world} buffers, got {len(buffers)}"
            )
        participants = sorted(set(participants))
        if not participants:
            raise ValueError("need at least one participant")
        if any(not 0 <= p < self.world for p in participants):
            raise ValueError("participant out of range")

        # fold carries into participating gradients; bank the others
        contributions = []
        for rank in participants:
            value = buffers[rank].astype(np.float32).copy()
            carry = self._carry.pop((key, rank), None)
            if carry is not None:
                emit_state_use(rank, (key, rank), tag="carry")
                value += carry.reshape(value.shape)
            contributions.append(value)
        for rank in range(self.world):
            if rank in participants:
                continue
            carry = self._carry.get((key, rank))
            grad = buffers[rank].astype(np.float32)
            emit_state_use(rank, (key, rank), tag="carry")
            self._carry[(key, rank)] = grad.copy() if carry is None \
                else carry + grad

        # reduce among the quorum, then one broadcast payload for everyone
        with phase_scope("partial/quorum"), rank_scope(participants):
            reduced, stats = sra_allreduce(contributions, compressor, rng,
                                           key=f"{key}/quorum")
        stats.scheme = "partial"
        laggards = self.world - len(participants)
        if laggards == 0:
            # full participation: the quorum SRA already delivered
            # identical results to every rank — encoding a late
            # broadcast here would inflate wire_bytes and add a third
            # quantization round nobody consumes
            stats.max_recompressions = 2
            return reduced, stats
        total = reduced[0]

        with phase_scope("partial/late"):
            wire = compress_chunk(compressor, total.ravel(), rng,
                                  key=f"{key}/late", stats=stats,
                                  rank=participants[0], tag="late")
            stats.wire_bytes += wire.nbytes * (laggards - 1)
            late_ranks = [r for r in range(self.world)
                          if r not in participants]
            for rank in late_ranks:
                emit_send(participants[0], rank, wire.nbytes, step=2,
                          tag="late")
                # per-laggard fault accounting; decoding stays canonical
                deliver_chunk(wire, stats, participants[0], rank, step=2,
                              tag="late")
            decoded = decompress_chunk(compressor, wire, stats).reshape(
                buffers[0].shape
            )
            for rank in late_ranks:
                emit_recv(rank, participants[0], wire.nbytes, step=2,
                          tag="late")
        # every rank adopts the identical decoded payload
        outputs = [decoded.copy() for _ in range(self.world)]
        # quorum SRA quantizes twice; the late broadcast re-encodes once more
        stats.max_recompressions = 3
        return outputs, stats

    def has_carries(self) -> bool:
        """Whether any rank still holds banked (undelivered) gradient."""
        return bool(self._carry)

    def carry_state(self) -> dict[str, np.ndarray]:
        """Checkpointable snapshot of the carry buffers.

        Keys are ``repr()``-encoded so the mapping survives a JSON
        manifest round-trip; :meth:`load_carry_state` decodes them.
        """
        return {repr(k): v.copy() for k, v in self._carry.items()}

    def load_carry_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore carry buffers captured by :meth:`carry_state`."""
        self._carry = {ast.literal_eval(k): np.asarray(v, dtype=np.float32).copy()
                       for k, v in state.items()}

    def carry_norm(self, key: str, rank: int) -> float:
        carry = self._carry.get((key, rank))
        if carry is None:
            return 0.0
        return float(np.linalg.norm(carry))

    def total_carry_norm(self) -> float:
        """Summed L2 mass banked across every (key, rank) carry buffer.

        Zero means no undelivered gradient information: a dead rank's
        banked zeros keep :meth:`has_carries` true without holding any
        mass, which is exactly the distinction elastic membership
        changes need (rebuilding the reducer may drop zero-mass
        entries, never real gradient).
        """
        return float(sum(np.linalg.norm(c) for c in self._carry.values()))

    def reset(self) -> None:
        self._carry.clear()

"""Compression-aware collectives: data paths and timed schedules."""

from .allgather import allgather_allreduce
from .base import (ReduceStats, accumulate_chunk, check_buffers, chunk_bounds,
                   compress_chunk, decompress_chunk, split_chunks, store_chunk)
from .hierarchical import hierarchical_allreduce
from .parameter_server import ps_allreduce
from .partial import PartialAllreduce
from .ring import ring_allreduce
from .sra import sra_allreduce
from .timing import (SCHEMES, CollectiveTiming, OverlapStepTiming,
                     TimedBucket, time_allreduce, time_overlapped_step,
                     time_partial_allreduce)
from .trace import (BufferAccess, ScheduleTrace, TraceEvent, capture,
                    declare_buffer, emit_buffer_read, emit_buffer_update,
                    emit_buffer_write, emit_state_use, rank_scope)
from .tree import tree_allreduce

#: scheme name -> data-path implementation
ALGORITHMS = {
    "sra": sra_allreduce,
    "ring": ring_allreduce,
    "tree": tree_allreduce,
    "allgather": allgather_allreduce,
    "ps": ps_allreduce,
    "hier": hierarchical_allreduce,
}


def allreduce(scheme, buffers, compressor, rng, key="", node_of=None):
    """Dispatch to a data-path collective by scheme name.

    ``node_of`` (node index per rank) only applies to the hierarchical
    scheme; other schemes ignore topology.
    """
    if scheme not in ALGORITHMS:
        raise KeyError(f"unknown scheme {scheme!r}; choose from {sorted(ALGORITHMS)}")
    if scheme == "hier":
        return ALGORITHMS[scheme](buffers, compressor, rng, key=key,
                                  node_of=node_of)
    return ALGORITHMS[scheme](buffers, compressor, rng, key=key)


__all__ = [
    "ReduceStats", "chunk_bounds", "check_buffers", "split_chunks",
    "compress_chunk", "decompress_chunk", "accumulate_chunk", "store_chunk",
    "sra_allreduce", "ring_allreduce", "tree_allreduce",
    "allgather_allreduce", "ps_allreduce", "hierarchical_allreduce",
    "ALGORITHMS", "allreduce",
    "SCHEMES", "CollectiveTiming", "time_allreduce",
    "time_partial_allreduce", "PartialAllreduce",
    "TimedBucket", "OverlapStepTiming", "time_overlapped_step",
    "ScheduleTrace", "TraceEvent", "BufferAccess", "capture", "rank_scope",
    "declare_buffer", "emit_buffer_read", "emit_buffer_write",
    "emit_buffer_update", "emit_state_use",
]

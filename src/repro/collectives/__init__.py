"""Compression-aware collectives: data paths and timed schedules."""

from .allgather import allgather_allreduce
from .base import ReduceStats, chunk_bounds, check_buffers, split_chunks
from .hierarchical import hierarchical_allreduce
from .parameter_server import ps_allreduce
from .partial import PartialAllreduce
from .ring import ring_allreduce
from .sra import sra_allreduce
from .timing import (SCHEMES, CollectiveTiming, time_allreduce,
                     time_partial_allreduce)
from .trace import ScheduleTrace, TraceEvent, capture, rank_scope
from .tree import tree_allreduce

#: scheme name -> data-path implementation
ALGORITHMS = {
    "sra": sra_allreduce,
    "ring": ring_allreduce,
    "tree": tree_allreduce,
    "allgather": allgather_allreduce,
    "ps": ps_allreduce,
    "hier": hierarchical_allreduce,
}


def allreduce(scheme, buffers, compressor, rng, key="", node_of=None):
    """Dispatch to a data-path collective by scheme name.

    ``node_of`` (node index per rank) only applies to the hierarchical
    scheme; other schemes ignore topology.
    """
    if scheme not in ALGORITHMS:
        raise KeyError(f"unknown scheme {scheme!r}; choose from {sorted(ALGORITHMS)}")
    if scheme == "hier":
        return ALGORITHMS[scheme](buffers, compressor, rng, key=key,
                                  node_of=node_of)
    return ALGORITHMS[scheme](buffers, compressor, rng, key=key)


__all__ = [
    "ReduceStats", "chunk_bounds", "check_buffers", "split_chunks",
    "sra_allreduce", "ring_allreduce", "tree_allreduce",
    "allgather_allreduce", "ps_allreduce", "hierarchical_allreduce",
    "ALGORITHMS", "allreduce",
    "SCHEMES", "CollectiveTiming", "time_allreduce",
    "time_partial_allreduce", "PartialAllreduce",
    "ScheduleTrace", "TraceEvent", "capture", "rank_scope",
]

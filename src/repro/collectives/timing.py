"""Timed collective schedules over the simulated network.

The data-path modules in this package measure *what* a scheme computes;
this module measures *when*.  Each ``time_*`` function replays the exact
transfer/kernel pattern of its scheme onto a
:class:`~repro.cluster.network.Network`, occupying links and per-GPU
compression engines, and returns per-rank completion times.  The
performance model (``repro.training.perf``) composes these per fusion
buffer to obtain end-to-end step times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import Network
from repro.compression import CompressionSpec
from repro.compression.metrics import kernel_seconds

__all__ = ["CollectiveTiming", "time_allreduce",
           "time_partial_allreduce", "SCHEMES",
           "TimedBucket", "OverlapStepTiming", "time_overlapped_step"]

SCHEMES = ("sra", "ring", "tree", "allgather", "ps", "hier")


@dataclass
class CollectiveTiming:
    """Result of scheduling one collective."""

    end_times: list[float]   # completion per participating rank
    wire_bytes: int          # payload bytes put on links
    kernel_calls: int        # compression-engine invocations

    @property
    def end(self) -> float:
        return max(self.end_times)


def _chunk_sizes(numel: int, n_chunks: int) -> list[int]:
    base, extra = divmod(numel, n_chunks)
    return [base + (1 if i < extra else 0) for i in range(n_chunks)]


class _Scheduler:
    """Shared helpers binding a network, a spec and kernel accounting."""

    def __init__(self, network: Network, spec: CompressionSpec,
                 extra_flops_per_elem: float = 0.0, streams: int = 1,
                 kernel_factor: float = 1.0, job: int | None = None):
        self.net = network
        self.spec = spec
        # "fake" compression only truncates the send; it runs no kernel
        self.compressing = spec.method not in ("none", "fake")
        self.extra_flops_per_elem = extra_flops_per_elem
        self.streams = max(1, streams)
        self.kernel_factor = kernel_factor
        self.job = job
        self.wire_bytes = 0
        self.kernel_calls = 0
        self._stream_rr: dict[int, int] = {}

    def kernel(self, gpu: int, numel: int, ready: float) -> float:
        """Charge one compress/decompress kernel; returns end time."""
        if not self.compressing:
            return ready
        duration = self.kernel_factor * kernel_seconds(
            numel * 4, extra_flops=self.extra_flops_per_elem * numel
        )
        stream = self._stream_rr.get(gpu, 0)
        self._stream_rr[gpu] = (stream + 1) % self.streams
        self.kernel_calls += 1
        return self.net.run_kernel(gpu, f"compress{stream}", duration, ready,
                                   job=self.job)

    def send(self, src: int, dst: int, numel: int, ready: float) -> float:
        nbytes = self.spec.wire_bytes(numel)
        self.wire_bytes += nbytes
        return self.net.transfer(src, dst, nbytes, ready, job=self.job)

    def op_start(self, ready: float) -> float:
        backend = self.net.backend
        return ready + backend.per_op_overhead + backend.sync_per_op


def time_allreduce(
    network: Network,
    ranks: list[int],
    dense_numel: int,
    spec: CompressionSpec,
    scheme: str = "sra",
    ready: list[float] | float = 0.0,
    chunk_streams: int = 1,
    extra_flops_per_elem: float = 0.0,
    kernel_factor: float = 1.0,
    job: int | None = None,
) -> CollectiveTiming:
    """Schedule one allreduce of ``dense_numel`` elements over ``ranks``.

    Args:
        network: simulated network (links + per-GPU engines are shared
            state across calls, giving inter-collective contention).
        ranks: participating GPU ids.
        dense_numel: uncompressed element count of the buffer.
        spec: compression applied to transmitted chunks.
        scheme: one of :data:`SCHEMES`.
        ready: per-rank gradient-ready times (scalar = same for all).
        chunk_streams: parallel compression streams per GPU (the SRA
            chunk-parallel optimization worth ~5% in the paper).
        extra_flops_per_elem: additional per-element compression compute
            (PowerSGD's matmuls).
        kernel_factor: multiplier on kernel durations (QNCCL's constrained
            in-library kernels pay ~2x).
        job: owning job id on a shared (multi-job) network — every
            transfer and kernel of this collective is scoped to the job
            for throttling, tracing and per-job accounting.
    """
    world = len(ranks)
    if world < 1:
        raise ValueError("need at least one rank")
    if isinstance(ready, (int, float)):
        ready = [float(ready)] * world
    if len(ready) != world:
        raise ValueError("ready times must match rank count")
    if world == 1:
        return CollectiveTiming([ready[0]], 0, 0)

    sched = _Scheduler(network, spec, extra_flops_per_elem, chunk_streams,
                       kernel_factor, job=job)
    start = [sched.op_start(t) for t in ready]

    dispatch = {
        "sra": _time_sra,
        "ring": _time_ring,
        "tree": _time_tree,
        "allgather": _time_allgather,
        "ps": _time_ps,
        "hier": _time_hier,
    }
    if scheme not in dispatch:
        raise KeyError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    end_times = dispatch[scheme](sched, ranks, dense_numel, start)
    return CollectiveTiming(end_times, sched.wire_bytes, sched.kernel_calls)


def _time_sra(sched: _Scheduler, ranks: list[int], numel: int,
              start: list[float]) -> list[float]:
    world = len(ranks)
    chunks = _chunk_sizes(numel, world)

    # Phase 1: each rank compresses and sends every foreign chunk.
    arrivals: dict[int, list[float]] = {o: [] for o in range(world)}
    for sender in range(world):
        t = start[sender]
        for owner in range(world):
            if owner == sender:
                continue
            t = sched.kernel(ranks[sender], chunks[owner], t)
            arrive = sched.send(ranks[sender], ranks[owner], chunks[owner], t)
            arrivals[owner].append(arrive)

    # Owners decompress+accumulate each arrival, then compress the
    # aggregate and broadcast it.
    final_arrival = [start[r] for r in range(world)]
    for owner in range(world):
        t = start[owner]
        for arrive in sorted(arrivals[owner]):
            t = sched.kernel(ranks[owner], chunks[owner], max(t, arrive))
        t = sched.kernel(ranks[owner], chunks[owner], t)  # encode aggregate
        for receiver in range(world):
            if receiver == owner:
                continue
            arrive = sched.send(ranks[owner], ranks[receiver], chunks[owner], t)
            done = sched.kernel(ranks[receiver], chunks[owner], arrive)
            final_arrival[receiver] = max(final_arrival[receiver], done)
        final_arrival[owner] = max(final_arrival[owner], t)
    return final_arrival


def _time_ring(sched: _Scheduler, ranks: list[int], numel: int,
               start: list[float]) -> list[float]:
    world = len(ranks)
    chunks = _chunk_sizes(numel, world)
    t = list(start)

    # Reduce-scatter: N-1 rounds of neighbor sends with re-compression.
    for step in range(world - 1):
        arrivals = [0.0] * world
        for rank in range(world):
            chunk_id = (rank - step) % world
            ready = sched.kernel(ranks[rank], chunks[chunk_id], t[rank])
            arrivals[(rank + 1) % world] = sched.send(
                ranks[rank], ranks[(rank + 1) % world], chunks[chunk_id], ready
            )
        for rank in range(world):
            chunk_id = (rank - 1 - step) % world
            t[rank] = sched.kernel(ranks[rank], chunks[chunk_id],
                                   max(t[rank], arrivals[rank]))

    # Allgather: N-1 rounds forwarding final payloads (no re-encode after
    # the first hop; decompress once on arrival of each chunk).
    for rank in range(world):
        t[rank] = sched.kernel(ranks[rank], chunks[(rank + 1) % world], t[rank])
    for step in range(world - 1):
        arrivals = [0.0] * world
        for rank in range(world):
            chunk_id = (rank + 1 - step) % world
            arrivals[(rank + 1) % world] = sched.send(
                ranks[rank], ranks[(rank + 1) % world], chunks[chunk_id], t[rank]
            )
        for rank in range(world):
            chunk_id = (rank - step) % world
            t[rank] = sched.kernel(ranks[rank], chunks[chunk_id],
                                   max(t[rank], arrivals[rank]))
    return t


def _time_tree(sched: _Scheduler, ranks: list[int], numel: int,
               start: list[float]) -> list[float]:
    world = len(ranks)
    t = list(start)
    stride = 1
    while stride < world:
        for receiver in range(0, world - stride, 2 * stride):
            sender = receiver + stride
            ready = sched.kernel(ranks[sender], numel, t[sender])
            arrive = sched.send(ranks[sender], ranks[receiver], numel, ready)
            t[receiver] = sched.kernel(ranks[receiver], numel,
                                       max(t[receiver], arrive))
        stride *= 2
    # Broadcast down the same tree.
    t[0] = sched.kernel(ranks[0], numel, t[0])
    stride //= 2
    while stride >= 1:
        for sender in range(0, world - stride, 2 * stride):
            receiver = sender + stride
            arrive = sched.send(ranks[sender], ranks[receiver], numel, t[sender])
            t[receiver] = sched.kernel(ranks[receiver], numel, arrive)
        stride //= 2
    return t


def _time_allgather(sched: _Scheduler, ranks: list[int], numel: int,
                    start: list[float]) -> list[float]:
    world = len(ranks)
    encoded = [sched.kernel(ranks[r], numel, start[r]) for r in range(world)]
    done = list(encoded)
    for sender in range(world):
        for receiver in range(world):
            if receiver == sender:
                continue
            arrive = sched.send(ranks[sender], ranks[receiver], numel,
                                encoded[sender])
            decoded = sched.kernel(ranks[receiver], numel, arrive)
            done[receiver] = max(done[receiver], decoded)
    return done


def _time_ps(sched: _Scheduler, ranks: list[int], numel: int,
             start: list[float]) -> list[float]:
    world = len(ranks)
    t_root = start[0]
    for sender in range(1, world):
        ready = sched.kernel(ranks[sender], numel, start[sender])
        arrive = sched.send(ranks[sender], ranks[0], numel, ready)
        t_root = sched.kernel(ranks[0], numel, max(t_root, arrive))
    t_root = sched.kernel(ranks[0], numel, t_root)
    done = [t_root] * world
    for receiver in range(1, world):
        arrive = sched.send(ranks[0], ranks[receiver], numel, t_root)
        done[receiver] = sched.kernel(ranks[receiver], numel, arrive)
    return done


def _time_hier(sched: _Scheduler, ranks: list[int], numel: int,
               start: list[float]) -> list[float]:
    """Hierarchical: intra-node SRA, inter-node SRA of leaders, broadcast.

    Falls back to flat SRA when all ranks share a node.  Inter-node
    traffic is one compressed gradient per node instead of one per GPU,
    which is what keeps gigabit inter-node links usable (Table 5).
    """
    node_of = sched.net.topology.node_of
    by_node: dict[int, list[int]] = {}
    for idx, rank in enumerate(ranks):
        by_node.setdefault(node_of[rank], []).append(idx)
    if len(by_node) == 1:
        return _time_sra(sched, ranks, numel, start)

    # Stage 1: intra-node allreduce (SRA inside each node).
    t = list(start)
    leaders: list[int] = []
    for node in sorted(by_node):
        local = by_node[node]
        leaders.append(local[0])
        if len(local) == 1:
            continue
        local_ranks = [ranks[i] for i in local]
        local_start = [t[i] for i in local]
        local_end = _time_sra(sched, local_ranks, numel, local_start)
        for i, end in zip(local, local_end):
            t[i] = end

    # Stage 2: inter-node allreduce among leaders.
    leader_ranks = [ranks[i] for i in leaders]
    leader_start = [t[i] for i in leaders]
    leader_end = _time_sra(sched, leader_ranks, numel, leader_start)
    for i, end in zip(leaders, leader_end):
        t[i] = end

    # Stage 3: leaders broadcast the final payload to local peers.
    for node, leader in zip(sorted(by_node), leaders):
        ready = sched.kernel(ranks[leader], numel, t[leader])
        t[leader] = ready
        for i in by_node[node]:
            if i == leader:
                continue
            arrive = sched.send(ranks[leader], ranks[i], numel, ready)
            t[i] = sched.kernel(ranks[i], numel, arrive)
    return t


@dataclass(frozen=True)
class TimedBucket:
    """One fusion bucket queued for overlapped transmission.

    ``ready`` is the seal time (the last member gradient's emission);
    ``first_needed`` / ``min_index`` reproduce the engine's
    first-needed-first-sent launch priority (see
    :func:`repro.core.overlap.schedule_buckets`).
    """

    name: str
    numel: int
    spec: CompressionSpec
    ready: float
    first_needed: int = 0
    min_index: int = 0


@dataclass
class OverlapStepTiming:
    """Timed comparison of overlapped vs. sequential bucket drains."""

    intervals: list[tuple[str, float, float]]  # (bucket, launch, end)
    overlapped_end: float
    sequential_end: float
    wire_bytes: int
    kernel_calls: int

    @property
    def overlap_ratio(self) -> float:
        """Sequential step time over overlapped step time (>1 is a win)."""
        if self.overlapped_end <= 0:
            return 1.0
        return self.sequential_end / self.overlapped_end


def time_overlapped_step(
    network: Network,
    ranks: list[int],
    buckets: list[TimedBucket],
    scheme: str = "sra",
    compute_end: float | None = None,
    chunk_streams: int = 1,
) -> OverlapStepTiming:
    """Time one training step's gradient exchange with and without overlap.

    The overlapped drain launches each bucket's allreduce on ``network``
    as soon as the single communication channel frees up and the bucket
    has sealed, choosing among sealed buckets by
    ``(first_needed, min_index)`` — the engine's launch discipline.  The
    sequential baseline replays the same buckets on a *fresh* network
    (same topology and backend), all starting only after ``compute_end``
    (backward fully finished), which is exactly what a
    synchronize-at-the-end DDP step costs.

    Wire bytes and kernel calls are accounted on the overlapped path;
    the sequential path moves identical payloads.
    """
    if not buckets:
        end = compute_end if compute_end is not None else 0.0
        return OverlapStepTiming([], end, end, 0, 0)
    if compute_end is None:
        compute_end = max(b.ready for b in buckets)

    pending = list(buckets)
    intervals: list[tuple[str, float, float]] = []
    wire_bytes = 0
    kernel_calls = 0
    free = 0.0
    while pending:
        sealed = [b for b in pending if b.ready <= free]
        if not sealed:
            free = min(b.ready for b in pending)
            continue
        chosen = min(sealed, key=lambda b: (b.first_needed, b.min_index))
        pending.remove(chosen)
        launch = max(free, chosen.ready)
        timing = time_allreduce(network, ranks, chosen.numel, chosen.spec,
                                scheme=scheme, ready=launch,
                                chunk_streams=chunk_streams)
        intervals.append((chosen.name, launch, timing.end))
        wire_bytes += timing.wire_bytes
        kernel_calls += timing.kernel_calls
        free = timing.end
    overlapped_end = max(compute_end, max(end for _, _, end in intervals))

    baseline_net = Network(network.topology, network.backend)
    t = compute_end
    for bucket in sorted(buckets, key=lambda b: b.min_index):
        timing = time_allreduce(baseline_net, ranks, bucket.numel,
                                bucket.spec, scheme=scheme, ready=t,
                                chunk_streams=chunk_streams)
        t = timing.end
    return OverlapStepTiming(intervals, overlapped_end, t,
                             wire_bytes, kernel_calls)


def time_partial_allreduce(
    network: Network,
    ranks: list[int],
    dense_numel: int,
    spec: CompressionSpec,
    quorum: int,
    ready: list[float],
    chunk_streams: int = 1,
    job: int | None = None,
) -> CollectiveTiming:
    """Timed quorum reduction: reduce over the first ``quorum`` ready
    ranks, then ship the result to the laggards.

    Fast ranks finish at the quorum-SRA end; laggards finish at
    ``max(own readiness, broadcast arrival)`` — they are never waited
    for, which is the whole point (straggler mitigation).
    """
    world = len(ranks)
    if not 1 <= quorum <= world:
        raise ValueError(f"quorum must be in [1, {world}], got {quorum}")
    if len(ready) != world:
        raise ValueError("ready times must match rank count")
    if world == 1:
        return CollectiveTiming([ready[0]], 0, 0)

    order = sorted(range(world), key=lambda i: ready[i])
    members = order[:quorum]
    laggards = order[quorum:]

    sched = _Scheduler(network, spec, streams=chunk_streams, job=job)
    member_ranks = [ranks[i] for i in members]
    member_start = [sched.op_start(ready[i]) for i in members]
    member_end = _time_sra(sched, member_ranks, dense_numel, member_start)

    end_times = [0.0] * world
    for idx, end in zip(members, member_end):
        end_times[idx] = end
    source = members[0]
    encode_done = sched.kernel(ranks[source], dense_numel,
                               end_times[source])
    for idx in laggards:
        arrive = sched.send(ranks[source], ranks[idx], dense_numel,
                            encode_done)
        done = sched.kernel(ranks[idx], dense_numel, arrive)
        end_times[idx] = max(ready[idx], done)
    return CollectiveTiming(end_times, sched.wire_bytes, sched.kernel_calls)

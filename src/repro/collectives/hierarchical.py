"""Hierarchical (intra-node + inter-node) allreduce.

Section 4, "Backend Details": CGX supports heterogeneous communication —
intra-node reduction over SHM-class transports, inter-node over
NCCL/MPI.  The composition is the standard three-stage hierarchy:

1. allreduce within each node (SRA over the fast local links);
2. allreduce of the node leaders' aggregates across nodes;
3. leaders broadcast the global result to their local peers.

Each value passes through at most five quantizations (two intra, two
inter, one broadcast), more than flat SRA's two — the price paid for
keeping inter-node traffic proportional to one gradient per node rather
than one per GPU, which is what makes compressed multi-node training
viable on gigabit links (Table 5).
"""

from __future__ import annotations

import numpy as np

from repro.compression import Compressor

from .base import (ReduceStats, check_buffers, compress_chunk,
                   decompress_chunk, deliver_chunk)
from .sra import sra_allreduce
from .trace import emit_recv, emit_send, phase_scope, rank_scope

__all__ = ["hierarchical_allreduce"]


def hierarchical_allreduce(
    buffers: list[np.ndarray],
    compressor: Compressor,
    rng: np.random.Generator,
    key: str = "",
    node_of: list[int] | None = None,
) -> tuple[list[np.ndarray], ReduceStats]:
    """Sum ``buffers`` with intra-node then inter-node reduction.

    Args:
        node_of: node index per rank; ``None`` (or one node) degrades to
            plain SRA.
    """
    numel = check_buffers(buffers)
    world = len(buffers)
    if node_of is None:
        node_of = [0] * world
    if len(node_of) != world:
        raise ValueError("node_of must give a node per rank")
    nodes = sorted(set(node_of))
    if len(nodes) == 1:
        return sra_allreduce(buffers, compressor, rng, key=key)

    stats = ReduceStats("hier", world, numel)
    members = {node: [r for r in range(world) if node_of[r] == node]
               for node in nodes}

    # Stage 1: intra-node allreduce (leaders end up with the node sum).
    node_sum: dict[int, np.ndarray] = {}
    for node in nodes:
        local = [buffers[r] for r in members[node]]
        with phase_scope(f"hier/intra{node}"), rank_scope(members[node]):
            reduced, sub = sra_allreduce(local, compressor, rng,
                                         key=f"{key}/intra{node}")
        stats.wire_bytes += sub.wire_bytes
        stats.compress_calls += sub.compress_calls
        stats.decompress_calls += sub.decompress_calls
        node_sum[node] = reduced[0]

    # Stage 2: inter-node allreduce among the leaders.
    leaders = [members[node][0] for node in nodes]
    leader_buffers = [node_sum[node] for node in nodes]
    with phase_scope("hier/inter"), rank_scope(leaders):
        reduced, sub = sra_allreduce(leader_buffers, compressor, rng,
                                     key=f"{key}/inter")
    stats.wire_bytes += sub.wire_bytes
    stats.compress_calls += sub.compress_calls
    stats.decompress_calls += sub.decompress_calls

    # Stage 3: leaders broadcast the global sum to their local peers.
    # The payload is encoded once and forwarded verbatim (equivalently:
    # leaders hold identical inputs and share the quantization seed), so
    # every rank on every node decodes bit-identical values — replicas
    # must not diverge across nodes.
    with phase_scope("hier/bcast"):
        wire = compress_chunk(compressor, reduced[0].ravel(), rng,
                              key=f"{key}/bcast", stats=stats,
                              rank=leaders[0], tag="bcast")
        follower_count = sum(len(members[node]) - 1 for node in nodes)
        stats.wire_bytes += wire.nbytes * max(0, follower_count - 1)
        for node in nodes:
            leader = members[node][0]
            for peer in members[node][1:]:
                emit_send(leader, peer, wire.nbytes, step=2, tag="bcast")
                # per-peer fault accounting, like every other broadcast
                # site; decoding stays canonical so replicas cannot
                # diverge across nodes
                deliver_chunk(wire, stats, leader, peer, step=2, tag="bcast")
        decoded = decompress_chunk(compressor, wire, stats).reshape(
            buffers[0].shape
        )
        for node in nodes:
            leader = members[node][0]
            for peer in members[node][1:]:
                emit_recv(peer, leader, wire.nbytes, step=2, tag="bcast")
    outputs = [decoded.copy() for _ in range(world)]
    stats.max_recompressions = 5
    return outputs, stats

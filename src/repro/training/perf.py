"""End-to-end step-time model: compute/communication overlap makespan.

For one data-parallel training step the model:

1. computes each GPU's forward+backward time from the calibrated GPU
   envelope (Table 1 anchors);
2. lays the backward pass on a timeline — each tensor's gradient becomes
   available after the backward work of all layers *above* it, which is
   why input embeddings are "synchronized last" (Appendix E);
3. plans communication packages through the CGX engine (per-layer for
   CGX, fused blobs for the NCCL baseline and QNCCL);
4. schedules every package's collective on the simulated network as soon
   as its gradients are ready, overlapping with the remaining backward
   compute; links and compression engines are shared resources, so
   contention between packages emerges naturally;
5. the step ends at max(backward end, last package end) plus the
   optimizer update (which needs the full synchronized gradient —
   gradient clipping forces this barrier, Technical Issue 3).

Throughput and scaling efficiency follow directly.  All of Figures 1,
3, 6, 9, 10, 11 and Tables 4-8 are projections of this function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Machine, Network, Topology, get_backend
from repro.cluster.gpu import GPUSpec
from repro.collectives import time_allreduce
from repro.compression import CompressionSpec
from repro.compression.metrics import kernel_seconds
from repro.core import CGXConfig, CommunicationEngine, LayerInfo, Package
from repro.core.engine import group_for_transmission
from repro.core.qnccl import QNCCL_KERNEL_OVERHEAD_FACTOR
from repro.models import ModelSpec

__all__ = ["StepTiming", "simulate_step", "simulate_machine_step",
           "single_gpu_step_time", "optimizer_time", "plan_step_packages",
           "package_ready_offsets", "OPTIMIZER_BYTES_PER_PARAM"]

#: bytes touched per parameter by the optimizer update (read grad, read
#: and write momentum + weights)
OPTIMIZER_BYTES_PER_PARAM = 16
#: effective HBM bandwidth for the optimizer kernel (bytes/s)
OPTIMIZER_MEM_BANDWIDTH = 800e9
#: forward share of one fwd+bwd unit (backward ~ 2x forward)
FORWARD_FRACTION = 1.0 / 3.0


@dataclass
class StepTiming:
    """Step-time breakdown for one simulated configuration."""

    n_gpus: int
    batch_per_gpu: int
    compute_time: float       # per-GPU forward+backward seconds
    step_time: float          # full step makespan
    comm_tail: float          # communication beyond the backward pass
    wire_bytes: int           # total payload bytes on the wire
    kernel_calls: int
    items_per_step: int       # global items (imgs or tokens) per step
    ideal_step_time: float    # single-GPU step time (linear-scaling basis)

    @property
    def throughput(self) -> float:
        """Global items/second."""
        return self.items_per_step / self.step_time

    @property
    def ideal_throughput(self) -> float:
        return self.items_per_step / self.ideal_step_time

    @property
    def scaling_efficiency(self) -> float:
        """Fraction of ideal linear scaling achieved."""
        return self.ideal_step_time / self.step_time


def single_gpu_step_time(spec: ModelSpec, gpu: GPUSpec,
                         batch_per_gpu: int) -> float:
    """Compute + optimizer time of one step on one GPU (no comm)."""
    compute = gpu.step_compute_time(spec, batch_per_gpu)
    return compute + optimizer_time(spec)


def optimizer_time(spec: ModelSpec) -> float:
    """Seconds of the (memory-bound) optimizer update for one step."""
    return spec.num_parameters * OPTIMIZER_BYTES_PER_PARAM / \
        OPTIMIZER_MEM_BANDWIDTH


def plan_step_packages(spec: ModelSpec, config: CGXConfig,
                       plan_mode: str = "cgx") -> list[Package]:
    """One step's transmission plan: engine packages, fused per mode.

    Shared by :func:`simulate_step` and the fleet scheduler's per-job
    runners (``repro.sched.fleet``), which plan once per job and replay
    the plan every step.
    """
    engine = CommunicationEngine(config)
    layers = [
        LayerInfo(t.name, t.numel, t.shape, t.kind)
        for t in spec.backward_order()
    ]
    packages = engine.plan(layers, mode=plan_mode)
    if plan_mode == "cgx":
        packages = group_for_transmission(packages, config.fusion_bytes)
    return packages


def package_ready_offsets(spec: ModelSpec, config: CGXConfig,
                          compute_time: float,
                          packages: list[Package]) -> list[float]:
    """Seconds after step start at which each package may launch.

    With overlap, a package seals when the last of its members' gradients
    is emitted by the backward pass; without overlap (GRACE-style hooks)
    every package waits for the whole backward pass.
    """
    ready = _gradient_ready_times(spec, compute_time)
    offsets = []
    for package in packages:
        if not config.overlap:
            offsets.append(compute_time)
        else:
            offsets.append(max(ready[layer.name] for layer in package.layers))
    return offsets


def _gradient_ready_times(spec: ModelSpec, compute_time: float
                          ) -> dict[str, float]:
    """When each tensor's gradient is emitted during the backward pass.

    Backward runs output-to-input; a tensor's gradient is ready once the
    cumulative backward work of all later-positioned modules plus its
    own is done.  Work is distributed proportionally to per-module
    forward FLOPs (backward of a module costs ~2x its forward).
    """
    forward_end = compute_time * FORWARD_FRACTION
    backward_span = compute_time - forward_end
    tensors = spec.backward_order()
    total_flops = sum(max(t.flops, 1.0) for t in tensors)
    ready: dict[str, float] = {}
    elapsed = 0.0
    for tensor in tensors:
        elapsed += max(tensor.flops, 1.0) / total_flops * backward_span
        ready[tensor.name] = forward_end + elapsed
    return ready


def simulate_step(
    spec: ModelSpec,
    gpu: GPUSpec,
    topology: Topology,
    config: CGXConfig,
    plan_mode: str = "cgx",
    batch_per_gpu: int | None = None,
    ranks: list[int] | None = None,
    kernel_factor: float = 1.0,
    network: Network | None = None,
    compute_jitter: list[float] | None = None,
) -> StepTiming:
    """Simulate one training step of ``spec`` on a topology of GPUs.

    Args:
        spec: full-size model inventory.
        gpu: compute envelope of every worker.
        topology: interconnect (single machine or multi-node cluster).
        config: CGX engine configuration (scheme, backend, compression,
            filters, per-layer overrides).
        plan_mode: ``cgx`` (per-layer packages) or ``fused`` (blob mode).
        batch_per_gpu: local batch; defaults to the recipe batch scaled
            by GPU memory.
        ranks: participating GPUs (default: all in the topology).
        kernel_factor: compression-kernel slowdown (QNCCL uses
            :data:`~repro.core.qnccl.QNCCL_KERNEL_OVERHEAD_FACTOR`).
        network: reuse an existing network (tests); default builds one
            from ``config.backend``.
        compute_jitter: per-rank compute-time multipliers (e.g.
            ``[0, 0, 0.5, 0]`` makes rank 2 a 1.5x straggler).  In a
            synchronous data-parallel step every collective waits for
            the slowest contributor — the cost that motivates the hybrid
            synchronization schemes the paper lists as future work.
    """
    ranks = ranks if ranks is not None else list(range(topology.n_gpus))
    n_gpus = len(ranks)
    if batch_per_gpu is None:
        batch_per_gpu = gpu.max_batch_per_gpu(spec)
    compute_time = gpu.step_compute_time(spec, batch_per_gpu)
    if config.compression.method == "powersgd":
        # PowerSGD forces fp32 training (incompatible with fp16 gradients),
        # forfeiting the AMP speedup the recipe otherwise uses.
        compute_time *= spec.fp32_compute_factor
    items = n_gpus * batch_per_gpu * spec.items_per_sample
    ideal = single_gpu_step_time(spec, gpu, batch_per_gpu)

    if n_gpus == 1:
        return StepTiming(1, batch_per_gpu, compute_time, ideal, 0.0, 0, 0,
                          items, ideal)

    net = network or Network(topology, get_backend(config.backend))
    packages = plan_step_packages(spec, config, plan_mode)
    if compute_jitter is None:
        compute_jitter = [0.0] * n_gpus
    if len(compute_jitter) != n_gpus:
        raise ValueError("compute_jitter must give one factor per rank")
    rank_scale = [1.0 + j for j in compute_jitter]
    offsets = package_ready_offsets(spec, config, compute_time, packages)
    slowest_compute = compute_time * max(rank_scale)

    last_end = 0.0
    wire_total = 0
    kernel_total = 0
    # Per-rank emission times (stragglers emit later); packages launch
    # in seal order.
    for package, offset in sorted(zip(packages, offsets),
                                  key=lambda po: po[1]):
        pkg_spec = package.spec
        pkg_ready = [offset * scale for scale in rank_scale]
        if pkg_spec.method == "powersgd":
            end, wire, kernels = _schedule_powersgd(
                net, ranks, package, max(pkg_ready), config
            )
        else:
            timing = time_allreduce(
                net, ranks, package.numel, pkg_spec,
                scheme=config.scheme, ready=pkg_ready,
                chunk_streams=config.chunk_streams,
                kernel_factor=kernel_factor,
            )
            end, wire, kernels = timing.end, timing.wire_bytes, \
                timing.kernel_calls
        last_end = max(last_end, end)
        wire_total += wire
        kernel_total += kernels

    compute_time = slowest_compute  # the step waits for the straggler
    optimizer = optimizer_time(spec)
    if config.cross_barrier:
        # Cross-barrier scheduling (BytePS-style): the communication tail
        # of step k may hide under step k+1's forward pass, so the
        # steady-state step time is the max of the two pipelines.  Note
        # the paper's Technical Issue 3: gradient clipping needs the full
        # synchronized gradient before the update, which is why the
        # Transformer recipes cannot use this mode.
        step_time = max(compute_time + optimizer, last_end)
    else:
        step_time = max(compute_time, last_end) + optimizer
    comm_tail = max(0.0, last_end - compute_time)
    return StepTiming(n_gpus, batch_per_gpu, compute_time, step_time,
                      comm_tail, wire_total, kernel_total, items, ideal)


def _schedule_powersgd(net: Network, ranks: list[int], package: Package,
                       pkg_ready: float, config: CGXConfig
                       ) -> tuple[float, int, int]:
    """PowerSGD path: power-iteration kernels + dense allreduce of P, Q.

    The factors are associative, so they ride a *dense* collective; the
    cost lives in the per-step matmuls (Technical Issue 1) and in the
    rank-r factor sizes.
    """
    layer = package.layers[0]
    rows = layer.shape[0] if len(layer.shape) >= 2 else 1
    cols = layer.numel // rows if rows > 1 else layer.numel
    if rows == 1 or cols == 1:
        timing = time_allreduce(net, ranks, layer.numel,
                                CompressionSpec("none"),
                                scheme=config.scheme, ready=pkg_ready)
        return timing.end, timing.wire_bytes, timing.kernel_calls
    rank_r = min(package.spec.rank, rows, cols)
    # two *dependent* collectives per matrix: allreduce P, orthonormalize,
    # compute Q = M^T P, allreduce Q (the PyTorch hook structure).
    mq_flops = 2.0 * rows * cols * rank_r
    kernel_p = kernel_seconds(layer.numel * 4, extra_flops=mq_flops)
    starts = [net.run_kernel(g, "compress0", kernel_p, pkg_ready)
              for g in ranks]
    p_timing = time_allreduce(net, ranks, rows * rank_r,
                              CompressionSpec("none"),
                              scheme=config.scheme, ready=starts)
    ortho_flops = 2.0 * rows * rank_r * rank_r + 2.0 * rows * cols * rank_r
    kernel_q = kernel_seconds(layer.numel * 4, extra_flops=ortho_flops)
    mid = [net.run_kernel(g, "compress0", kernel_q, t)
           for g, t in zip(ranks, p_timing.end_times)]
    q_timing = time_allreduce(net, ranks, cols * rank_r,
                              CompressionSpec("none"),
                              scheme=config.scheme, ready=mid)
    wire = p_timing.wire_bytes + q_timing.wire_bytes
    kernels = p_timing.kernel_calls + q_timing.kernel_calls + 2 * len(ranks)
    return q_timing.end, wire, kernels


def simulate_machine_step(
    machine: Machine,
    spec: ModelSpec,
    config: CGXConfig,
    n_gpus: int | None = None,
    plan_mode: str = "cgx",
    batch_per_gpu: int | None = None,
    kernel_factor: float | None = None,
) -> StepTiming:
    """Convenience wrapper: simulate a step on a catalog machine."""
    n = n_gpus or machine.n_gpus
    topology = machine.topology(n)
    if kernel_factor is None:
        kernel_factor = (QNCCL_KERNEL_OVERHEAD_FACTOR
                         if plan_mode == "fused"
                         and config.compression.method != "none" else 1.0)
    return simulate_step(spec, machine.gpu, topology, config,
                         plan_mode=plan_mode, batch_per_gpu=batch_per_gpu,
                         kernel_factor=kernel_factor)

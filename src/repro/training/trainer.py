"""Data-parallel trainer over simulated workers with real compression.

:class:`DataParallelTrainer` runs the full accuracy pipeline: N model
replicas with identical initialization, per-worker batch shards,
backward passes, gradient synchronization through the CGX engine (real
quantization + real reduction scheme), optional global-norm clipping on
the synchronized gradient (Technical Issue 3), optimizer steps, and
periodic evaluation.  The adaptive controller can be attached to retune
per-layer bit-widths during training (Figure 4 / Table 7 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import AdaptiveController, CGXConfig, \
    CGXDistributedDataParallel
from repro.nn.amp import AmpLevel, apply_grad_precision
from repro.nn.optim import Adam, SGD, clip_grad_norm

from .recipes import Recipe, get_recipe
from .tasks import Task, make_task

__all__ = ["TrainResult", "DataParallelTrainer", "train_family"]


@dataclass
class TrainResult:
    """Outcome of one training run."""

    task: str
    metric_name: str
    final_metric: float
    final_loss: float
    history: list[dict] = field(default_factory=list)
    compression_ratio: float = 1.0
    wire_bytes_total: int = 0
    steps: int = 0

    def metric_trace(self) -> list[tuple[int, float]]:
        return [(h["step"], h["metric"]) for h in self.history]


class DataParallelTrainer:
    """N-replica data-parallel training with CGX synchronization."""

    def __init__(
        self,
        task: Task,
        world_size: int = 4,
        config: CGXConfig | None = None,
        recipe: Recipe | None = None,
        mode: str = "cgx",
        seed: int = 0,
        adaptive: AdaptiveController | None = None,
        amp_level: AmpLevel = AmpLevel.O0,
    ):
        self.task = task
        self.recipe = recipe or get_recipe(task.name)
        self.config = config or CGXConfig.cgx_default(self.recipe.bucket_size)
        self.world_size = world_size
        self.seed = seed
        self.adaptive = adaptive
        self.amp_level = amp_level
        self.replicas = [task.build_model(seed) for _ in range(world_size)]
        self.ddp = CGXDistributedDataParallel(self.replicas, self.config,
                                              mode=mode, seed=seed)
        self.optimizers = [self._make_optimizer(r) for r in self.replicas]
        self._rng = np.random.default_rng(seed + 1)

    def _make_optimizer(self, replica):
        recipe = self.recipe
        if recipe.optimizer == "adam":
            return Adam(replica.parameters(), lr=recipe.lr,
                        weight_decay=recipe.weight_decay)
        return SGD(replica.parameters(), lr=recipe.lr,
                   momentum=recipe.momentum,
                   weight_decay=recipe.weight_decay)

    def train_step(self) -> float:
        """One synchronized step; returns the mean worker loss."""
        losses = []
        for replica in self.replicas:
            replica.zero_grad()
            batch = self.task.sample_batch(self._rng)
            logits = replica(batch[0])
            loss, grad = self.task.loss_and_grad(logits, batch)
            replica.backward(grad)
            if self.amp_level is not AmpLevel.O0:
                for _, param in replica.named_parameters():
                    if param.grad is not None:
                        param.grad = apply_grad_precision(param.grad,
                                                          self.amp_level)
            losses.append(loss)
        report = self.ddp.synchronize()
        self._last_report = report
        if self.adaptive is not None:
            grads = {name: param.grad
                     for name, param in self.replicas[0].named_parameters()
                     if param.grad is not None}
            self.adaptive.observe(grads)
        if self.recipe.grad_clip > 0:
            # clipping needs the synchronized global norm; apply per
            # replica after reduction (identical values on each).
            for replica in self.replicas:
                clip_grad_norm(replica.parameters(), self.recipe.grad_clip)
        for optimizer in self.optimizers:
            optimizer.step()
        return float(np.mean(losses))

    def train(self, steps: int | None = None,
              eval_every: int = 25) -> TrainResult:
        """Run the recipe (or ``steps``) and return the final metric."""
        steps = steps or self.recipe.steps
        history = []
        wire_total = 0
        loss = float("nan")
        for step in range(1, steps + 1):
            loss = self.train_step()
            wire_total += self._last_report.wire_bytes
            if step % eval_every == 0 or step == steps:
                metric = self.task.evaluate(self.replicas[0])
                history.append({"step": step, "loss": loss, "metric": metric})
        return TrainResult(
            task=self.task.name,
            metric_name=self.task.metric_name,
            final_metric=history[-1]["metric"] if history else float("nan"),
            final_loss=loss,
            history=history,
            compression_ratio=self._last_report.compression_ratio,
            wire_bytes_total=wire_total,
            steps=steps,
        )

    def in_sync(self) -> bool:
        return self.ddp.check_in_sync()


def train_family(
    family: str,
    world_size: int = 4,
    config: CGXConfig | None = None,
    steps: int | None = None,
    seed: int = 0,
    mode: str = "cgx",
    adaptive_method: str | None = None,
    eval_every: int = 25,
) -> TrainResult:
    """Convenience: build the task from its recipe and train it.

    ``config=None`` trains the uncompressed baseline (fp32, no engine
    side effects beyond averaging).
    """
    recipe = get_recipe(family)
    task = make_task(family, batch_size=recipe.batch_size, **recipe.kwargs())
    if config is None:
        from repro.compression import CompressionSpec

        config = CGXConfig(compression=CompressionSpec("none"))
    adaptive = None
    if adaptive_method is not None:
        adaptive = AdaptiveController(config, method=adaptive_method)
    trainer = DataParallelTrainer(task, world_size=world_size, config=config,
                                  recipe=recipe, seed=seed, mode=mode,
                                  adaptive=adaptive)
    return trainer.train(steps=steps, eval_every=eval_every)

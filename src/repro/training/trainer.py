"""Data-parallel trainer over simulated workers with real compression.

:class:`DataParallelTrainer` runs the full accuracy pipeline: N model
replicas with identical initialization, per-worker batch shards,
backward passes, gradient synchronization through the CGX engine (real
quantization + real reduction scheme), optional global-norm clipping on
the synchronized gradient (Technical Issue 3), optimizer steps, and
periodic evaluation.  The adaptive controller can be attached to retune
per-layer bit-widths during training (Figure 4 / Table 7 experiments).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core import AdaptiveController, CGXConfig, \
    CGXDistributedDataParallel, OverlapDelays
from repro.faults import (DRAIN_TOLERANCE, CheckpointStore, ElasticCoordinator,
                          FaultPlan, HealthMonitor, HealthPolicy,
                          HeartbeatTransport, PlanRuntime, ResiliencePolicy,
                          Supervisor, elastic_events, fleet_alpha_scale,
                          inject_data_path, oracle_guard, select_members,
                          select_participants)
from repro.nn.amp import AmpLevel, apply_grad_precision
from repro.nn.optim import Adam, SGD, clip_grad_norm

from .recipes import Recipe, get_recipe
from .tasks import Task, make_task

__all__ = ["TrainResult", "DataParallelTrainer", "train_family"]


def _clone_tree(node):
    """Deep-copy every ndarray in a nested snapshot structure."""
    if isinstance(node, np.ndarray):
        return node.copy()
    if isinstance(node, dict):
        return {k: _clone_tree(v) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_clone_tree(v) for v in node]
    return node


@dataclass
class TrainResult:
    """Outcome of one training run."""

    task: str
    metric_name: str
    final_metric: float
    final_loss: float
    history: list[dict] = field(default_factory=list)
    compression_ratio: float = 1.0
    wire_bytes_total: int = 0
    steps: int = 0
    retries_total: int = 0          # fault-channel retransmissions
    fault_summary: dict | None = None  # FaultCounters.to_dict() of the run

    def metric_trace(self) -> list[tuple[int, float]]:
        return [(h["step"], h["metric"]) for h in self.history]


class DataParallelTrainer:
    """N-replica data-parallel training with CGX synchronization."""

    def __init__(
        self,
        task: Task,
        world_size: int = 4,
        config: CGXConfig | None = None,
        recipe: Recipe | None = None,
        mode: str = "cgx",
        seed: int = 0,
        adaptive: AdaptiveController | None = None,
        amp_level: AmpLevel = AmpLevel.O0,
        fault_plan: FaultPlan | None = None,
        policy: ResiliencePolicy | None = None,
        supervised: bool = False,
        health: HealthPolicy | None = None,
        store: CheckpointStore | None = None,
        overlap: bool = False,
        overlap_delays: OverlapDelays | None = None,
    ):
        self.task = task
        self.recipe = recipe or get_recipe(task.name)
        self.config = config or CGXConfig.cgx_default(self.recipe.bucket_size)
        self.world_size = world_size
        self.seed = seed
        self.adaptive = adaptive
        self.amp_level = amp_level
        self.replicas = [task.build_model(seed) for _ in range(world_size)]
        self.ddp = CGXDistributedDataParallel(self.replicas, self.config,
                                              mode=mode, seed=seed)
        self.optimizers = [self._make_optimizer(r) for r in self.replicas]
        self._rng = np.random.default_rng(seed + 1)
        self.fault_runtime: PlanRuntime | None = None
        if supervised and fault_plan is None:
            # supervised mode always runs the health loop, even with
            # nothing injected (the zero-false-positive baseline)
            fault_plan = FaultPlan("fault-free", world_size, seed)
        if fault_plan is not None:
            if fault_plan.world != world_size:
                raise ValueError(
                    f"fault plan is for world {fault_plan.world}, "
                    f"trainer has {world_size} workers")
            self.fault_runtime = PlanRuntime(fault_plan, policy)
        self.elastic: ElasticCoordinator | None = None
        if fault_plan is not None and elastic_events(fault_plan):
            if overlap:
                raise ValueError(
                    "elastic plans require overlap=False (the overlapped "
                    "engine fixes its bucket plan per world size; respec "
                    "on composition change is sequential-mode only)")
            assert self.fault_runtime is not None
            self.elastic = ElasticCoordinator(self.fault_runtime, world_size,
                                              supervised=supervised)
        self.supervised = supervised
        self.health = health or HealthPolicy()
        self.store = store
        self.heartbeat: HeartbeatTransport | None = None
        self.monitor: HealthMonitor | None = None
        self.supervisor: Supervisor | None = None
        if supervised:
            assert self.fault_runtime is not None
            capacity = self.fault_runtime.plan.max_world
            self.heartbeat = HeartbeatTransport(self.fault_runtime,
                                                world_size, self.health,
                                                capacity=capacity)
            self.monitor = HealthMonitor(world_size, self.health)
            self.supervisor = Supervisor(world_size,
                                         self.fault_runtime.policy,
                                         self.health, self.fault_runtime)
        self._pending_escalation = False
        self._step_index = 0
        self._batches_drawn = 0
        self._dead_prev: set[int] = set()
        # overlapped engine mode: per-layer gradients enqueue for
        # reduction as their backward stages finish.  Opt-in and
        # independent of config.overlap (which only drives the timed
        # perf model) so existing sequential runs keep their exact
        # rng-consumption order.
        self.overlap = overlap
        self.overlap_delays = overlap_delays
        self._ready_order: list[str] = []
        self._ready_seen: set[str] = set()
        if overlap:
            if mode != "cgx":
                raise ValueError("overlap=True requires cgx mode")

            def on_grad_ready(names: list[str]) -> None:
                for name in names:
                    if name not in self._ready_seen:
                        self._ready_seen.add(name)
                        self._ready_order.append(name)

            # replica 0's emission order stands for all replicas (same
            # model, same deterministic backward traversal)
            self.replicas[0].register_grad_ready_hook(on_grad_ready)

    def _make_optimizer(self, replica):
        recipe = self.recipe
        if recipe.optimizer == "adam":
            return Adam(replica.parameters(), lr=recipe.lr,
                        weight_decay=recipe.weight_decay)
        return SGD(replica.parameters(), lr=recipe.lr,
                   momentum=recipe.momentum,
                   weight_decay=recipe.weight_decay)

    def train_step(self) -> float:
        """One synchronized step; returns the mean live-worker loss.

        With a fault plan attached, the step first advances the plan's
        cursor: crashed ranks skip compute and contribute zeros (their
        optimizer state freezes until rejoin), ranks over the straggler
        budget are demoted to the carry-buffer quorum, and the mean is
        re-normalized over the contributing ranks.  Rejoining ranks
        adopt a live peer's weights and optimizer state before the step.

        In ``supervised`` mode the recovery decisions above come from
        the heartbeat-fed :class:`~repro.faults.health.Supervisor`
        instead of the plan oracle: the plan still *causes* crashes and
        slowdowns (it is the physics), but membership, demotion, rejoin
        admission and escalation are driven purely by observed beats —
        an :func:`~repro.faults.plan.oracle_guard` tripwire counts any
        plan query made on the decision path into
        ``counters.oracle_reads`` (certified zero by HLT003).
        """
        if self._pending_escalation:
            self._restore_from_store()
        self._step_index += 1
        runtime = self.fault_runtime
        coord = self.elastic
        participants: list[int] | None = None
        average_over: int | None = None
        dead: set[int] = set()
        members: list[int] | None = None
        joined: tuple[int, ...] = ()
        drained = True
        if runtime is not None:
            faults = runtime.advance(self._step_index)
            dead = faults.dead_ranks()
        if coord is not None:
            # control plane: delivered notices only, never the physics
            booted = coord.poll_notices(self._step_index, faults)
            drained = self.ddp.engine.banked_carry_norm() <= DRAIN_TOLERANCE
            for rank in booted:
                self._ensure_replica(rank)
                if self.supervised:
                    assert self.monitor is not None \
                        and self.supervisor is not None
                    self.monitor.activate(rank, self._step_index)
                    self.supervisor.register_provision(rank)
        if self.supervised:
            assert runtime is not None and self.heartbeat is not None \
                and self.monitor is not None and self.supervisor is not None
            beat_ranks = coord.machine_ranks() if coord is not None else None
            scale_of = coord.gpu_scale if coord is not None else None
            arrivals = self.heartbeat.beats(self._step_index, ranks=beat_ranks,
                                            compute_scale_of=scale_of)
            with oracle_guard() as reads:
                cards = self.monitor.observe(self._step_index, arrivals)
                decision = self.supervisor.decide(self._step_index, cards)
            runtime.counters.oracle_reads += len(reads)
            # accounting (not a decision): a fresh suspicion of a rank
            # that is actually alive is a false positive
            for rank in decision.newly_suspected:
                if rank not in dead:
                    runtime.counters.false_suspicions += 1
            if coord is not None:
                coord.confirm(decision.admitted)
                edec = coord.admit(self._step_index, drained)
                members = list(edec.members)
                joined = edec.joined
                for rank in joined:
                    self._adopt_peer_state(rank, set(decision.believed_dead))
                for rank in decision.admitted:
                    if not coord.is_provisioned(rank):
                        self._adopt_peer_state(rank,
                                               set(decision.believed_dead))
            else:
                for rank in decision.admitted:
                    self._adopt_peer_state(rank, set(decision.believed_dead))
            self._dead_prev = set(decision.believed_dead)
            if members is not None:
                mset = set(members)
                quorum = [r for r in decision.participants if r in mset]
                if quorum and len(quorum) < len(members):
                    participants = quorum
                    runtime.counters.quorum_steps += 1
                believed = set(decision.believed_dead) & mset
                if believed:
                    average_over = len(members) - len(believed)
            else:
                if len(decision.participants) < self.world_size:
                    participants = list(decision.participants)
                    runtime.counters.quorum_steps += 1
                if decision.believed_dead:
                    average_over = (self.world_size
                                    - len(decision.believed_dead))
            if decision.escalate:
                runtime.counters.escalations += 1
                if self.store is not None:
                    self._pending_escalation = True
        elif runtime is not None:
            if coord is not None:
                edec = coord.admit(self._step_index, drained)
                members = list(edec.members)
                joined = edec.joined
                for rank in joined:
                    self._adopt_peer_state(rank, dead)
            for rank in sorted(self._dead_prev - dead):
                self._adopt_peer_state(rank, dead)
            self._dead_prev = set(dead)
            if members is not None:
                quorum = select_members(faults, runtime.policy, members)
                dead_members = dead & set(members)
                if len(quorum) < len(members):
                    participants = quorum
                    runtime.counters.quorum_steps += 1
                if dead_members:
                    average_over = len(members) - len(dead_members)
            else:
                quorum = select_participants(faults, runtime.policy)
                if len(quorum) < self.world_size:
                    participants = quorum
                    runtime.counters.quorum_steps += 1
                if dead:
                    average_over = self.world_size - len(dead)

        losses = []
        self._ready_order = []
        self._ready_seen = set()
        compute_ranks = members if members is not None \
            else range(len(self.replicas))
        for rank in compute_ranks:
            replica = self.replicas[rank]
            replica.zero_grad()
            if rank in dead:
                continue  # crashed: no compute, zero contribution
            batch = self.task.sample_batch(self._rng)
            self._batches_drawn += 1
            logits = replica(batch[0])
            loss, grad = self.task.loss_and_grad(logits, batch)
            replica.backward(grad)
            if self.amp_level is not AmpLevel.O0:
                for _, param in replica.named_parameters():
                    if param.grad is not None:
                        param.grad = apply_grad_precision(param.grad,
                                                          self.amp_level)
            losses.append(loss)

        inject = inject_data_path(runtime) if runtime is not None \
            else nullcontext()
        with inject:
            if self.overlap:
                report = self.ddp.synchronize_overlapped(
                    ready_order=self._complete_ready_order(),
                    participants=participants, average_over=average_over,
                    step=self._step_index, delays=self.overlap_delays)
                # completion barrier: every consumer below (adaptive
                # observation, clipping, optimizer) runs only after all
                # buckets landed — certified statically by OVL001
                self.ddp.mark_consumed(self._step_index)
            else:
                report = self.ddp.synchronize(participants=participants,
                                              average_over=average_over,
                                              members=members)
        self._last_report = report
        ref = self._reference_rank()
        if self.adaptive is not None:
            grads = {name: param.grad
                     for name, param in
                     self.replicas[ref].named_parameters()
                     if param.grad is not None}
            self.adaptive.observe(grads)
        if self.recipe.grad_clip > 0:
            # clipping needs the synchronized global norm; apply per
            # replica after reduction (identical values on each).
            for rank in compute_ranks:
                clip_grad_norm(self.replicas[rank].parameters(),
                               self.recipe.grad_clip)
        for rank in compute_ranks:
            if rank not in dead:
                self.optimizers[rank].step()
        if coord is not None:
            assert runtime is not None
            self._elastic_end_step(coord, runtime, joined, dead)
        if self.supervised and self.store is not None \
                and self._step_index % self.health.checkpoint_every == 0:
            self.store.save(self.capture_state(), self._step_index)
            if runtime is not None:
                runtime.counters.store_writes += 1
                runtime.record("store_write")
        return float(np.mean(losses))

    def _reference_rank(self) -> int:
        """Lowest current member: the replica evaluation/statistics read.

        Rank 0 in fixed worlds; under elastic membership rank 0 itself
        may have been preempted away, so the reference follows the
        lowest live member (all members hold identical weights).
        """
        if self.elastic is not None:
            return min(self.elastic.members)
        return 0

    def _ensure_replica(self, rank: int) -> None:
        """Grow the replica/optimizer lists to cover a provisioned rank.

        ``self.replicas`` is the same list object the DDP wrapper holds,
        so appending here grows the reduction world in lock-step.  The
        fresh model's seed-deterministic init is immediately overwritten
        by the warm start at admission.
        """
        while len(self.replicas) <= rank:
            replica = self.task.build_model(self.seed)
            self.replicas.append(replica)
            self.optimizers.append(self._make_optimizer(replica))

    def _elastic_end_step(self, coord: ElasticCoordinator,
                          runtime: PlanRuntime, joined: tuple[int, ...],
                          dead: set[int]) -> None:
        """Graceful exits + respec after the step's reduction landed."""
        drained = self.ddp.engine.banked_carry_norm() <= DRAIN_TOLERANCE
        exited = coord.end_step(self._step_index, drained, dead)
        if exited:
            # the departing machines' last contribution is in this
            # step's reduced state: persist it before they vanish
            if self.store is not None:
                self.store.save(self.capture_state(), self._step_index)
                runtime.counters.store_writes += 1
                runtime.record("store_write")
            for rank in exited:
                runtime.record("drain_checkpoint", rank=rank)
                if self.supervised:
                    assert self.supervisor is not None \
                        and self.monitor is not None
                    self.supervisor.mark_departed(rank)
                    self.monitor.deactivate(rank)
        if (joined or exited) and self.adaptive is not None:
            gpus = [coord.rank_gpus[r] for r in coord.member_list()]
            bits = self.adaptive.on_composition_change(
                len(coord.members), alpha_scale=fleet_alpha_scale(gpus))
            runtime.record("respec", world=len(coord.members),
                           layers=len(bits))
            runtime.counters.respecs += 1

    def _complete_ready_order(self) -> list[str]:
        """The step's gradient emission order, covering every parameter.

        Hook-reported names come first (true emission order of replica
        0's backward).  Parameters the hooks did not cover — stages
        without a notification, or every parameter when rank 0 was dead
        this step — append in reverse registration order, the
        conservative ready-at-backward-end default.
        """
        order = list(self._ready_order)
        seen = set(self._ready_seen)
        for name, _ in reversed(list(self.replicas[0].named_parameters())):
            if name not in seen:
                seen.add(name)
                order.append(name)
        return order

    # -- fault recovery ----------------------------------------------------
    def _adopt_peer_state(self, rank: int, dead: set[int]) -> None:
        """A rejoining ``rank`` copies weights + optimizer state from a peer."""
        pool = self.elastic.member_list() if self.elastic is not None \
            else range(self.world_size)
        peers = [r for r in pool
                 if r != rank and r not in dead and r not in self._dead_prev]
        if not peers:
            return  # no healthy source; keep the stale weights
        source = peers[0]
        src_params = dict(self.replicas[source].named_parameters())
        for name, param in self.replicas[rank].named_parameters():
            param.data[...] = src_params[name].data
            param.grad = None
        self.optimizers[rank].load_state_dict(
            self.optimizers[source].state_dict())
        if self.fault_runtime is not None:
            self.fault_runtime.counters.checkpoint_restores += 1
            self.fault_runtime.record("state_transfer", rank=rank,
                                      source=source)

    def checkpoint(self) -> dict:
        """Snapshot replica 0's weights + optimizer state (all in-sync).

        Every array in the snapshot is deep-copied: an optimizer whose
        ``state_dict`` hands back live buffers must not let later
        training mutate a checkpoint taken earlier.
        """
        weights = {name: param.data.copy()
                   for name, param in self.replicas[0].named_parameters()}
        return {"step": self._step_index, "weights": weights,
                "optimizer": _clone_tree(self.optimizers[0].state_dict())}

    def restore(self, snapshot: dict) -> None:
        """Reset every replica to a :meth:`checkpoint` snapshot."""
        for replica, optimizer in zip(self.replicas, self.optimizers):
            for name, param in replica.named_parameters():
                param.data[...] = snapshot["weights"][name]
                param.grad = None
            optimizer.load_state_dict(snapshot["optimizer"])
        self._step_index = int(snapshot["step"])
        if self.fault_runtime is not None:
            self.fault_runtime.counters.checkpoint_restores += 1

    # -- durable full-state checkpoints ------------------------------------
    def capture_state(self) -> dict:
        """Everything bit-identical resume needs, in store-compatible form.

        Per-rank weights and optimizer state (crashed ranks' state is
        legitimately stale), the step index, the data-order cursor, both
        RNG stream states, and the engine's stateful pieces (error-
        feedback residuals, quorum carry buffers).
        """
        return {
            "schema": 1,
            "step": self._step_index,
            "batches_drawn": self._batches_drawn,
            "weights": [
                {name: param.data.copy()
                 for name, param in replica.named_parameters()}
                for replica in self.replicas
            ],
            "optimizers": [_clone_tree(opt.state_dict())
                           for opt in self.optimizers],
            "trainer_rng": self._rng.bit_generator.state,
            "ddp_rng": self.ddp.rng.bit_generator.state,
            "engine": self.ddp.engine.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state` (works on a fresh trainer).

        A snapshot taken after elastic growth carries more replicas
        than a fresh trainer starts with; the extra slots are recreated
        before their state is poured back in.
        """
        self._ensure_replica(len(state["weights"]) - 1)
        for rank, (replica, optimizer) in enumerate(
                zip(self.replicas, self.optimizers)):
            weights = state["weights"][rank]
            for name, param in replica.named_parameters():
                param.data[...] = weights[name]
                param.grad = None
            optimizer.load_state_dict(state["optimizers"][rank])
        self._step_index = int(state["step"])
        self._batches_drawn = int(state["batches_drawn"])
        self._rng.bit_generator.state = state["trainer_rng"]
        self.ddp.rng.bit_generator.state = state["ddp_rng"]
        self.ddp.engine.load_state_dict(state["engine"])

    def _restore_from_store(self) -> None:
        """Deferred escalation: rewind to the newest valid checkpoint."""
        self._pending_escalation = False
        runtime = self.fault_runtime
        if self.store is None:
            return

        def note_corrupt(step: int, exc: Exception) -> None:
            if runtime is not None:
                runtime.counters.store_corrupt_detected += 1
                runtime.record("store_corrupt", restore_step=step)

        loaded = self.store.load_latest(on_corrupt=note_corrupt)
        if loaded is None:
            return
        step, state = loaded
        self.restore_state(state)
        if self.monitor is not None:
            self.monitor.reset()
        if self.supervisor is not None:
            self.supervisor.reset()
        self._dead_prev = set()
        if runtime is not None:
            runtime.counters.checkpoint_restores += 1
            runtime.record("escalation_restore", restore_step=step)

    def train(self, steps: int | None = None,
              eval_every: int = 25) -> TrainResult:
        """Run the recipe (or ``steps``) and return the final metric."""
        steps = steps or self.recipe.steps
        history = []
        wire_total = 0
        retries_total = 0
        loss = float("nan")
        for step in range(1, steps + 1):
            loss = self.train_step()
            wire_total += self._last_report.wire_bytes
            retries_total += self._last_report.retries
            if step % eval_every == 0 or step == steps:
                metric = self.task.evaluate(
                    self.replicas[self._reference_rank()])
                history.append({"step": step, "loss": loss, "metric": metric})
        return TrainResult(
            task=self.task.name,
            metric_name=self.task.metric_name,
            final_metric=history[-1]["metric"] if history else float("nan"),
            final_loss=loss,
            history=history,
            compression_ratio=self._last_report.compression_ratio,
            wire_bytes_total=wire_total,
            steps=steps,
            retries_total=retries_total,
            fault_summary=(self.fault_runtime.counters.to_dict()
                           if self.fault_runtime is not None else None),
        )

    def in_sync(self) -> bool:
        if self.elastic is not None:
            return self.ddp.check_in_sync(members=self.elastic.member_list())
        return self.ddp.check_in_sync()


def train_family(
    family: str,
    world_size: int = 4,
    config: CGXConfig | None = None,
    steps: int | None = None,
    seed: int = 0,
    mode: str = "cgx",
    adaptive_method: str | None = None,
    eval_every: int = 25,
    fault_plan: FaultPlan | None = None,
    policy: ResiliencePolicy | None = None,
    supervised: bool = False,
    health: HealthPolicy | None = None,
    store: CheckpointStore | None = None,
    overlap: bool = False,
    overlap_delays: OverlapDelays | None = None,
) -> TrainResult:
    """Convenience: build the task from its recipe and train it.

    ``config=None`` trains the uncompressed baseline (fp32, no engine
    side effects beyond averaging).
    """
    recipe = get_recipe(family)
    task = make_task(family, batch_size=recipe.batch_size, **recipe.kwargs())
    if config is None:
        from repro.compression import CompressionSpec

        config = CGXConfig(compression=CompressionSpec("none"))
    adaptive = None
    if adaptive_method is not None:
        adaptive = AdaptiveController(config, method=adaptive_method)
    trainer = DataParallelTrainer(task, world_size=world_size, config=config,
                                  recipe=recipe, seed=seed, mode=mode,
                                  adaptive=adaptive, fault_plan=fault_plan,
                                  policy=policy, supervised=supervised,
                                  health=health, store=store,
                                  overlap=overlap,
                                  overlap_delays=overlap_delays)
    return trainer.train(steps=steps, eval_every=eval_every)

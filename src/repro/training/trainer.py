"""Data-parallel trainer over simulated workers with real compression.

:class:`DataParallelTrainer` runs the full accuracy pipeline: N model
replicas with identical initialization, per-worker batch shards,
backward passes, gradient synchronization through the CGX engine (real
quantization + real reduction scheme), optional global-norm clipping on
the synchronized gradient (Technical Issue 3), optimizer steps, and
periodic evaluation.  The adaptive controller can be attached to retune
per-layer bit-widths during training (Figure 4 / Table 7 experiments).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core import AdaptiveController, CGXConfig, \
    CGXDistributedDataParallel
from repro.faults import (FaultPlan, PlanRuntime, ResiliencePolicy,
                          inject_data_path, select_participants)
from repro.nn.amp import AmpLevel, apply_grad_precision
from repro.nn.optim import Adam, SGD, clip_grad_norm

from .recipes import Recipe, get_recipe
from .tasks import Task, make_task

__all__ = ["TrainResult", "DataParallelTrainer", "train_family"]


@dataclass
class TrainResult:
    """Outcome of one training run."""

    task: str
    metric_name: str
    final_metric: float
    final_loss: float
    history: list[dict] = field(default_factory=list)
    compression_ratio: float = 1.0
    wire_bytes_total: int = 0
    steps: int = 0
    retries_total: int = 0          # fault-channel retransmissions
    fault_summary: dict | None = None  # FaultCounters.to_dict() of the run

    def metric_trace(self) -> list[tuple[int, float]]:
        return [(h["step"], h["metric"]) for h in self.history]


class DataParallelTrainer:
    """N-replica data-parallel training with CGX synchronization."""

    def __init__(
        self,
        task: Task,
        world_size: int = 4,
        config: CGXConfig | None = None,
        recipe: Recipe | None = None,
        mode: str = "cgx",
        seed: int = 0,
        adaptive: AdaptiveController | None = None,
        amp_level: AmpLevel = AmpLevel.O0,
        fault_plan: FaultPlan | None = None,
        policy: ResiliencePolicy | None = None,
    ):
        self.task = task
        self.recipe = recipe or get_recipe(task.name)
        self.config = config or CGXConfig.cgx_default(self.recipe.bucket_size)
        self.world_size = world_size
        self.seed = seed
        self.adaptive = adaptive
        self.amp_level = amp_level
        self.replicas = [task.build_model(seed) for _ in range(world_size)]
        self.ddp = CGXDistributedDataParallel(self.replicas, self.config,
                                              mode=mode, seed=seed)
        self.optimizers = [self._make_optimizer(r) for r in self.replicas]
        self._rng = np.random.default_rng(seed + 1)
        self.fault_runtime: PlanRuntime | None = None
        if fault_plan is not None:
            if fault_plan.world != world_size:
                raise ValueError(
                    f"fault plan is for world {fault_plan.world}, "
                    f"trainer has {world_size} workers")
            self.fault_runtime = PlanRuntime(fault_plan, policy)
        self._step_index = 0
        self._dead_prev: set[int] = set()

    def _make_optimizer(self, replica):
        recipe = self.recipe
        if recipe.optimizer == "adam":
            return Adam(replica.parameters(), lr=recipe.lr,
                        weight_decay=recipe.weight_decay)
        return SGD(replica.parameters(), lr=recipe.lr,
                   momentum=recipe.momentum,
                   weight_decay=recipe.weight_decay)

    def train_step(self) -> float:
        """One synchronized step; returns the mean live-worker loss.

        With a fault plan attached, the step first advances the plan's
        cursor: crashed ranks skip compute and contribute zeros (their
        optimizer state freezes until rejoin), ranks over the straggler
        budget are demoted to the carry-buffer quorum, and the mean is
        re-normalized over the contributing ranks.  Rejoining ranks
        adopt a live peer's weights and optimizer state before the step.
        """
        self._step_index += 1
        runtime = self.fault_runtime
        participants: list[int] | None = None
        average_over: int | None = None
        dead: set[int] = set()
        if runtime is not None:
            faults = runtime.advance(self._step_index)
            dead = faults.dead_ranks()
            for rank in sorted(self._dead_prev - dead):
                self._adopt_peer_state(rank, dead)
            self._dead_prev = dead
            quorum = select_participants(faults, runtime.policy)
            if len(quorum) < self.world_size:
                participants = quorum
                runtime.counters.quorum_steps += 1
            if dead:
                average_over = self.world_size - len(dead)

        losses = []
        for rank, replica in enumerate(self.replicas):
            replica.zero_grad()
            if rank in dead:
                continue  # crashed: no compute, zero contribution
            batch = self.task.sample_batch(self._rng)
            logits = replica(batch[0])
            loss, grad = self.task.loss_and_grad(logits, batch)
            replica.backward(grad)
            if self.amp_level is not AmpLevel.O0:
                for _, param in replica.named_parameters():
                    if param.grad is not None:
                        param.grad = apply_grad_precision(param.grad,
                                                          self.amp_level)
            losses.append(loss)

        inject = inject_data_path(runtime) if runtime is not None \
            else nullcontext()
        with inject:
            report = self.ddp.synchronize(participants=participants,
                                          average_over=average_over)
        self._last_report = report
        if self.adaptive is not None:
            grads = {name: param.grad
                     for name, param in self.replicas[0].named_parameters()
                     if param.grad is not None}
            self.adaptive.observe(grads)
        if self.recipe.grad_clip > 0:
            # clipping needs the synchronized global norm; apply per
            # replica after reduction (identical values on each).
            for replica in self.replicas:
                clip_grad_norm(replica.parameters(), self.recipe.grad_clip)
        for rank, optimizer in enumerate(self.optimizers):
            if rank not in dead:
                optimizer.step()
        return float(np.mean(losses))

    # -- fault recovery ----------------------------------------------------
    def _adopt_peer_state(self, rank: int, dead: set[int]) -> None:
        """A rejoining ``rank`` copies weights + optimizer state from a peer."""
        peers = [r for r in range(self.world_size)
                 if r != rank and r not in dead and r not in self._dead_prev]
        if not peers:
            return  # no healthy source; keep the stale weights
        source = peers[0]
        src_params = dict(self.replicas[source].named_parameters())
        for name, param in self.replicas[rank].named_parameters():
            param.data[...] = src_params[name].data
            param.grad = None
        self.optimizers[rank].load_state_dict(
            self.optimizers[source].state_dict())
        if self.fault_runtime is not None:
            self.fault_runtime.counters.checkpoint_restores += 1
            self.fault_runtime.record("state_transfer", rank=rank,
                                      source=source)

    def checkpoint(self) -> dict:
        """Snapshot replica 0's weights + optimizer state (all in-sync)."""
        weights = {name: param.data.copy()
                   for name, param in self.replicas[0].named_parameters()}
        return {"step": self._step_index, "weights": weights,
                "optimizer": self.optimizers[0].state_dict()}

    def restore(self, snapshot: dict) -> None:
        """Reset every replica to a :meth:`checkpoint` snapshot."""
        for replica, optimizer in zip(self.replicas, self.optimizers):
            for name, param in replica.named_parameters():
                param.data[...] = snapshot["weights"][name]
                param.grad = None
            optimizer.load_state_dict(snapshot["optimizer"])
        self._step_index = int(snapshot["step"])
        if self.fault_runtime is not None:
            self.fault_runtime.counters.checkpoint_restores += 1

    def train(self, steps: int | None = None,
              eval_every: int = 25) -> TrainResult:
        """Run the recipe (or ``steps``) and return the final metric."""
        steps = steps or self.recipe.steps
        history = []
        wire_total = 0
        retries_total = 0
        loss = float("nan")
        for step in range(1, steps + 1):
            loss = self.train_step()
            wire_total += self._last_report.wire_bytes
            retries_total += self._last_report.retries
            if step % eval_every == 0 or step == steps:
                metric = self.task.evaluate(self.replicas[0])
                history.append({"step": step, "loss": loss, "metric": metric})
        return TrainResult(
            task=self.task.name,
            metric_name=self.task.metric_name,
            final_metric=history[-1]["metric"] if history else float("nan"),
            final_loss=loss,
            history=history,
            compression_ratio=self._last_report.compression_ratio,
            wire_bytes_total=wire_total,
            steps=steps,
            retries_total=retries_total,
            fault_summary=(self.fault_runtime.counters.to_dict()
                           if self.fault_runtime is not None else None),
        )

    def in_sync(self) -> bool:
        return self.ddp.check_in_sync()


def train_family(
    family: str,
    world_size: int = 4,
    config: CGXConfig | None = None,
    steps: int | None = None,
    seed: int = 0,
    mode: str = "cgx",
    adaptive_method: str | None = None,
    eval_every: int = 25,
    fault_plan: FaultPlan | None = None,
    policy: ResiliencePolicy | None = None,
) -> TrainResult:
    """Convenience: build the task from its recipe and train it.

    ``config=None`` trains the uncompressed baseline (fp32, no engine
    side effects beyond averaging).
    """
    recipe = get_recipe(family)
    task = make_task(family, batch_size=recipe.batch_size, **recipe.kwargs())
    if config is None:
        from repro.compression import CompressionSpec

        config = CGXConfig(compression=CompressionSpec("none"))
    adaptive = None
    if adaptive_method is not None:
        adaptive = AdaptiveController(config, method=adaptive_method)
    trainer = DataParallelTrainer(task, world_size=world_size, config=config,
                                  recipe=recipe, seed=seed, mode=mode,
                                  adaptive=adaptive, fault_plan=fault_plan,
                                  policy=policy)
    return trainer.train(steps=steps, eval_every=eval_every)

"""Training tasks: model family + synthetic dataset + loss + metric.

A :class:`Task` bundles everything the trainer needs for one accuracy
experiment, mirroring the paper's model/task pairs (Table 3):
ResNet50/VGG16/ViT on image classification, Transformer-XL/GPT-2 on
language modelling, BERT on question answering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn import build_model
from repro.nn.data import MarkovText, SyntheticImages, SyntheticQA, \
    SyntheticVectors
from repro.nn.loss import (
    sequence_cross_entropy,
    softmax_cross_entropy,
    span_extraction_loss,
)
from repro.nn.module import Module

from .metrics import lm_perplexity, span_f1, top1_accuracy

__all__ = ["Task", "make_task", "TASK_FAMILIES"]

#: families with a classification / language-modelling / QA task
TASK_FAMILIES = ("mlp", "resnet50", "vgg16", "vit", "transformer_xl",
                 "gpt2", "bert")


@dataclass
class Task:
    """One trainable workload.

    ``higher_is_better`` distinguishes accuracy/F1 (maximize) from
    perplexity (minimize), as in Table 3's mixed metric columns.
    """

    name: str
    metric_name: str
    higher_is_better: bool
    build_model: Callable[[int], Module]
    sample_batch: Callable[[np.random.Generator], tuple]
    loss_and_grad: Callable[[np.ndarray, tuple], tuple[float, np.ndarray]]
    evaluate: Callable[[Module], float]
    model_kwargs: dict = field(default_factory=dict)


def _classification_task(family: str, model_kwargs: dict,
                         batch_size: int, data_seed: int) -> Task:
    if family == "mlp":
        data = SyntheticVectors(seed=data_seed)
    else:
        # Noise keeps top-1 off the ceiling so the baseline-vs-CGX
        # comparison exercises a non-trivial margin.  VGG16 (plain conv
        # stack, no normalization layers) trains far less robustly than
        # the normalized families, so its task stays gentler.
        noise = 1.0 if family == "vgg16" else 2.0
        data = SyntheticImages(noise=noise, seed=data_seed)
    eval_x, eval_y = data.eval_set(512)

    def loss_and_grad(logits, batch):
        return softmax_cross_entropy(logits, batch[1])

    return Task(
        name=family,
        metric_name="top1",
        higher_is_better=True,
        build_model=lambda seed: build_model(family, seed=seed, **model_kwargs),
        sample_batch=lambda rng: data.sample(batch_size, rng),
        loss_and_grad=loss_and_grad,
        evaluate=lambda model: top1_accuracy(model, eval_x, eval_y),
        model_kwargs=model_kwargs,
    )


def _lm_task(family: str, model_kwargs: dict, batch_size: int,
             data_seed: int) -> Task:
    vocab = model_kwargs.get("vocab_size", 64)
    seq = model_kwargs.get("max_len", 32)
    data = MarkovText(vocab_size=vocab, seq_len=seq, seed=data_seed)
    eval_x, eval_y = data.eval_set(256)

    def loss_and_grad(logits, batch):
        return sequence_cross_entropy(logits, batch[1])

    return Task(
        name=family,
        metric_name="perplexity",
        higher_is_better=False,
        build_model=lambda seed: build_model(family, seed=seed, **model_kwargs),
        sample_batch=lambda rng: data.sample(batch_size, rng),
        loss_and_grad=loss_and_grad,
        evaluate=lambda model: lm_perplexity(model, eval_x, eval_y),
        model_kwargs=model_kwargs,
    )


def _qa_task(model_kwargs: dict, batch_size: int, data_seed: int) -> Task:
    vocab = model_kwargs.get("vocab_size", 64)
    seq = model_kwargs.get("max_len", 32)
    data = SyntheticQA(vocab_size=vocab, seq_len=seq, seed=data_seed)
    eval_x, eval_s, eval_e = data.eval_set(256)

    def loss_and_grad(logits, batch):
        return span_extraction_loss(logits, batch[1], batch[2])

    return Task(
        name="bert",
        metric_name="f1",
        higher_is_better=True,
        build_model=lambda seed: build_model("bert", seed=seed, **model_kwargs),
        sample_batch=lambda rng: data.sample(batch_size, rng),
        loss_and_grad=loss_and_grad,
        evaluate=lambda model: span_f1(model, eval_x, eval_s, eval_e),
        model_kwargs=model_kwargs,
    )


def make_task(family: str, batch_size: int = 32, data_seed: int = 0,
              **model_kwargs) -> Task:
    """Build the task for a model family with optional size overrides."""
    if family in ("mlp", "resnet50", "vgg16", "vit"):
        return _classification_task(family, model_kwargs, batch_size, data_seed)
    if family in ("transformer_xl", "gpt2"):
        return _lm_task(family, model_kwargs, batch_size, data_seed)
    if family == "bert":
        return _qa_task(model_kwargs, batch_size, data_seed)
    raise KeyError(
        f"no task for family {family!r}; choose from {TASK_FAMILIES}"
    )

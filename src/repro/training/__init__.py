"""Training: real data-parallel loops and the step-time performance model."""

from .metrics import lm_perplexity, span_f1, top1_accuracy
from .perf import (
    StepTiming,
    simulate_machine_step,
    simulate_step,
    single_gpu_step_time,
)
from .recipes import RECIPES, Recipe, get_recipe
from .tasks import TASK_FAMILIES, Task, make_task
from .trainer import DataParallelTrainer, TrainResult, train_family

__all__ = [
    "StepTiming", "simulate_step", "simulate_machine_step",
    "single_gpu_step_time",
    "Recipe", "RECIPES", "get_recipe",
    "Task", "make_task", "TASK_FAMILIES",
    "DataParallelTrainer", "TrainResult", "train_family",
    "top1_accuracy", "lm_perplexity", "span_f1",
]

"""Evaluation metrics matching the paper's Table 3 columns.

Top-1 accuracy (ResNet50/VGG/ViT), perplexity (Transformer-XL/GPT-2)
and span F1 (BERT on SQuAD).
"""

from __future__ import annotations

import numpy as np

from repro.nn.loss import sequence_cross_entropy
from repro.nn.module import Module

__all__ = ["top1_accuracy", "lm_perplexity", "span_f1"]


def top1_accuracy(model: Module, inputs: np.ndarray,
                  labels: np.ndarray) -> float:
    """Fraction of samples whose argmax logit matches the label."""
    model.eval()
    predictions = model(inputs).argmax(axis=-1)
    model.train()
    return float((predictions == labels).mean())


def lm_perplexity(model: Module, tokens: np.ndarray,
                  targets: np.ndarray) -> float:
    """exp(mean token cross-entropy) on held-out sequences."""
    model.eval()
    logits = model(tokens)
    model.train()
    loss, _ = sequence_cross_entropy(logits, targets)
    return float(np.exp(min(loss, 50.0)))


def span_f1(model: Module, tokens: np.ndarray, starts: np.ndarray,
            ends: np.ndarray) -> float:
    """SQuAD-style token-overlap F1 between predicted and gold spans."""
    model.eval()
    logits = model(tokens)
    model.train()
    pred_starts = logits[:, :, 0].argmax(axis=1)
    pred_ends = logits[:, :, 1].argmax(axis=1)
    scores = []
    for ps, pe, gs, ge in zip(pred_starts, pred_ends, starts, ends):
        if pe < ps:
            scores.append(0.0)
            continue
        pred = set(range(int(ps), int(pe) + 1))
        gold = set(range(int(gs), int(ge) + 1))
        overlap = len(pred & gold)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(pred)
        recall = overlap / len(gold)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))

"""Training recipes: the paper's hyperparameters, scaled down.

The paper's central "hyperparameter freedom" claim (Goal 2) is that CGX
recovers accuracy under the *standard uncompressed* recipes.  Our
reproduction therefore defines one recipe per family — optimizer, LR,
clipping, per-worker batch, CGX bucket size (1024 for CNNs, 128 for
Transformers, per Section 6.1), step budget — and every Table 3 run,
baseline and compressed, uses the same recipe verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Recipe", "RECIPES", "get_recipe"]


@dataclass(frozen=True)
class Recipe:
    """Hyperparameters for one accuracy experiment."""

    family: str
    optimizer: str = "sgd"          # sgd | adam
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_clip: float = 0.0          # 0 = no clipping
    batch_size: int = 32            # per-worker batch
    steps: int = 150
    bucket_size: int = 128          # CGX quantization bucket
    model_kwargs: tuple = ()        # scaled-down model size overrides

    def kwargs(self) -> dict:
        return dict(self.model_kwargs)


RECIPES: dict[str, Recipe] = {
    "mlp": Recipe("mlp", lr=0.1, batch_size=32, steps=120,
                  bucket_size=1024),
    "resnet50": Recipe(
        "resnet50", lr=0.05, weight_decay=1e-4, batch_size=32, steps=150,
        bucket_size=1024,
        model_kwargs=(("channels", 16), ("num_blocks", 2),
                      ("num_classes", 10), ("image_size", 16)),
    ),
    "vgg16": Recipe(
        "vgg16", lr=0.02, batch_size=32, steps=150, bucket_size=1024,
        model_kwargs=(("channels", (8, 16)), ("num_classes", 10),
                      ("image_size", 16)),
    ),
    "vit": Recipe(
        "vit", optimizer="adam", lr=1e-3, batch_size=32, steps=200,
        bucket_size=128,
        model_kwargs=(("image_size", 16), ("patch_size", 4), ("dim", 32),
                      ("depth", 2), ("num_heads", 4), ("num_classes", 10)),
    ),
    "transformer_xl": Recipe(
        "transformer_xl", optimizer="adam", lr=2e-3, grad_clip=1.0,
        batch_size=32, steps=250, bucket_size=128,
        model_kwargs=(("vocab_size", 64), ("max_len", 32), ("dim", 32),
                      ("depth", 2), ("num_heads", 4)),
    ),
    "gpt2": Recipe(
        "gpt2", optimizer="adam", lr=2e-3, grad_clip=1.0,
        batch_size=24, steps=250, bucket_size=128,
        model_kwargs=(("vocab_size", 64), ("max_len", 32), ("dim", 32),
                      ("depth", 2), ("num_heads", 4)),
    ),
    "bert": Recipe(
        "bert", optimizer="adam", lr=1e-3, batch_size=16, steps=250,
        bucket_size=128,
        model_kwargs=(("vocab_size", 64), ("max_len", 32), ("dim", 32),
                      ("depth", 2), ("num_heads", 4)),
    ),
}


def get_recipe(family: str) -> Recipe:
    if family not in RECIPES:
        raise KeyError(f"no recipe for {family!r}; choose from {sorted(RECIPES)}")
    return RECIPES[family]

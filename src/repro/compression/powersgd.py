"""PowerSGD: low-rank gradient decomposition via power iteration.

Vogels et al. (2019): the gradient matrix M (m x n) is approximated as
P @ Q^T with rank r << min(m, n), computed by one step of subspace
power iteration warm-started from the previous step's Q.  P and Q are
*associative* under averaging, which is why PyTorch ships PowerSGD as a
DDP hook — and also why the paper uses it as the strongest baseline.

Reproduced behaviours the paper relies on:

* 1-D tensors (biases, norms) stay uncompressed.
* Error feedback is required for accuracy.
* fp16 incompatibility: the orthogonalization is numerically fragile at
  half precision (paper: PowerSGD "can lead to divergence" under fp16);
  see :func:`orthonormalize` whose epsilon handling our tests probe.
"""

from __future__ import annotations

import numpy as np

from .base import Compressed, CompressionSpec, Compressor, _matrix_shape
from .contracts import CompressorContract

__all__ = ["PowerSGDCompressor", "orthonormalize"]


def orthonormalize(matrix: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Gram-Schmidt orthonormalization of the columns of ``matrix``."""
    out = matrix.astype(np.float32, copy=True)
    for col in range(out.shape[1]):
        for prev in range(col):
            out[:, col] -= (out[:, prev] @ out[:, col]) * out[:, prev]
        norm = np.linalg.norm(out[:, col])
        if norm < eps:
            # degenerate direction: re-seed deterministically
            out[:, col] = 0.0
            out[col % out.shape[0], col] = 1.0
        else:
            out[:, col] /= norm
    return out


class PowerSGDCompressor(Compressor):
    """Rank-``r`` power-iteration compressor with warm-started Q."""

    contract = CompressorContract("powersgd", stateful=True,
                                  requires_error_feedback=True)

    def __init__(self, spec: CompressionSpec):
        super().__init__(spec)
        self._q_memory: dict = {}

    def _q_for(self, key, cols: int, rank: int) -> np.ndarray:
        q = self._q_memory.get(key)
        if q is None or q.shape != (cols, rank):
            # stable per-key seed (hash() is salted per process)
            import zlib

            digest = zlib.crc32(repr(key).encode()) if key is not None else 0
            rng = np.random.default_rng(digest)
            q = orthonormalize(
                rng.standard_normal((cols, rank)).astype(np.float32)
            )
            self._q_memory[key] = q
        return q

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        shape = tuple(np.shape(array))
        numel = int(np.size(array))
        rows, cols = _matrix_shape(numel, shape)
        if rows == 1 or cols == 1:
            payload = {"dense": np.asarray(array, dtype=np.float32).ravel().copy()}
            return Compressed(self.spec, numel, shape, payload,
                              self.spec.wire_bytes(numel, shape))
        rank = min(self.spec.rank, rows, cols)
        matrix = np.asarray(array, dtype=np.float32).reshape(rows, cols)
        q = self._q_for(key, cols, rank)
        p = orthonormalize(matrix @ q)
        q_new = matrix.T @ p
        self._q_memory[key] = q_new
        payload = {"p": p, "q": q_new.copy()}
        return Compressed(self.spec, numel, shape, payload,
                          self.spec.wire_bytes(numel, shape))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        if "dense" in compressed.payload:
            return compressed.payload["dense"].reshape(compressed.shape)
        p, q = compressed.payload["p"], compressed.payload["q"]
        return (p @ q.T).reshape(compressed.shape)

    def flops(self, numel: int, shape: tuple[int, ...] | None) -> float:
        """Compression compute cost: 3 matmuls + orthonormalization.

        This is the "Technical Issue 1" cost that makes decomposition
        methods slower than single-pass quantization at line rate.
        """
        rows, cols = _matrix_shape(numel, shape)
        if rows == 1 or cols == 1:
            return 0.0
        rank = min(self.spec.rank, rows, cols)
        matmuls = 3 * 2.0 * rows * cols * rank     # MQ, M^T P, P Q^T
        gram_schmidt = 2.0 * rows * rank * rank
        return matmuls + gram_schmidt

    def reset(self) -> None:
        self._q_memory.clear()

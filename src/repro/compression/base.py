"""Compression operator API.

A :class:`CompressionSpec` is a declarative description (method + its
parameters) that both the data path (actual compress/decompress of numpy
gradients) and the performance model (wire-size and kernel-cost
accounting) consume.  :func:`make_compressor` instantiates the matching
operator.

Wire-size accounting is exact: e.g. 4-bit QSGD with bucket size 128
costs ``numel * 4 bits`` of payload plus one fp32 scale per bucket,
which is the 4-bit + metadata layout CGX transmits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from .contracts import CompressorContract

if TYPE_CHECKING:  # pragma: no cover
    from typing import Any

__all__ = ["CompressionSpec", "Compressed", "Compressor", "make_compressor"]

FP32_BYTES = 4


@dataclass(frozen=True)
class CompressionSpec:
    """Declarative compression configuration for one tensor (or globally).

    Attributes:
        method: ``none | fp16 | qsgd | nuq | topk | powersgd | fake |
            onebit | dgc`` (``nuq`` = NUQSGD exponential levels;
            ``onebit`` = Seide et al. 1-bit SGD; ``dgc`` = Deep Gradient
            Compression with momentum correction).
        bits: quantization bit-width (qsgd/nuq), including the sign bit.
        bucket_size: elements per quantization bucket (qsgd/nuq).
        density: fraction of elements kept (topk).
        rank: decomposition rank (powersgd).
        ratio: transmitted fraction is ``1/ratio`` (fake).
        error_feedback: maintain a residual and fold it into the next
            step (topk and powersgd require this to converge).
        wire_dtype_bits: if nonzero, each quantized code travels in a
            fixed-width integer of this many bits instead of being
            bit-packed — the GRACE INT8 wire format (its 4-bit setting
            still sends one byte per value).
    """

    method: str = "none"
    bits: int = 4
    bucket_size: int = 128
    #: bucket scale: "max" (CGX kernels: max-magnitude) or "l2" (the
    #: original QSGD/NUQSGD papers: bucket L2 norm)
    scaling: str = "max"
    density: float = 0.01
    rank: int = 4
    ratio: float = 1.0
    error_feedback: bool = False
    wire_dtype_bits: int = 0

    def __post_init__(self):
        if self.method not in ("none", "fp16", "qsgd", "nuq", "topk",
                               "powersgd", "fake", "onebit", "dgc"):
            raise ValueError(f"unknown compression method {self.method!r}")
        if self.method in ("qsgd", "nuq"):
            if not 2 <= self.bits <= 8:
                raise ValueError(f"qsgd bits must be in [2, 8], got {self.bits}")
            if self.bucket_size < 1:
                raise ValueError("bucket_size must be >= 1")
            if self.scaling not in ("max", "l2"):
                raise ValueError(f"unknown scaling {self.scaling!r}")
        if self.method in ("topk", "dgc") and not 0 < self.density <= 1:
            raise ValueError(f"density must be in (0, 1], got {self.density}")
        if self.method == "powersgd" and self.rank < 1:
            raise ValueError("rank must be >= 1")
        if self.method == "fake" and self.ratio < 1:
            raise ValueError("fake ratio must be >= 1")

    def wire_bytes(self, numel: int, shape: tuple[int, ...] | None = None) -> int:
        """Exact transmitted bytes for a tensor of ``numel`` elements."""
        if numel == 0:
            return 0
        if self.method == "none":
            return numel * FP32_BYTES
        if self.method == "fp16":
            return numel * 2
        if self.method in ("qsgd", "nuq"):
            buckets = -(-numel // self.bucket_size)
            code_bits = self.wire_dtype_bits or self.bits
            payload_bits = numel * code_bits
            return -(-payload_bits // 8) + buckets * FP32_BYTES
        if self.method in ("topk", "dgc"):
            k = max(1, int(numel * self.density))
            return k * (4 + FP32_BYTES)  # int32 index + fp32 value
        if self.method == "onebit":
            buckets = -(-numel // self.bucket_size)
            return -(-numel // 8) + buckets * 2 * FP32_BYTES
        if self.method == "powersgd":
            rows, cols = _matrix_shape(numel, shape)
            if rows == 1 or cols == 1:
                return numel * FP32_BYTES  # 1-D tensors stay uncompressed
            # the operator clamps the rank to the matrix dimensions, so
            # the claim must too or small layers over-report their bytes
            return (rows + cols) * min(self.rank, rows, cols) * FP32_BYTES
        if self.method == "fake":
            return max(1, int(numel / self.ratio)) * FP32_BYTES
        raise AssertionError(f"unreachable method {self.method}")

    def compression_ratio(self, numel: int,
                          shape: tuple[int, ...] | None = None) -> float:
        """Dense fp32 bytes divided by wire bytes."""
        return numel * FP32_BYTES / self.wire_bytes(numel, shape)

    def with_bits(self, bits: int, bucket_size: int | None = None
                  ) -> "CompressionSpec":
        """Copy of this spec with a different bit-width (adaptive path)."""
        return replace(self, bits=bits,
                       bucket_size=bucket_size or self.bucket_size)


def _matrix_shape(numel: int, shape: tuple[int, ...] | None) -> tuple[int, int]:
    """The (rows, cols) view PowerSGD uses for a tensor."""
    if shape is None or len(shape) < 2:
        return 1, numel
    rows = shape[0]
    cols = numel // rows
    return rows, cols


@dataclass
class Compressed:
    """Result of compressing one tensor: wire payload plus metadata."""

    spec: CompressionSpec
    numel: int
    shape: tuple[int, ...]
    payload: "dict[str, np.ndarray]"
    nbytes: int

    def copy(self) -> "Compressed":
        return Compressed(self.spec, self.numel, self.shape,
                          {k: v.copy() for k, v in self.payload.items()},
                          self.nbytes)


class Compressor:
    """Base compressor: compress/decompress numpy arrays.

    Stateless by default; stateful methods (error feedback, PowerSGD
    warm start) key their state on a caller-provided ``key`` argument
    (typically ``(worker, layer_name)``).
    """

    #: declared invariants; every operator registered in
    #: :func:`make_compressor` must override this (checked by CON001)
    contract: ClassVar[CompressorContract | None] = None

    def __init__(self, spec: CompressionSpec):
        self.spec = spec

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key: "Any" = None) -> Compressed:
        raise NotImplementedError

    def decompress(self, compressed: Compressed) -> np.ndarray:
        raise NotImplementedError

    def roundtrip(self, array: np.ndarray, rng: np.random.Generator,
                  key: "Any" = None) -> np.ndarray:
        return self.decompress(self.compress(array, rng, key=key))

    def error_norm(self, array: np.ndarray, rng: np.random.Generator) -> float:
        """L2 norm of the compression error on ``array``."""
        restored = self.roundtrip(array, rng)
        return float(np.linalg.norm(array.ravel() - restored.ravel()))


def make_compressor(spec: CompressionSpec) -> Compressor:
    """Instantiate the operator implementing ``spec``."""
    from .dgc import DGCCompressor
    from .fake import FakeCompressor
    from .none import FP16Compressor, IdentityCompressor
    from .nuq import NUQSGDCompressor
    from .onebit import OneBitCompressor
    from .powersgd import PowerSGDCompressor
    from .qsgd import QSGDCompressor
    from .topk import TopKCompressor

    table = {
        "none": IdentityCompressor,
        "fp16": FP16Compressor,
        "qsgd": QSGDCompressor,
        "nuq": NUQSGDCompressor,
        "topk": TopKCompressor,
        "powersgd": PowerSGDCompressor,
        "fake": FakeCompressor,
        "onebit": OneBitCompressor,
        "dgc": DGCCompressor,
    }
    return table[spec.method](spec)

"""Top-K magnitude sparsification with optional error feedback.

The standard sparsifier (Strom 2015; Dryden et al. 2016; Lin et al.
2017): keep the K largest-magnitude components, transmit (index, value)
pairs.  CGX uses it for *heterogeneous* compression of naturally sparse
layers such as Transformer embeddings (Section 6.2), always with error
feedback — without the residual the dropped mass never reaches the
model and training stalls, which our tests verify.
"""

from __future__ import annotations

import ast

import numpy as np

from .base import Compressed, CompressionSpec, Compressor
from .contracts import CompressorContract

__all__ = ["TopKCompressor", "ErrorFeedback"]


class TopKCompressor(Compressor):
    """Keep the ``density`` fraction of largest-magnitude elements."""

    contract = CompressorContract("topk", requires_error_feedback=True)

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        k = max(1, int(flat.size * self.spec.density))
        if k >= flat.size:
            indices = np.arange(flat.size, dtype=np.int64)
        else:
            indices = np.argpartition(np.abs(flat), -k)[-k:]
            indices = np.sort(indices)
        payload = {
            "indices": indices.astype(np.int64),
            "values": flat[indices].copy(),
        }
        return Compressed(self.spec, flat.size, tuple(np.shape(array)), payload,
                          self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        out = np.zeros(compressed.numel, dtype=np.float32)
        out[compressed.payload["indices"]] = compressed.payload["values"]
        return out.reshape(compressed.shape)


class ErrorFeedback:
    """Residual accumulator wrapping any lossy compressor.

    On each step the stored residual is added to the gradient before
    compression, and the new residual (input minus what the wire
    carries) is stored for the next step (Karimireddy et al. 2019).
    State is keyed by an arbitrary hashable (worker id, layer name).
    """

    def __init__(self, compressor: Compressor):
        self.compressor = compressor
        self._residuals: dict = {}

    @property
    def spec(self) -> CompressionSpec:
        return self.compressor.spec

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).copy()
        residual = self._residuals.get(key)
        # a quorum change repartitions collective chunks, so a stored
        # residual may no longer align element-wise with this key's
        # chunk; folding it in would add error to the *wrong* elements,
        # so accumulation restarts instead
        if residual is not None and residual.shape == flat.shape:
            flat += residual
        compressed = self.compressor.compress(flat, rng, key=key)
        restored = self.compressor.decompress(compressed)
        self._residuals[key] = flat - restored
        return compressed

    def decompress(self, compressed: Compressed) -> np.ndarray:
        return self.compressor.decompress(compressed)

    def roundtrip(self, array: np.ndarray, rng: np.random.Generator,
                  key=None) -> np.ndarray:
        return self.decompress(self.compress(array, rng, key=key))

    def adopt_residuals(self, other: "ErrorFeedback") -> None:
        """Take over another wrapper's residuals.

        Used when the adaptive policy changes a layer's spec without
        changing the method: residuals are in gradient units, so they
        carry across parameter changes (density, bits) unscaled.
        """
        self._residuals.update(other._residuals)

    def residual_state(self) -> dict:
        """Checkpointable snapshot of the residuals.

        Keys are ``repr()``-encoded (they are tuples of strings/ints in
        practice) so the mapping survives a JSON manifest round-trip;
        :meth:`load_residual_state` decodes them.
        """
        return {repr(k): v.copy() for k, v in self._residuals.items()}

    def load_residual_state(self, state: dict) -> None:
        """Restore residuals captured by :meth:`residual_state`."""
        self._residuals = {
            ast.literal_eval(k): np.asarray(v, dtype=np.float32).copy()
            for k, v in state.items()
        }

    def residual_norm(self, key) -> float:
        residual = self._residuals.get(key)
        if residual is None:
            return 0.0
        return float(np.linalg.norm(residual))

    def total_residual_norm(self) -> float:
        """L2 norm over all keyed residuals (collectives key per chunk)."""
        total = sum(float(np.sum(r * r)) for r in self._residuals.values())
        return float(np.sqrt(total))

    def reset(self) -> None:
        self._residuals.clear()

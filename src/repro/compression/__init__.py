"""Gradient compression operators: QSGD, TopK, PowerSGD, fake, identity."""

from .base import Compressed, CompressionSpec, Compressor, make_compressor
from .contracts import CompressorContract
from .dgc import DGCCompressor
from .fake import FakeCompressor
from .metrics import (
    LayerErrorStats,
    kernel_seconds,
    measure_error,
    model_wire_bytes,
    relative_error,
)
from .none import FP16Compressor, IdentityCompressor
from .nuq import NUQSGDCompressor, exponential_levels
from .onebit import OneBitCompressor
from .powersgd import PowerSGDCompressor, orthonormalize
from .qsgd import QSGDCompressor, pack_codes, unpack_codes
from .topk import ErrorFeedback, TopKCompressor

__all__ = [
    "Compressed", "CompressionSpec", "Compressor", "make_compressor",
    "CompressorContract",
    "FakeCompressor", "FP16Compressor", "IdentityCompressor",
    "NUQSGDCompressor", "exponential_levels",
    "OneBitCompressor", "DGCCompressor",
    "PowerSGDCompressor", "orthonormalize",
    "QSGDCompressor", "pack_codes", "unpack_codes",
    "ErrorFeedback", "TopKCompressor",
    "LayerErrorStats", "measure_error", "relative_error",
    "model_wire_bytes", "kernel_seconds",
]

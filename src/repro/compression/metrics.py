"""Compression error and size measurement utilities.

These drive the adaptive compression objective (Section 5): per-layer
compression errors are compared against the 4-bit reference error E4,
and compressed sizes feed the bandwidth objective sum(b_l * size(L_l)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import CompressionSpec, make_compressor

__all__ = ["LayerErrorStats", "measure_error", "relative_error",
           "model_wire_bytes", "kernel_seconds"]

#: effective GPU memory bandwidth for compression kernels (bytes/s);
#: quantization is memory-bound (one vectorized read of fp32 + packed
#: write), so kernel time ~ bytes / this rate.  ~75% of an RTX 3090's
#: 936 GB/s HBM bandwidth.
COMPRESSION_THROUGHPUT = 700e9
#: fixed CUDA kernel launch + stream sync cost per compression call.
KERNEL_LAUNCH_OVERHEAD = 8e-6


@dataclass(frozen=True)
class LayerErrorStats:
    """Compression error measurements for one layer."""

    name: str
    numel: int
    grad_norm: float
    error_norm: float
    wire_bytes: int

    @property
    def relative(self) -> float:
        if self.grad_norm == 0:
            return 0.0
        return self.error_norm / self.grad_norm


def measure_error(spec: CompressionSpec, array: np.ndarray,
                  rng: np.random.Generator, name: str = "") -> LayerErrorStats:
    """Compress-decompress ``array`` and record error and wire size."""
    compressor = make_compressor(spec)
    restored = compressor.roundtrip(array, rng, key=name or None)
    error = float(np.linalg.norm(
        np.ravel(array).astype(np.float64) - np.ravel(restored)
    ))
    return LayerErrorStats(
        name=name,
        numel=int(np.size(array)),
        grad_norm=float(np.linalg.norm(np.ravel(array))),
        error_norm=error,
        wire_bytes=spec.wire_bytes(int(np.size(array)), tuple(np.shape(array))),
    )


def relative_error(spec: CompressionSpec, array: np.ndarray,
                   rng: np.random.Generator) -> float:
    """Normalized compression error ||x - C(x)|| / ||x||."""
    return measure_error(spec, array, rng).relative


def model_wire_bytes(specs: dict[str, CompressionSpec],
                     sizes: dict[str, int]) -> int:
    """Total transmitted bytes for a model under per-layer specs."""
    total = 0
    for name, numel in sizes.items():
        spec = specs.get(name, CompressionSpec("none"))
        total += spec.wire_bytes(numel)
    return total


def kernel_seconds(nbytes_in: int, extra_flops: float = 0.0,
                   flop_rate: float = 20e12) -> float:
    """Simulated GPU time of one compression/decompression kernel.

    Memory-bound byte traffic plus any extra compute (PowerSGD matmuls)
    plus a launch overhead.  The launch overhead is what makes CGX's
    small-layer filtering profitable (Section 4, "Improved Scheduling").
    """
    return (KERNEL_LAUNCH_OVERHEAD
            + nbytes_in / COMPRESSION_THROUGHPUT
            + extra_flops / flop_rate)

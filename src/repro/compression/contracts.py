"""Machine-checkable contracts for compression operators.

Every compressor class declares a :class:`CompressorContract` describing
the invariants the rest of the system (engine, collectives, perf model)
relies on but no unit test states explicitly:

* a roundtrip preserves shape, element count, and produces fp32;
* the :meth:`CompressionSpec.wire_bytes` claim, the ``Compressed.nbytes``
  field, and the *actual* serialized payload size all agree — the byte
  accounting behind the paper's Fig. 7/10 and the adaptive bit-width
  objective ``sum_l b_l * size(L_l)``;
* whether the operator keeps per-key state (PowerSGD warm start, DGC
  momentum) — stateful operators must never be shared across
  uncoordinated callers;
* whether the operator draws from the shared rng — all replicas feed
  the same generator, so an operator that draws when its contract says
  it does not (or vice versa) desynchronizes replicas;
* whether the method needs error feedback to converge (topk, powersgd,
  onebit), or embeds its own residual mechanism (DGC's velocity).

The declarations are *data*; :mod:`repro.analysis.contracts` is the
checker that verifies each registered compressor actually honours its
declaration (rules CON001..CON008).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompressorContract"]


@dataclass(frozen=True)
class CompressorContract:
    """Declared invariants of one compression method.

    Attributes:
        method: the :class:`CompressionSpec` method this contract covers.
        preserves_shape: decompress(compress(x)) has x's shape and numel.
        output_dtype: dtype of the decompressed tensor (the data path is
            fp32 end to end).
        exact_wire_claim: ``spec.wire_bytes(numel, shape)``,
            ``Compressed.nbytes``, and the measured serialized payload
            size are all equal.
        stateful: compress mutates per-key state, so repeated calls on
            identical input may produce different payloads.
        uses_rng: compress draws from the shared generator (stochastic
            rounding); replicas must feed identical rng state.
        requires_error_feedback: the method only converges when wrapped
            in :class:`~repro.compression.topk.ErrorFeedback` (or an
            equivalent built-in residual, see ``self_error_feedback``).
        self_error_feedback: the operator maintains its own residual
            (DGC's velocity doubles as error feedback), so the engine
            must NOT additionally wrap it.
        lossless: roundtrip is bit-exact for fp32 inputs.
        supported_bits: bit-widths the operator can realize, for
            bit-parameterized quantizers; ``None`` for methods whose
            wire format does not depend on ``spec.bits``.  The plan
            certifier (rule BWP007) checks every adaptive bit-width
            plan against this declaration: a plan naming ``b`` bits for
            a method that cannot encode at ``b`` bits would crash (or
            silently mis-encode) at the first reduction after respec.
    """

    method: str
    preserves_shape: bool = True
    output_dtype: str = "float32"
    exact_wire_claim: bool = True
    stateful: bool = False
    uses_rng: bool = False
    requires_error_feedback: bool = False
    self_error_feedback: bool = False
    lossless: bool = False
    supported_bits: tuple[int, ...] | None = None

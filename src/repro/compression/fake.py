"""Fake (truncation) compression for the motivating experiment.

Section 2.1: "assuming a buffer of size N ... and a target compression
ratio γ ≥ 1, we only transmit the first k = N/γ elements."  This isolates
the *bandwidth* effect of compression from its accuracy effect, which is
how Figure 1 demonstrates that bandwidth is the commodity-box bottleneck.
The untransmitted tail decompresses to zeros; Figure 1 runs are timing
experiments, never accuracy experiments.
"""

from __future__ import annotations

import numpy as np

from .base import Compressed, Compressor
from .contracts import CompressorContract

__all__ = ["FakeCompressor"]


class FakeCompressor(Compressor):
    """Transmit only the first ``numel / ratio`` elements."""

    contract = CompressorContract("fake")

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        k = max(1, int(flat.size / self.spec.ratio))
        return Compressed(self.spec, flat.size, tuple(np.shape(array)),
                          {"head": flat[:k].copy()},
                          self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        out = np.zeros(compressed.numel, dtype=np.float32)
        head = compressed.payload["head"]
        out[: head.size] = head
        return out.reshape(compressed.shape)

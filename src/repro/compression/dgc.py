"""Deep Gradient Compression (Lin et al., 2017).

The strongest sparsifier the paper discusses — ">100x compression" but
"at the price of extensive model-specific hyper-parameter tuning"
(Section 2.3).  Faithful to the recipe:

* **momentum correction** — local momentum accumulates *before*
  sparsification, and both the momentum and the velocity accumulators
  are masked where values are transmitted;
* **density warm-up** — compression ramps exponentially from a gentle
  starting density to the aggressive target over the first epochs,
  which is exactly the kind of extra schedule ("hyper-parameter
  tuning") CGX's Goal 2 forbids for itself;
* velocity accumulation doubles as error feedback.

Stateful per key (worker, layer): do not share one instance across
uncoordinated callers.
"""

from __future__ import annotations

import numpy as np

from .base import Compressed, CompressionSpec, Compressor
from .contracts import CompressorContract

__all__ = ["DGCCompressor"]


class DGCCompressor(Compressor):
    """TopK with momentum correction and density warm-up."""

    contract = CompressorContract("dgc", stateful=True,
                                  requires_error_feedback=True,
                                  self_error_feedback=True)

    def __init__(self, spec: CompressionSpec, momentum: float = 0.9,
                 warmup_steps: int = 0, initial_density: float = 0.25):
        super().__init__(spec)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.warmup_steps = warmup_steps
        self.initial_density = initial_density
        self._momentum_buf: dict = {}
        self._velocity: dict = {}
        self._steps: dict = {}

    def current_density(self, key) -> float:
        """Warm-up schedule: exponential ramp to the target density."""
        step = self._steps.get(key, 0)
        if self.warmup_steps <= 0 or step >= self.warmup_steps:
            return self.spec.density
        # geometric interpolation initial -> target
        frac = step / self.warmup_steps
        log_density = (np.log(self.initial_density) * (1 - frac)
                       + np.log(self.spec.density) * frac)
        return float(np.exp(log_density))

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        momentum = self._momentum_buf.get(key)
        if momentum is None or momentum.shape != flat.shape:
            momentum = np.zeros_like(flat)
            self._velocity[key] = np.zeros_like(flat)
            self._steps[key] = 0
        velocity = self._velocity[key]

        momentum = self.momentum * momentum + flat
        velocity = velocity + momentum

        density = self.current_density(key)
        k = max(1, int(flat.size * density))
        if k >= flat.size:
            indices = np.arange(flat.size, dtype=np.int64)
        else:
            indices = np.sort(np.argpartition(np.abs(velocity), -k)[-k:])
        values = velocity[indices].copy()

        # masking: transmitted coordinates reset both accumulators
        momentum[indices] = 0.0
        velocity[indices] = 0.0
        self._momentum_buf[key] = momentum
        self._velocity[key] = velocity
        self._steps[key] = self._steps.get(key, 0) + 1

        payload = {"indices": indices.astype(np.int64), "values": values}
        nbytes = int(indices.size * 8)
        return Compressed(self.spec, flat.size, tuple(np.shape(array)),
                          payload, nbytes)

    def decompress(self, compressed: Compressed) -> np.ndarray:
        out = np.zeros(compressed.numel, dtype=np.float32)
        out[compressed.payload["indices"]] = compressed.payload["values"]
        return out.reshape(compressed.shape)

    def reset(self) -> None:
        self._momentum_buf.clear()
        self._velocity.clear()
        self._steps.clear()

"""Identity and FP16 "compressors" — the uncompressed baselines."""

from __future__ import annotations

import numpy as np

from .base import Compressed, Compressor
from .contracts import CompressorContract

__all__ = ["IdentityCompressor", "FP16Compressor"]


class IdentityCompressor(Compressor):
    """Transmits full-precision fp32 values unchanged."""

    contract = CompressorContract("none", lossless=True)

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel().copy()
        return Compressed(self.spec, flat.size, tuple(np.shape(array)),
                          {"values": flat}, self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        return compressed.payload["values"].reshape(compressed.shape).copy()


class FP16Compressor(Compressor):
    """Half-precision cast: 2x size reduction, deterministic rounding."""

    contract = CompressorContract("fp16")

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        return Compressed(self.spec, flat.size, tuple(np.shape(array)),
                          {"values": flat.astype(np.float16)},
                          self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        return compressed.payload["values"].astype(np.float32).reshape(
            compressed.shape
        )

"""1-bit SGD (Seide et al., 2014): sign quantization with error feedback.

The first gradient-compression method the paper cites.  Each bucket
transmits one bit per value plus two fp32 reconstruction magnitudes —
the mean of the positive values and the mean of the negative values —
which makes the reconstruction the least-squares optimal 2-level
quantizer for the given sign pattern.  Convergence requires error
feedback (the residual trick originated with this method).
"""

from __future__ import annotations

import numpy as np

from .base import Compressed, Compressor
from .contracts import CompressorContract
from .qsgd import pack_codes, unpack_codes

__all__ = ["OneBitCompressor"]


class OneBitCompressor(Compressor):
    """Per-bucket sign quantization with two-sided mean reconstruction."""

    contract = CompressorContract("onebit", requires_error_feedback=True)

    def _bucketize(self, flat: np.ndarray) -> np.ndarray:
        size = min(self.spec.bucket_size, max(1, flat.size))
        n_buckets = -(-flat.size // size)
        padded = np.zeros(n_buckets * size, dtype=np.float32)
        padded[: flat.size] = flat
        return padded.reshape(n_buckets, size)

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        buckets = self._bucketize(flat)
        negative = buckets < 0

        pos_sum = np.where(~negative, buckets, 0.0).sum(axis=1)
        pos_count = (~negative).sum(axis=1)
        neg_sum = np.where(negative, buckets, 0.0).sum(axis=1)
        neg_count = negative.sum(axis=1)
        pos_mean = np.divide(pos_sum, np.maximum(pos_count, 1))
        neg_mean = np.divide(neg_sum, np.maximum(neg_count, 1))

        signs = negative.astype(np.uint8).ravel()[: flat.size]
        payload = {
            "signs": pack_codes(signs, 1),
            "pos_mean": pos_mean.astype(np.float32),
            "neg_mean": neg_mean.astype(np.float32),
        }
        return Compressed(self.spec, flat.size, tuple(np.shape(array)),
                          payload, self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        signs = unpack_codes(compressed.payload["signs"], 1,
                             compressed.numel).astype(bool)
        size = min(compressed.spec.bucket_size, max(1, compressed.numel))
        n_buckets = -(-compressed.numel // size)
        padded_signs = np.zeros(n_buckets * size, dtype=bool)
        padded_signs[: compressed.numel] = signs
        padded_signs = padded_signs.reshape(n_buckets, size)
        pos = compressed.payload["pos_mean"][:, None]
        neg = compressed.payload["neg_mean"][:, None]
        values = np.where(padded_signs, neg, pos).astype(np.float32)
        return values.ravel()[: compressed.numel].reshape(compressed.shape)

"""Bucketed QSGD: stochastic uniform quantization with bit packing.

Implements the quantizer of Alistarh et al. (2017) as CGX deploys it
(Section 4): the gradient is split into fixed-size *buckets*, each
bucket is scaled by its own max-magnitude (the scaling the CGX kernels
use — plain L2 scaling wastes most of the code range at small bucket
sizes), and every value is stochastically rounded to one of
``s = 2^(bits-1) - 1`` levels plus a sign bit.  The wire format is the
packed codes plus one fp32 scale per bucket, so the exact transmitted
size matches :meth:`CompressionSpec.wire_bytes`.

Bucketing trades metadata overhead for accuracy: larger buckets
compress harder but have higher per-element error — the trade-off the
paper resolves at 4 bits / bucket 128 as its default.
"""

from __future__ import annotations

import numpy as np

from .base import Compressed, CompressionSpec, Compressor
from .contracts import CompressorContract

__all__ = ["QSGDCompressor", "pack_codes", "unpack_codes"]


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack small unsigned integers (< 2^bits) into a uint8 byte stream."""
    if codes.size == 0:
        return np.empty(0, dtype=np.uint8)
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    codes = codes.astype(np.uint8, copy=False)
    bit_matrix = np.unpackbits(codes[:, None], axis=1)[:, 8 - bits:]
    return np.packbits(bit_matrix.ravel())


def unpack_codes(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; returns ``count`` codes."""
    if count == 0:
        return np.empty(0, dtype=np.uint8)
    bit_stream = np.unpackbits(packed)[: count * bits]
    bit_matrix = bit_stream.reshape(count, bits)
    padded = np.zeros((count, 8), dtype=np.uint8)
    padded[:, 8 - bits:] = bit_matrix
    return np.packbits(padded, axis=1).ravel()


class QSGDCompressor(Compressor):
    """Stochastic uniform quantizer over fixed-size buckets."""

    contract = CompressorContract("qsgd", uses_rng=True,
                                  supported_bits=(2, 3, 4, 5, 6, 7, 8))

    def __init__(self, spec: CompressionSpec):
        super().__init__(spec)
        self.levels = 2 ** (spec.bits - 1) - 1  # quantization levels per sign
        if self.levels < 1:
            raise ValueError(f"bits={spec.bits} leaves no quantization levels")

    def _bucketize(self, flat: np.ndarray) -> np.ndarray:
        """View as (n_buckets, bucket_size), zero-padding the tail."""
        size = min(self.spec.bucket_size, max(1, flat.size))
        n_buckets = -(-flat.size // size)
        padded = np.zeros(n_buckets * size, dtype=np.float32)
        padded[: flat.size] = flat
        return padded.reshape(n_buckets, size)

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        buckets = self._bucketize(flat)
        if self.spec.scaling == "l2":
            norms = np.linalg.norm(buckets, axis=1)
        else:
            norms = np.max(np.abs(buckets), axis=1)
        safe_norms = np.where(norms > 0, norms, 1.0)
        normalized = np.abs(buckets) / safe_norms[:, None]  # in [0, 1]
        scaled = normalized * self.levels
        lower = np.floor(scaled)
        prob = scaled - lower
        lower += rng.random(size=lower.shape) < prob
        level = np.minimum(lower, self.levels).astype(np.uint8)
        sign_bit = (buckets < 0).astype(np.uint8)
        codes = (level | (sign_bit << (self.spec.bits - 1))).ravel()
        codes = codes[: flat.size]  # drop tail padding codes
        packed = pack_codes(codes, self.spec.bits)
        payload = {
            "codes": packed,
            "norms": norms.astype(np.float32),
        }
        return Compressed(self.spec, flat.size, tuple(np.shape(array)), payload,
                          self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        spec = compressed.spec
        codes = unpack_codes(compressed.payload["codes"], spec.bits,
                             compressed.numel)
        sign_mask = np.uint8(1 << (spec.bits - 1))
        signs = np.where(codes & sign_mask, -1.0, 1.0).astype(np.float32)
        levels = (codes & (sign_mask - np.uint8(1))).astype(np.float32)
        values = signs * levels / self.levels
        size = min(spec.bucket_size, max(1, compressed.numel))
        n_buckets = -(-compressed.numel // size)
        padded = np.zeros(n_buckets * size, dtype=np.float32)
        padded[: compressed.numel] = values
        padded = padded.reshape(n_buckets, size)
        padded *= compressed.payload["norms"][:, None]
        return padded.ravel()[: compressed.numel].reshape(compressed.shape)

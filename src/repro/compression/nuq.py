"""NUQSGD: non-uniform (exponential-level) stochastic quantization.

Ramezani-Kebrya et al. (JMLR 2021) — cited by the paper as the line of
work that "reduces the variance of the compression by proposing improved
quantizers".  Instead of QSGD's uniform grid, levels are placed
geometrically (1, 1/2, 1/4, ... of the bucket scale), matching the
heavy-tailed distribution of normalized gradient values: most
coordinates are small relative to the bucket max, and exponential
spacing gives them finer resolution where the mass is.

Included as the paper's "extension to other compression methods"
direction; the ablation bench ``bench_ablation_quantizers.py`` measures
the variance advantage at equal bit-width.
"""

from __future__ import annotations

import numpy as np

from .base import Compressed, CompressionSpec, Compressor
from .contracts import CompressorContract
from .qsgd import pack_codes, unpack_codes

__all__ = ["NUQSGDCompressor", "exponential_levels"]


def exponential_levels(bits: int) -> np.ndarray:
    """Quantization levels in [0, 1]: 0 plus a geometric ladder.

    ``bits``-wide codes reserve one sign bit; the remaining
    ``2^(bits-1) - 1`` nonzero levels are ``2^-(k)`` for
    ``k = levels-1 .. 0`` — i.e. the top level is 1.0 (the bucket max)
    and each level below halves.
    """
    count = 2 ** (bits - 1) - 1
    if count < 1:
        raise ValueError(f"bits={bits} leaves no quantization levels")
    ladder = 2.0 ** -np.arange(count - 1, -1, -1, dtype=np.float64)
    return np.concatenate([[0.0], ladder])


class NUQSGDCompressor(Compressor):
    """Bucketed stochastic quantizer over exponential levels.

    Uses the same wire format as QSGD (packed codes + one fp32 scale per
    bucket), so :meth:`CompressionSpec.wire_bytes` accounting carries
    over unchanged; only the level placement differs.
    """

    contract = CompressorContract("nuq", uses_rng=True,
                                  supported_bits=(2, 3, 4, 5, 6, 7, 8))

    def __init__(self, spec: CompressionSpec):
        super().__init__(spec)
        self.levels = exponential_levels(spec.bits)

    def _bucketize(self, flat: np.ndarray) -> np.ndarray:
        size = min(self.spec.bucket_size, max(1, flat.size))
        n_buckets = -(-flat.size // size)
        padded = np.zeros(n_buckets * size, dtype=np.float32)
        padded[: flat.size] = flat
        return padded.reshape(n_buckets, size)

    def compress(self, array: np.ndarray, rng: np.random.Generator,
                 key=None) -> Compressed:
        flat = np.asarray(array, dtype=np.float32).ravel()
        buckets = self._bucketize(flat)
        if self.spec.scaling == "l2":
            scales = np.linalg.norm(buckets, axis=1)
        else:
            scales = np.max(np.abs(buckets), axis=1)
        safe = np.where(scales > 0, scales, 1.0)
        normalized = np.abs(buckets) / safe[:, None]   # in [0, 1]

        # stochastic rounding between the surrounding exponential levels
        idx_hi = np.searchsorted(self.levels, normalized, side="left")
        idx_hi = np.clip(idx_hi, 1, len(self.levels) - 1)
        lo = self.levels[idx_hi - 1]
        hi = self.levels[idx_hi]
        span = np.maximum(hi - lo, 1e-12)
        prob_up = np.clip((normalized - lo) / span, 0.0, 1.0)
        go_up = rng.random(size=normalized.shape) < prob_up
        level_idx = (idx_hi - 1 + go_up).astype(np.uint8)

        sign_bit = (buckets < 0).astype(np.uint8)
        codes = (level_idx | (sign_bit << (self.spec.bits - 1))).ravel()
        codes = codes[: flat.size]
        payload = {
            "codes": pack_codes(codes, self.spec.bits),
            "norms": scales.astype(np.float32),
        }
        return Compressed(self.spec, flat.size, tuple(np.shape(array)),
                          payload, self.spec.wire_bytes(flat.size))

    def decompress(self, compressed: Compressed) -> np.ndarray:
        spec = compressed.spec
        codes = unpack_codes(compressed.payload["codes"], spec.bits,
                             compressed.numel)
        sign_mask = np.uint8(1 << (spec.bits - 1))
        signs = np.where(codes & sign_mask, -1.0, 1.0).astype(np.float32)
        level_idx = (codes & (sign_mask - np.uint8(1))).astype(np.int64)
        values = signs * self.levels[level_idx].astype(np.float32)
        size = min(spec.bucket_size, max(1, compressed.numel))
        n_buckets = -(-compressed.numel // size)
        padded = np.zeros(n_buckets * size, dtype=np.float32)
        padded[: compressed.numel] = values
        padded = padded.reshape(n_buckets, size)
        padded *= compressed.payload["norms"][:, None]
        return padded.ravel()[: compressed.numel].reshape(compressed.shape)

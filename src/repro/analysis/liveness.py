"""Deadlock & progress certifier (Pillar 8, rules DLV001..DLV006).

The schedule verifier (SCH) proves each scheme's send/recv log is
*symmetric*; this pass proves the schedules cannot *stop making
progress* — under fault campaigns that reshape them (retransmits,
quorum demotion, carry drains, rejoin) and under any rank interleaving
a real transport's scheduler might pick.

``DLV001``  wait-for cycle among blocked ranks — a potential deadlock.
``DLV002``  a blocking endpoint that can never match inside its barrier
            phase: a recv whose send does not exist, or a send no rank
            ever consumes (a rendezvous sender would block forever).
``DLV003``  an event names a quorum-excluded (crashed) rank: the
            degraded-mode schedule still routes traffic to or from a
            rank the supervisor removed.
``DLV004``  the small-world interleaving exploration could not certify
            the segment: a deadlocking interleaving exists, final
            message residues disagree across interleavings, or the
            exploration budget was exhausted (soundness not
            established).
``DLV005``  bounded wait violated: under a fair round-robin scheduler a
            blocked recv waited more rounds than
            :meth:`~repro.analysis.explore.FairRunResult.bound` allows
            for its matching send — or a partial-allreduce drain phase
            left carries banked (a gradient stranded forever).
``DLV006``  a blocking-call pattern in ``collectives``/``faults``
            bypasses the ``deliver_chunk``/trace hooks, so the fault
            channel and this certifier cannot see it.

The execution model (eager sends, blocking recvs, barrier between
:func:`~repro.collectives.trace.phase_scope` spans) matches the
simulated data path; the battery of (scheme x world x campaign) cases
lives in :mod:`repro.faults.cases`, the exploration machinery in
:mod:`repro.analysis.explore`.
"""

from __future__ import annotations

import ast
import os
from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.collectives.trace import ScheduleTrace, TraceEvent

from .explore import (build_programs, explore, fair_schedule, greedy_run,
                      phase_segments)
from .findings import Finding, sort_findings

__all__ = ["DLV_RULES", "DEFAULT_EXPLORE_BUDGET", "analyze_segment",
           "analyze_trace_liveness", "lint_blocking", "verify_liveness",
           "blocking_default_roots"]

DLV_RULES = {
    "DLV001": "wait-for cycle among blocked ranks (potential deadlock)",
    "DLV002": "blocking endpoint that can never match in its phase",
    "DLV003": "event names a quorum-excluded rank",
    "DLV004": "interleaving exploration failed to certify the segment",
    "DLV005": "bounded wait violated or carries left undrained",
    "DLV006": "blocking call bypasses the deliver_chunk/trace hooks",
}

#: transition budget per explored segment; clean segments are linear in
#: their event count, so hitting this means something is very wrong —
#: and it is reported as DLV004, never swallowed
DEFAULT_EXPLORE_BUDGET = 200_000


def _finding(rule: str, path: str, message: str, scheme: str = "",
             world: int = 0) -> Finding:
    return Finding(rule=rule, path=path, line=0, col=0, message=message,
                   source="liveness", scheme=scheme, world=world)


# -- wait-for graph over one barrier phase ------------------------------------

def _find_cycle(edges: dict[int, list[int]]) -> list[int]:
    """Any cycle in a graph where every node has an out-edge."""
    for start in sorted(edges):
        seen: dict[int, int] = {}
        path: list[int] = []
        node = start
        while node in edges and node not in seen:
            seen[node] = len(path)
            path.append(node)
            node = min(edges[node])  # deterministic walk
        if node in seen:
            return path[seen[node]:]
    return []


def analyze_segment(label: str, events: Sequence[TraceEvent], path: str,
                    scheme: str = "", world: int = 0,
                    excluded: Iterable[int] = ()) -> list[Finding]:
    """DLV001/002/003 over one barrier phase of a trace."""
    findings: list[Finding] = []
    excluded_set = set(excluded)

    if excluded_set:
        flagged: set = set()
        for event in events:
            bad = {event.src, event.dst} & excluded_set
            if bad and (event.kind, event.match_key()) not in flagged:
                flagged.add((event.kind, event.match_key()))
                findings.append(_finding(
                    "DLV003", path,
                    f"phase {label!r}: {event.kind} {event.src}->"
                    f"{event.dst} (tag {event.tag!r}) names excluded "
                    f"rank(s) {sorted(bad)} — traffic routed to a rank "
                    f"the quorum removed", scheme, world))

    programs = build_programs(events)

    # DLV002 (static): per-key count mismatch inside the phase.  A recv
    # beyond the phase's sends waits on a message that cannot arrive
    # before the barrier; a send beyond its recvs is never consumed.
    sends = Counter(e.match_key() for e in events if e.kind == "send")
    recvs = Counter(e.match_key() for e in events if e.kind == "recv")
    for key in sorted(set(sends) | set(recvs)):
        src, dst, step, nbytes, tag = key
        if recvs[key] > sends[key]:
            findings.append(_finding(
                "DLV002", path,
                f"phase {label!r}: rank {dst} blocks on "
                f"{recvs[key] - sends[key]} recv(s) {src}->{dst} "
                f"(tag {tag!r}, step {step}) with no matching send in "
                f"the phase", scheme, world))
        elif sends[key] > recvs[key]:
            findings.append(_finding(
                "DLV002", path,
                f"phase {label!r}: {sends[key] - recvs[key]} send(s) "
                f"{src}->{dst} (tag {tag!r}, step {step}) are never "
                f"received in the phase", scheme, world))

    # DLV001: run to the (unique) maximal-progress fixpoint; a stuck
    # rank whose sender exists is waiting on another stuck rank, so the
    # blocked set carries a wait-for cycle.
    greedy = greedy_run(programs)
    if not greedy.completed:
        edges: dict[int, list[int]] = {}
        for rank, op in sorted(greedy.blocked.items()):
            senders = sorted(
                other for other, ops in greedy.remaining.items()
                if any(o.kind == "send" and o.key == op.key for o in ops))
            if senders:
                edges[rank] = senders
        cycle = _find_cycle(edges)
        if cycle:
            chain = " -> ".join(str(r) for r in cycle + [cycle[0]])
            waits = "; ".join(
                f"rank {r} blocked on {greedy.blocked[r].describe()}"
                for r in cycle)
            findings.append(_finding(
                "DLV001", path,
                f"phase {label!r}: wait-for cycle {chain} ({waits})",
                scheme, world))
        elif not any(f.rule == "DLV002" for f in findings):
            # defensive: stuck without a cycle or an orphan should be
            # impossible; surface it rather than certifying
            blocked = ", ".join(
                f"rank {r} on {op.describe()}"
                for r, op in sorted(greedy.blocked.items()))
            findings.append(_finding(
                "DLV001", path,
                f"phase {label!r}: execution stuck without a wait-for "
                f"cycle ({blocked})", scheme, world))
    return findings


def explore_segment(label: str, events: Sequence[TraceEvent], path: str,
                    scheme: str = "", world: int = 0,
                    budget: int = DEFAULT_EXPLORE_BUDGET) -> list[Finding]:
    """DLV004: certify every interleaving of one phase terminates."""
    findings: list[Finding] = []
    programs = build_programs(events)
    result = explore(programs, budget=budget)
    if result.budget_exhausted:
        findings.append(_finding(
            "DLV004", path,
            f"phase {label!r}: exploration budget of {budget} "
            f"transitions exhausted after {result.interleavings} "
            f"complete interleaving(s) — termination not certified",
            scheme, world))
        return findings
    for blocked in result.deadlocks:
        detail = ", ".join(f"rank {r} on {op.describe()}"
                           for r, op in sorted(blocked.items()))
        findings.append(_finding(
            "DLV004", path,
            f"phase {label!r}: a reachable interleaving deadlocks "
            f"({detail})", scheme, world))
    if len(result.residues) > 1:
        findings.append(_finding(
            "DLV004", path,
            f"phase {label!r}: {len(result.residues)} distinct final "
            f"message residues across interleavings — message counts "
            f"are not conserved", scheme, world))
    return findings


def fair_segment(label: str, events: Sequence[TraceEvent], path: str,
                 scheme: str = "", world: int = 0) -> list[Finding]:
    """DLV005: bounded wait under a fair round-robin scheduler."""
    programs = build_programs(events)
    result = fair_schedule(programs)
    if not result.completed:
        # the wait-for analysis reports the deadlock itself (DLV001/2)
        return []
    bound = result.bound(world or (max(programs) + 1 if programs else 1))
    if result.max_wait > bound:
        return [_finding(
            "DLV005", path,
            f"phase {label!r}: a blocked recv waited {result.max_wait} "
            f"fair scheduler rounds (bound {bound} for longest program "
            f"{result.longest}) for its matching send", scheme, world)]
    return []


def analyze_trace_liveness(trace: ScheduleTrace, path: str,
                           scheme: str = "", world: int = 0,
                           excluded_by_phase:
                           Mapping[str, Iterable[int]] | None = None,
                           undrained_carries: bool = False,
                           budget: int = DEFAULT_EXPLORE_BUDGET,
                           ) -> list[Finding]:
    """All dynamic DLV rules over one captured multi-phase trace.

    ``excluded_by_phase`` maps a phase label to the ranks dead *while
    that phase ran* — exclusion is a property of the moment in the
    campaign, not of the whole trace (a crashed rank participates
    legitimately before its crash and after its rejoin).
    """
    findings: list[Finding] = []
    excluded_by_phase = excluded_by_phase or {}
    for label, events in phase_segments(trace):
        findings.extend(analyze_segment(
            label, events, path, scheme, world,
            excluded_by_phase.get(label, ())))
        findings.extend(explore_segment(label, events, path, scheme,
                                        world, budget))
        findings.extend(fair_segment(label, events, path, scheme, world))
    if undrained_carries:
        findings.append(_finding(
            "DLV005", path,
            "carries remain banked after the drain phase — a skipped "
            "gradient is stranded forever", scheme, world))
    return sort_findings(findings)


# -- DLV006: static AST pass over collectives/ and faults/ --------------------

#: module-level calls that block outside the audited message path
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"), ("select", "select"), ("select", "poll"),
    ("select", "epoll"), ("signal", "pause"), ("signal", "sigwait"),
    ("os", "wait"), ("os", "waitpid"),
}

#: method names that block regardless of the receiver object
_BLOCKING_METHODS = {"acquire", "wait", "wait_for"}

#: functions allowed to emit send/recv endpoints without deliver_chunk:
#: the trace module defines the hooks, and fault channels *are* the
#: delivery path
_EMIT_EXEMPT_MODULES = {"trace.py"}
_EMIT_EXEMPT_FUNCTIONS = {"deliver"}


def blocking_default_roots() -> tuple[str, ...]:
    """The packages the DLV006 pass audits, located via their imports."""
    import repro.collectives
    import repro.faults

    return (os.path.dirname(os.path.abspath(repro.collectives.__file__)),
            os.path.dirname(os.path.abspath(repro.faults.__file__)))


def _own_calls(func: ast.AST) -> Iterable[ast.Call]:
    """Call nodes in ``func``'s body, excluding nested function defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_name(call: ast.Call) -> tuple[str | None, str]:
    """(qualifier, name) of a call: ``time.sleep`` -> ("time", "sleep")."""
    func = call.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            return func.value.id, func.attr
        return "", func.attr
    return None, ""


def lint_blocking_source(source: str, path: str) -> list[Finding]:
    """DLV006 over one file's source text."""
    findings: list[Finding] = []
    lines = source.splitlines()
    tree = ast.parse(source, filename=path)
    basename = os.path.basename(path)

    def snippet(lineno: int) -> str:
        return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        calls = list(_own_calls(node))
        names = {_call_name(call) for call in calls}
        bare = {name for _, name in names}

        emits = bare & {"emit_send", "emit_recv"}
        if emits and "deliver_chunk" not in bare \
                and basename not in _EMIT_EXEMPT_MODULES \
                and node.name not in _EMIT_EXEMPT_FUNCTIONS \
                and not node.name.startswith("emit_"):
            findings.append(Finding(
                rule="DLV006", path=path, line=node.lineno,
                col=node.col_offset,
                message=f"function {node.name!r} emits "
                        f"{'/'.join(sorted(emits))} without routing the "
                        f"payload through deliver_chunk — the transfer "
                        f"blocks invisibly to fault injection",
                source="liveness", snippet=snippet(node.lineno)))

        for call in calls:
            qualifier, name = _call_name(call)
            blocking = (qualifier, name) in _BLOCKING_MODULE_CALLS or (
                qualifier is not None and name in _BLOCKING_METHODS)
            if blocking:
                label = f"{qualifier}.{name}" if qualifier else name
                findings.append(Finding(
                    rule="DLV006", path=path, line=call.lineno,
                    col=call.col_offset,
                    message=f"raw blocking primitive {label!r} in "
                            f"{node.name!r} bypasses the deliver_chunk/"
                            f"trace hooks — unauditable blocking",
                    source="liveness", snippet=snippet(call.lineno)))
    return findings


def lint_blocking(roots: Sequence[str] | None = None) -> list[Finding]:
    """DLV006 over every python file under ``roots`` (default: the
    collectives and faults packages), occurrence-numbered for stable
    baseline fingerprints."""
    from .rules import iter_python_files

    roots = tuple(roots) if roots is not None else blocking_default_roots()
    findings: list[Finding] = []
    for path in iter_python_files(roots):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        rel = os.path.relpath(path)
        findings.extend(lint_blocking_source(source, rel))
    findings = sort_findings(findings)
    seen: dict[tuple, int] = {}
    numbered: list[Finding] = []
    for finding in findings:
        ident = (finding.rule, finding.path, finding.snippet)
        numbered.append(Finding(
            rule=finding.rule, path=finding.path, line=finding.line,
            col=finding.col, message=finding.message, source=finding.source,
            snippet=finding.snippet, occurrence=seen.get(ident, 0)))
        seen[ident] = seen.get(ident, 0) + 1
    return numbered


# -- the full battery ---------------------------------------------------------

def verify_liveness(worlds: tuple[int, ...] = (2, 3, 4),
                    budget: int = DEFAULT_EXPLORE_BUDGET,
                    with_blocking_lint: bool = True) -> list[Finding]:
    """Certify every (scheme x world x campaign) cell; [] means clean."""
    from repro.faults.cases import liveness_cases, trace_liveness_case

    findings: list[Finding] = []
    for case in liveness_cases(worlds):
        trace, aux = trace_liveness_case(case)
        findings.extend(analyze_trace_liveness(
            trace, case.path, scheme=case.scheme, world=case.world,
            excluded_by_phase=aux.phase_excluded,
            undrained_carries=aux.undrained_carries, budget=budget))
    if with_blocking_lint:
        findings.extend(lint_blocking())
    return sort_findings(findings)

"""Baseline (allowlist) support: grandfather findings, fail on new ones.

A baseline file is JSON mapping finding fingerprints to a human-readable
context, written with ``--write-baseline``.  On later runs, findings
whose fingerprint appears in the baseline are reported as *baselined*
and do not affect the exit code — the standard ratchet workflow for
introducing a linter to an existing codebase.
"""

from __future__ import annotations

import json
import os

from .findings import Finding

__all__ = ["load_baseline", "write_baseline", "split_baselined",
           "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = "analysis-baseline.json"
_VERSION = 1


def load_baseline(path: str) -> set[str]:
    """Fingerprints grandfathered by ``path``; empty if absent."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return set(data.get("fingerprints", {}))


def write_baseline(findings: list[Finding], path: str) -> int:
    """Persist ``findings`` as the new baseline; returns the count."""
    fingerprints = {
        f.fingerprint: {"rule": f.rule, "path": f.path, "message": f.message}
        for f in findings
    }
    payload = {"version": _VERSION, "fingerprints": fingerprints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(fingerprints)


def split_baselined(findings: list[Finding], baseline: set[str],
                    ) -> tuple[list[Finding], list[Finding]]:
    """(new, baselined) partition of ``findings``."""
    new, old = [], []
    for finding in findings:
        (old if finding.fingerprint in baseline else new).append(finding)
    return new, old

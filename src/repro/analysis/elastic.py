"""Elastic-membership certification battery (ELA001..ELA005).

Dynamic-analysis rules certifying the elastic autoscaling + spot-
preemption layer (:mod:`repro.faults.elastic` plus its trainer, engine
and adaptive-controller integration):

* **ELA001** — no ghost gradients: once a rank departs (graceful spot
  exit), no later step's membership contains it and its replica's
  weights never change again — departed machines neither contribute
  gradients nor consume reductions.
* **ELA002** — drain protocol: every warned rank either exits strictly
  before its reclaim deadline or is recorded as a missed drain exactly
  at the deadline (degrade-to-crash); on the stock campaigns the clean
  path must hold — zero missed drains.  The audit is the pure
  :func:`~repro.faults.elastic.check_drain_protocol` over the
  canonical log, so a tampered run is caught from the log alone.
* **ELA003** — convergence parity: elastically grown/shrunk worlds
  converge within ``LOSS_TOLERANCE`` of the fixed-world baseline, in
  both oracle and supervised (observation-driven) modes; supervised
  elastic recovery keeps ``counters.oracle_reads == 0`` (HLT003's
  guarantee survives elasticity).
* **ELA004** — respec feasibility: every bit-width respec the adaptive
  controller performed across the run — periodic or triggered by a
  composition change — is certified feasible in exact rational
  arithmetic (:func:`~repro.core.adaptive.certify_assignment`) at the
  effective (fleet-scaled) error budget it was computed under.
* **ELA005** — reproducibility: two same-seed runs of each elastic
  campaign produce byte-identical canonical event logs.

Like the HLT certifier, the battery reads the fault plan freely (it is
grading against ground truth); the supervised decision path alone is
barred from the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveController, certify_assignment
from repro.core.config import CGXConfig
from repro.faults import (FaultPlan, check_drain_protocol, make_campaign)
from repro.training.recipes import get_recipe
from repro.training.tasks import make_task
from repro.training.trainer import DataParallelTrainer

from .findings import Finding

__all__ = ["ELA_RULES", "ELASTIC_CAMPAIGNS", "LOSS_TOLERANCE",
           "verify_elastic", "verify_no_ghost_gradients",
           "verify_drain_protocol", "verify_convergence_parity",
           "verify_respec_feasibility", "verify_log_determinism"]

LOSS_TOLERANCE = 0.02

FAMILY = "mlp"
WORLD = 4
STEPS = 20

#: the stock elastic campaigns the battery certifies
ELASTIC_CAMPAIGNS = ("spot-churn", "autoscale-burst")

ELA_RULES: dict[str, str] = {
    "ELA001": "a departed rank contributed to or consumed a reduction",
    "ELA002": "a warned rank violated the drain protocol",
    "ELA003": "an elastic world diverged from the fixed-world baseline "
              "or read the fault-plan oracle",
    "ELA004": "a respec produced a bit-width plan that is not "
              "certifiably feasible at its error budget",
    "ELA005": "same-seed elastic campaigns were not byte-identical",
}


def _finding(rule: str, campaign: str, message: str) -> Finding:
    return Finding(rule=rule, path=f"<elastic:{campaign}@world={WORLD}>",
                   line=0, col=0, message=message, source="elastic",
                   scheme=campaign, world=WORLD)


def _trainer(plan: FaultPlan | None, supervised: bool = False,
             adaptive: AdaptiveController | None = None,
             seed: int = 0) -> DataParallelTrainer:
    recipe = get_recipe(FAMILY)
    task = make_task(FAMILY, batch_size=recipe.batch_size, **recipe.kwargs())
    return DataParallelTrainer(
        task, world_size=WORLD, config=CGXConfig.cgx_default(128),
        recipe=recipe, seed=seed, fault_plan=plan, supervised=supervised,
        adaptive=adaptive)


def _run(trainer: DataParallelTrainer, steps: int) -> list[float]:
    return [trainer.train_step() for _ in range(steps)]


# -- ELA001: no ghost gradients ----------------------------------------------

def verify_no_ghost_gradients() -> list[Finding]:
    """Departed ranks vanish from membership and stop updating."""
    findings: list[Finding] = []
    for name in ELASTIC_CAMPAIGNS:
        trainer = _trainer(make_campaign(name, WORLD))
        coord = trainer.elastic
        assert coord is not None
        frozen: dict[int, dict[str, np.ndarray]] = {}
        for _ in range(STEPS):
            trainer.train_step()
            for rank in coord.departed - set(frozen):
                if rank >= len(trainer.replicas):
                    continue   # warned before provisioning: never built
                frozen[rank] = {
                    p_name: param.data.copy()
                    for p_name, param in
                    trainer.replicas[rank].named_parameters()}
        exit_steps = {dict(r.detail)["rank"]: r.step
                      for r in trainer.fault_runtime.records
                      if r.kind == "spot_exit"}
        for step, members in coord.history:
            for rank, exited_at in exit_steps.items():
                if step > exited_at and rank in members:
                    findings.append(_finding(
                        "ELA001", name,
                        f"rank {rank} departed at step {exited_at} but "
                        f"is a member again at step {step}"))
        for rank, weights in frozen.items():
            current = dict(trainer.replicas[rank].named_parameters())
            for p_name, snapshot in weights.items():
                if not np.array_equal(snapshot, current[p_name].data):
                    findings.append(_finding(
                        "ELA001", name,
                        f"departed rank {rank}'s parameter {p_name} "
                        f"changed after it left the world (a reduction "
                        f"reached a ghost)"))
                    break
    return findings


# -- ELA002: drain protocol ---------------------------------------------------

def verify_drain_protocol() -> list[Finding]:
    """Warned ranks drain before the deadline or degrade, never linger."""
    findings: list[Finding] = []
    for name in ELASTIC_CAMPAIGNS:
        plan = make_campaign(name, WORLD)
        trainer = _trainer(plan)
        _run(trainer, STEPS)
        runtime = trainer.fault_runtime
        assert runtime is not None
        for message in check_drain_protocol(plan, runtime.records):
            findings.append(_finding("ELA002", name, message))
        if runtime.counters.drain_missed:
            findings.append(_finding(
                "ELA002", name,
                f"{runtime.counters.drain_missed} missed drain(s) on a "
                f"campaign whose clean drain path is reachable"))
    return findings


# -- ELA003: convergence parity ----------------------------------------------

def verify_convergence_parity() -> list[Finding]:
    """Elastic worlds track the fixed-world loss; supervised stays blind."""
    findings: list[Finding] = []
    baseline = _run(_trainer(None), STEPS)
    for name in ELASTIC_CAMPAIGNS:
        for supervised in (False, True):
            mode = "supervised" if supervised else "oracle"
            trainer = _trainer(make_campaign(name, WORLD),
                               supervised=supervised)
            losses = _run(trainer, STEPS)
            runtime = trainer.fault_runtime
            assert runtime is not None
            drift = abs(losses[-1] - baseline[-1])
            if not np.isfinite(losses[-1]) or drift > LOSS_TOLERANCE:
                findings.append(_finding(
                    "ELA003", name,
                    f"{mode} final loss {losses[-1]:.6f} vs fixed-world "
                    f"{baseline[-1]:.6f} (drift {drift:.6f} > tolerance "
                    f"{LOSS_TOLERANCE})"))
            if supervised and runtime.counters.oracle_reads:
                findings.append(_finding(
                    "ELA003", name,
                    f"supervised elastic decision path issued "
                    f"{runtime.counters.oracle_reads} oracle read(s)"))
    return findings


# -- ELA004: respec feasibility ----------------------------------------------

def verify_respec_feasibility() -> list[Finding]:
    """Every respec across every composition certifies in exact arithmetic."""
    findings: list[Finding] = []
    for name in ELASTIC_CAMPAIGNS:
        config = CGXConfig.cgx_default(128)
        adaptive = AdaptiveController(config, period=5)
        trainer = _trainer(make_campaign(name, WORLD), adaptive=adaptive)
        _run(trainer, STEPS)
        runtime = trainer.fault_runtime
        assert runtime is not None
        if not any(r.kind == "respec" for r in runtime.records):
            findings.append(_finding(
                "ELA004", name,
                "no respec event was logged although the campaign "
                "changes the world composition"))
        for i, entry in enumerate(adaptive.respec_history):
            if not entry["assignment"]:
                continue
            if not certify_assignment(entry["stats"], entry["assignment"],
                                      alpha=entry["alpha"]):
                findings.append(_finding(
                    "ELA004", name,
                    f"respec #{i} ({entry['trigger']}, world "
                    f"{entry['world']}) fails exact certification at "
                    f"alpha={entry['alpha']:.3f}"))
    return findings


# -- ELA005: reproducibility --------------------------------------------------

def verify_log_determinism() -> list[Finding]:
    """Two same-seed runs per campaign: byte-identical canonical logs."""
    findings: list[Finding] = []
    for name in ELASTIC_CAMPAIGNS:
        logs = []
        for _ in range(2):
            trainer = _trainer(make_campaign(name, WORLD), supervised=True)
            _run(trainer, STEPS)
            assert trainer.fault_runtime is not None
            logs.append(trainer.fault_runtime.log_bytes())
        if logs[0] != logs[1]:
            findings.append(_finding(
                "ELA005", name,
                "two same-seed supervised elastic runs produced "
                "different canonical event logs"))
    return findings


def verify_elastic() -> list[Finding]:
    """Run the full ELA battery."""
    findings: list[Finding] = []
    findings.extend(verify_no_ghost_gradients())
    findings.extend(verify_drain_protocol())
    findings.extend(verify_convergence_parity())
    findings.extend(verify_respec_feasibility())
    findings.extend(verify_log_determinism())
    return findings

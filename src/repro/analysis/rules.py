"""AST-based numerical-safety linter with repo-specific rules.

The rules encode the failure modes that matter for a lossy-compression
training system (PAPER.md section 3): silent precision changes, aliased
error-feedback state, and in-place mutation of shared chunk views.
None of them crash at runtime — they corrupt results quietly, which is
exactly why they are checked statically.

Rules:

* **REP001** — float equality via ``==``/``!=`` against a float literal.
* **REP002** — default-dtype (float64) array creation (``np.zeros`` /
  ``empty`` / ``ones`` / ``full`` / ``arange`` without ``dtype=``) in the
  compression/collectives hot paths, where a silent float64 upcast both
  doubles wire maths and changes quantization error.
* **REP003** — storing a reference to a caller-owned array (parameter or
  alias) into error-feedback/carry state without ``.copy()``; the next
  in-place update then corrupts the caller's gradient.
* **REP004** — mutable default argument.
* **REP005** — bare ``except:``.
* **REP006** — in-place (augmented) assignment on a chunk view returned
  by ``split_chunks``; accumulating into a view silently accumulates
  into the parent buffer.  (``view[:] = ...`` stores into freshly
  allocated output buffers are the supported pattern and not flagged.)
"""

from __future__ import annotations

import ast
import os
from collections import defaultdict
from typing import Iterable, Iterator

from .findings import Finding, sort_findings

__all__ = ["RULES", "HOT_PATH_PARTS", "lint_source", "lint_file",
           "iter_python_files", "run_lint"]

#: rule id -> one-line description (mirrored in docs/analysis.md)
RULES = {
    "REP001": "float equality comparison against a float literal",
    "REP002": "default-dtype array creation in a hot path",
    "REP003": "error-feedback state stores a reference without .copy()",
    "REP004": "mutable default argument",
    "REP005": "bare except",
    "REP006": "in-place op on a chunk view returned by split_chunks",
}

#: a file whose path contains one of these directory names is "hot path"
#: for REP002 (where float64 upcasts change wire sizes and error)
HOT_PATH_PARTS = ("compression", "collectives")

_DEFAULT_DTYPE_FUNCS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2,
                        "arange": 3}  # name -> positional args before dtype
_NUMPY_ALIASES = {"np", "numpy"}
_STATE_HINTS = ("residual", "carry", "error", "feedback", "momentum",
                "memory", "state")
_MUTABLE_CTORS = {"list", "dict", "set"}


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _root_name(node: ast.AST) -> str | None:
    """Base ``Name`` id under a Subscript/Attribute chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_split_chunks_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "split_chunks"
    if isinstance(func, ast.Attribute):
        return func.attr == "split_chunks"
    return False


def _is_view_expr(value: ast.AST, views: set[str]) -> bool:
    """Does ``value`` evaluate to a split_chunks view (or container of)?

    Structural, not a contains-scan: a comprehension that *iterates*
    split_chunks but builds copies (``[c.copy() for c in split_chunks(b, n)]``)
    is not a view.
    """
    if _is_split_chunks_call(value):
        return True
    if isinstance(value, ast.Name):
        return value.id in views
    if isinstance(value, ast.Subscript):
        return _is_view_expr(value.value, views)
    if isinstance(value, ast.ListComp):
        return _is_view_expr(value.elt, views)
    if isinstance(value, (ast.List, ast.Tuple)):
        return any(_is_view_expr(elt, views) for elt in value.elts)
    return False


def _target_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment/loop target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class _FileChecker:
    def __init__(self, tree: ast.Module, path: str, lines: list[str],
                 hot_path: bool) -> None:
        self.tree = tree
        self.path = path
        self.lines = lines
        self.hot_path = hot_path
        self.findings: list[Finding] = []

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) \
            else ""
        self.findings.append(Finding(
            rule=rule, path=self.path, line=line,
            col=getattr(node, "col_offset", 0), message=message,
            snippet=snippet,
        ))

    def run(self) -> list[Finding]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Compare):
                self._check_float_equality(node)
            elif isinstance(node, ast.Call):
                self._check_default_dtype(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_mutable_defaults(node)
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                self.emit("REP005", node,
                          "bare 'except:' swallows every error including "
                          "KeyboardInterrupt; name the exceptions")
        self._check_scope(self.tree.body, params=())
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                params = tuple(
                    a.arg for a in (args.posonlyargs + args.args
                                    + args.kwonlyargs)
                ) + tuple(a.arg for a in (args.vararg, args.kwarg) if a)
                self._check_scope(node.body, params=params)
        return self.findings

    # -- REP001 ------------------------------------------------------
    def _check_float_equality(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(operands[i]) or _is_float_literal(
                    operands[i + 1]):
                self.emit("REP001", node,
                          "float equality is precision-fragile; compare "
                          "with a tolerance or an ordered bound")
                break

    # -- REP002 ------------------------------------------------------
    def _check_default_dtype(self, node: ast.Call) -> None:
        if not self.hot_path:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
                and func.attr in _DEFAULT_DTYPE_FUNCS):
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        if len(node.args) > _DEFAULT_DTYPE_FUNCS[func.attr]:
            return  # dtype passed positionally
        self.emit("REP002", node,
                  f"np.{func.attr} defaults to float64 here; hot-path "
                  f"buffers must pin dtype (the wire format is fp32)")

    # -- REP004 ------------------------------------------------------
    def _check_mutable_defaults(
            self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CTORS
            )
            if mutable:
                self.emit("REP004", default,
                          "mutable default argument is shared across "
                          "calls; default to None and create inside")

    # -- REP003 + REP006 (scope-sensitive) ---------------------------
    def _check_scope(self, body: list[ast.stmt], params: tuple[str, ...]
                     ) -> None:
        """One pass over a function (or module) body.

        Tracks which local names alias caller-owned arrays (REP003) and
        which names are views from ``split_chunks`` (REP006).  Nested
        function bodies are skipped here — they get their own scope pass.
        """
        aliases = set(params)
        fresh: set[str] = set()
        views: set[str] = set()
        for stmt in self._scope_statements(body):
            if isinstance(stmt, ast.Assign):
                self._track_assign(stmt, aliases, fresh, views)
                self._check_state_alias(stmt, aliases, fresh)
            elif isinstance(stmt, ast.For):
                self._track_loop(stmt, views)
            elif isinstance(stmt, ast.AugAssign):
                root = _root_name(stmt.target)
                if root is not None and root in views:
                    self.emit("REP006", stmt,
                              "augmented assignment on a split_chunks view "
                              "accumulates into the parent buffer; operate "
                              "on a .copy() or write via a fresh output")

    def _scope_statements(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """All statements in this scope, not descending into defs."""
        stack = list(body)
        while stack:
            stmt = stack.pop(0)
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for field_body in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, field_body, None)
                if children:
                    stack.extend(
                        c for c in children if isinstance(c, ast.stmt))
            if isinstance(stmt, (ast.Try,)):
                for handler in stmt.handlers:
                    stack.extend(handler.body)

    def _track_assign(self, stmt: ast.Assign, aliases: set[str],
                      fresh: set[str], views: set[str]) -> None:
        value = stmt.value
        value_is_view = _is_view_expr(value, views)
        value_is_alias = isinstance(value, (ast.Attribute, ast.Subscript)) \
            or (isinstance(value, ast.Name)
                and (value.id in aliases or value.id not in fresh))
        for target in stmt.targets:
            for name in _target_names(target):
                views.discard(name)
                aliases.discard(name)
                fresh.discard(name)
                if value_is_view:
                    views.add(name)
                elif value_is_alias:
                    aliases.add(name)
                else:
                    fresh.add(name)

    def _track_loop(self, stmt: ast.For, views: set[str]) -> None:
        it = stmt.iter
        over_views = (
            _is_split_chunks_call(it)
            or (isinstance(it, ast.Name) and it.id in views)
            or (isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("enumerate", "reversed", "zip")
                and any(_is_split_chunks_call(a)
                        or (isinstance(a, ast.Name) and a.id in views)
                        for a in it.args))
        )
        if over_views:
            for name in _target_names(stmt.target):
                views.add(name)

    def _check_state_alias(self, stmt: ast.Assign, aliases: set[str],
                           fresh: set[str]) -> None:
        for target in stmt.targets:
            hint = self._state_hint(target)
            if hint is None:
                continue
            if self._is_aliasing_value(stmt.value, aliases, fresh):
                self.emit("REP003", stmt,
                          f"assigning a reference into {hint!r}; the next "
                          f"in-place update corrupts the caller's array — "
                          f"store a .copy()")

    @staticmethod
    def _state_hint(target: ast.AST) -> str | None:
        """State-container name hinted by an assignment target, if any.

        Only keyed stores (``self._residuals[key] = ...``) count: that is
        the per-(worker, layer) state shape error feedback uses, while a
        plain ``self.momentum = momentum`` is scalar configuration.
        """
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                name = base.attr
            elif isinstance(base, ast.Name):
                name = base.id
            else:
                return None
        else:
            return None
        lowered = name.lower()
        for needle in _STATE_HINTS:
            if needle in lowered:
                return name
        return None

    def _is_aliasing_value(self, value: ast.AST, aliases: set[str],
                           fresh: set[str]) -> bool:
        if isinstance(value, ast.Name):
            return value.id in aliases or value.id not in fresh
        if isinstance(value, (ast.Attribute, ast.Subscript)):
            return True
        if isinstance(value, ast.IfExp):
            return (self._is_aliasing_value(value.body, aliases, fresh)
                    or self._is_aliasing_value(value.orelse, aliases, fresh))
        return False


def _is_hot_path(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(part in HOT_PATH_PARTS for part in parts)


def lint_source(source: str, path: str = "<string>",
                hot_path: bool | None = None) -> list[Finding]:
    """Lint python ``source``; ``hot_path`` defaults from the path."""
    if hot_path is None:
        hot_path = _is_hot_path(path)
    tree = ast.parse(source, filename=path)
    checker = _FileChecker(tree, path, source.splitlines(), hot_path)
    return sort_findings(checker.run())


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
                and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def run_lint(paths: Iterable[str]) -> list[Finding]:
    """Lint every python file under ``paths``; occurrence-number results."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    findings = sort_findings(findings)
    seen: dict[tuple, int] = defaultdict(int)
    numbered = []
    for finding in findings:
        ident = (finding.rule, finding.path, finding.snippet)
        numbered.append(Finding(
            rule=finding.rule, path=finding.path, line=finding.line,
            col=finding.col, message=finding.message, source=finding.source,
            snippet=finding.snippet, occurrence=seen[ident],
        ))
        seen[ident] += 1
    return numbered

"""Health-layer certification battery (HLT001..HLT005).

Dynamic-analysis rules certifying the ``repro.health`` surface — the
phi-accrual failure detector, the observation-driven supervisor, and
the durable checkpoint store (:mod:`repro.faults.health`,
:mod:`repro.faults.store`):

* **HLT001** — zero false positives: supervised campaigns that inject
  no crash and no over-budget straggler (fault-free, and lossy-link
  with its 12% heartbeat loss) must produce no crash suspicion, no
  false suspicion and no straggler demotion.
* **HLT002** — bounded detection latency: on a crash campaign the
  first ``suspect_crash`` record must land within
  ``CRASH_LATENCY_BOUND`` steps of the injected crash (and the rejoin
  admission within ``REJOIN_LATENCY_BOUND`` of the rejoin); on a
  persistent over-budget straggler campaign the first
  ``demote_straggler`` within ``STRAGGLER_LATENCY_BOUND`` of onset.
* **HLT003** — oracle-free recovery parity: supervised training on the
  stock ``crash-rejoin`` and ``straggler`` campaigns must converge
  within ``LOSS_TOLERANCE`` of the oracle-driven baseline, with
  ``counters.oracle_reads == 0`` — the
  :func:`~repro.faults.plan.oracle_guard` tripwire proves the decision
  path never touched the plan.
* **HLT004** — resume determinism: a fresh trainer restored from the
  durable store must replay the remaining steps bit-identically
  (losses and final weights), and two same-seed supervised runs must
  produce byte-identical event logs.
* **HLT005** — store crash-safety: a truncated checkpoint, a garbled
  payload byte, and a stray ``.tmp`` from a killed writer must all be
  detected, with fallback to the newest valid checkpoint and training
  resuming bit-identically from it.

The certifier reads the fault plan freely — it grades the detector
against ground truth.  Only the *decision path* is barred from the
oracle, which is exactly what the guard measures.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.core.config import CGXConfig
from repro.faults import (CheckpointCorrupt, CheckpointStore, FaultPlan,
                          make_campaign, straggler)
from repro.faults.health import HealthPolicy
from repro.training.recipes import get_recipe
from repro.training.tasks import make_task
from repro.training.trainer import DataParallelTrainer

from .findings import Finding

__all__ = ["HLT_RULES", "CRASH_LATENCY_BOUND", "STRAGGLER_LATENCY_BOUND",
           "REJOIN_LATENCY_BOUND", "LOSS_TOLERANCE", "verify_health",
           "verify_detector_soundness", "verify_detection_latency",
           "verify_supervised_recovery", "verify_resume_determinism",
           "verify_store_crash_safety"]

#: certified bounds (steps) and the convergence tolerance shared with
#: the oracle-driven PR 3 battery
CRASH_LATENCY_BOUND = 3
STRAGGLER_LATENCY_BOUND = 4
REJOIN_LATENCY_BOUND = 3
LOSS_TOLERANCE = 0.02

FAMILY = "mlp"
WORLD = 4
STEPS = 20

HLT_RULES: dict[str, str] = {
    "HLT001": "detector raised a false alarm on a crash-free campaign",
    "HLT002": "failure detection latency exceeded the certified bound",
    "HLT003": "supervised recovery diverged from the oracle baseline "
              "or read the fault-plan oracle",
    "HLT004": "resumed training was not bit-identical",
    "HLT005": "checkpoint store failed to survive a torn or corrupt file",
}


def _finding(rule: str, campaign: str, message: str) -> Finding:
    return Finding(rule=rule, path=f"<health:{campaign}@world={WORLD}>",
                   line=0, col=0, message=message, source="health",
                   scheme=campaign, world=WORLD)


def _trainer(plan: FaultPlan | None, supervised: bool = True,
             store: CheckpointStore | None = None,
             health: HealthPolicy | None = None,
             seed: int = 0) -> DataParallelTrainer:
    recipe = get_recipe(FAMILY)
    task = make_task(FAMILY, batch_size=recipe.batch_size, **recipe.kwargs())
    return DataParallelTrainer(
        task, world_size=WORLD, config=CGXConfig.cgx_default(128),
        recipe=recipe, seed=seed, fault_plan=plan, supervised=supervised,
        health=health, store=store)


def _run(trainer: DataParallelTrainer, steps: int) -> list[float]:
    return [trainer.train_step() for _ in range(steps)]


# -- HLT001: zero false positives -------------------------------------------

def verify_detector_soundness() -> list[Finding]:
    """No alarms on campaigns that inject nothing alarm-worthy."""
    findings: list[Finding] = []
    for name, plan in (("fault-free", None),
                       ("lossy-link", make_campaign("lossy-link", WORLD))):
        trainer = _trainer(plan)
        _run(trainer, STEPS)
        assert trainer.fault_runtime is not None
        counters = trainer.fault_runtime.counters
        for counter in ("suspected_crashes", "false_suspicions",
                        "straggler_demotions", "escalations"):
            value = getattr(counters, counter)
            if value:
                findings.append(_finding(
                    "HLT001", name,
                    f"{counter}={value} after {STEPS} supervised steps "
                    f"with no crash or over-budget straggler injected"))
    return findings


# -- HLT002: bounded detection latency ---------------------------------------

def _first_event(trainer: DataParallelTrainer, kind: str,
                 rank: int) -> int | None:
    assert trainer.fault_runtime is not None
    for record in trainer.fault_runtime.records:
        if record.kind == kind and dict(record.detail).get("rank") == rank:
            return record.step
    return None


def verify_detection_latency() -> list[Finding]:
    """Crash, rejoin and straggler events noticed within the bounds."""
    findings: list[Finding] = []

    # crash at step 4, rejoin at step 9 (stock campaign, rank 3)
    plan = make_campaign("crash-rejoin", WORLD)
    trainer = _trainer(plan)
    _run(trainer, STEPS)
    suspected = _first_event(trainer, "suspect_crash", WORLD - 1)
    if suspected is None:
        findings.append(_finding(
            "HLT002", "crash-rejoin",
            f"rank {WORLD - 1} crash at step 4 never suspected in "
            f"{STEPS} steps"))
    elif suspected - 4 > CRASH_LATENCY_BOUND:
        findings.append(_finding(
            "HLT002", "crash-rejoin",
            f"crash at step 4 suspected at step {suspected} "
            f"(latency {suspected - 4} > bound {CRASH_LATENCY_BOUND})"))
    admitted = _first_event(trainer, "admit_rejoin", WORLD - 1)
    if admitted is None:
        findings.append(_finding(
            "HLT002", "crash-rejoin",
            f"rank {WORLD - 1} rejoin at step 9 never admitted in "
            f"{STEPS} steps"))
    elif admitted - 9 > REJOIN_LATENCY_BOUND:
        findings.append(_finding(
            "HLT002", "crash-rejoin",
            f"rejoin at step 9 admitted at step {admitted} "
            f"(latency {admitted - 9} > bound {REJOIN_LATENCY_BOUND})"))

    # persistent over-budget straggler from step 4 on rank 2
    hard = FaultPlan("straggler-hard", WORLD, 0,
                     (straggler(4, None, rank=2, factor=2.5),))
    trainer = _trainer(hard)
    _run(trainer, STEPS)
    demoted = _first_event(trainer, "demote_straggler", 2)
    if demoted is None:
        findings.append(_finding(
            "HLT002", "straggler-hard",
            f"2.5x straggler from step 4 never demoted in {STEPS} steps"))
    elif demoted - 4 > STRAGGLER_LATENCY_BOUND:
        findings.append(_finding(
            "HLT002", "straggler-hard",
            f"straggler onset at step 4 demoted at step {demoted} "
            f"(latency {demoted - 4} > bound {STRAGGLER_LATENCY_BOUND})"))
    return findings


# -- HLT003: oracle-free recovery parity -------------------------------------

def verify_supervised_recovery() -> list[Finding]:
    """Supervised convergence matches the oracle path, without the oracle."""
    findings: list[Finding] = []
    for name in ("crash-rejoin", "straggler"):
        plan = make_campaign(name, WORLD)
        sup = _trainer(plan)
        sup_losses = _run(sup, STEPS)
        oracle = _trainer(plan, supervised=False)
        oracle_losses = _run(oracle, STEPS)
        assert sup.fault_runtime is not None
        reads = sup.fault_runtime.counters.oracle_reads
        if reads:
            findings.append(_finding(
                "HLT003", name,
                f"supervised decision path issued {reads} StepFaults "
                f"oracle read(s); recovery must use observations only"))
        drift = abs(sup_losses[-1] - oracle_losses[-1])
        if not np.isfinite(sup_losses[-1]) or drift > LOSS_TOLERANCE:
            findings.append(_finding(
                "HLT003", name,
                f"supervised final loss {sup_losses[-1]:.6f} vs oracle "
                f"{oracle_losses[-1]:.6f} (drift {drift:.6f} > "
                f"tolerance {LOSS_TOLERANCE})"))
    return findings


# -- HLT004: resume determinism ----------------------------------------------

def verify_resume_determinism() -> list[Finding]:
    """A store-restored fresh trainer replays training bit-identically."""
    findings: list[Finding] = []
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, keep=3)
        ref = _trainer(None, store=store)
        ref_losses = _run(ref, 14)

        loaded = store.load_latest()
        if loaded is None:
            return [_finding("HLT004", "fault-free",
                             "supervised run with a store attached "
                             "published no checkpoints")]
        step, state = loaded
        resumed = _trainer(None)
        resumed.restore_state(state)
        resumed_losses = _run(resumed, 14 - step)
        if resumed_losses != ref_losses[step:]:
            findings.append(_finding(
                "HLT004", "fault-free",
                f"losses after restoring step {step} differ from the "
                f"uninterrupted run (resume is not bit-identical)"))
        for (name, a), b in zip(
                ref.replicas[0].named_parameters(),
                (p for _, p in resumed.replicas[0].named_parameters())):
            if not np.array_equal(a.data, b.data):
                findings.append(_finding(
                    "HLT004", "fault-free",
                    f"parameter {name} differs after resumed training"))
                break

    # two same-seed supervised chaos runs: byte-identical event logs
    logs = []
    for _ in range(2):
        trainer = _trainer(make_campaign("crash-rejoin", WORLD))
        _run(trainer, STEPS)
        assert trainer.fault_runtime is not None
        logs.append(trainer.fault_runtime.log_bytes())
    if logs[0] != logs[1]:
        findings.append(_finding(
            "HLT004", "crash-rejoin",
            "two same-seed supervised runs produced different event logs"))
    return findings


# -- HLT005: store crash-safety ----------------------------------------------

def verify_store_crash_safety() -> list[Finding]:
    """Torn and corrupt checkpoint files are detected and survived."""
    findings: list[Finding] = []
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, keep=3)
        ref = _trainer(None, store=store)
        _run(ref, 10)   # checkpoints at steps 5 and 10
        steps = store.steps()
        if len(steps) < 2:
            return [_finding("HLT005", "fault-free",
                             f"expected >= 2 checkpoints, store has "
                             f"{steps}")]
        older, newest = steps[-2], steps[-1]

        # the reference continuation from the older checkpoint
        base = _trainer(None)
        base.restore_state(store.load(older))
        base_losses = _run(base, 4)

        # 1) torn write: truncate the newest published checkpoint
        path = store.path_for(newest)
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size // 2)
        detected: list[int] = []
        loaded = store.load_latest(
            on_corrupt=lambda step, exc: detected.append(step))
        if loaded is None or loaded[0] != older or detected != [newest]:
            findings.append(_finding(
                "HLT005", "fault-free",
                f"truncated checkpoint {newest} not detected with "
                f"fallback to {older} (got {loaded and loaded[0]}, "
                f"detected={detected})"))
        else:
            resumed = _trainer(None)
            resumed.restore_state(loaded[1])
            if _run(resumed, 4) != base_losses:
                findings.append(_finding(
                    "HLT005", "fault-free",
                    f"training resumed from fallback checkpoint {older} "
                    f"was not bit-identical to a direct restore"))

        # 2) garbled payload byte in the (intact) older checkpoint
        path = store.path_for(older)
        raw = bytearray(open(path, "rb").read())
        raw[-20] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(raw)
        try:
            store.load(older)
            findings.append(_finding(
                "HLT005", "fault-free",
                f"garbled payload byte in checkpoint {older} not "
                f"detected by CRC validation"))
        except CheckpointCorrupt:
            pass

        # 3) a stray .tmp from a killed writer must never be loaded and
        #    must be swept by the next save
        stray = os.path.join(tmp, "ckpt-99999999.ckpt.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"half-written garbage")
        if 99999999 in store.steps():
            findings.append(_finding(
                "HLT005", "fault-free",
                "a .tmp staging file is visible as a checkpoint"))
        store.save({"x": np.zeros(4, dtype=np.float32)}, 12)
        if os.path.exists(stray):
            findings.append(_finding(
                "HLT005", "fault-free",
                "stray .tmp from a killed writer survived the next save"))
    return findings


def verify_health() -> list[Finding]:
    """Run the full HLT battery."""
    findings: list[Finding] = []
    findings.extend(verify_detector_soundness())
    findings.extend(verify_detection_latency())
    findings.extend(verify_supervised_recovery())
    findings.extend(verify_resume_determinism())
    findings.extend(verify_store_crash_safety())
    return findings

"""Happens-before race detector over captured schedules (RACE001..004).

The collectives execute every rank's data path in one process, so a
schedule that *would* race on real transports — two ranks writing one
buffer with no message ordering them — still produces deterministic
results here and passes every numeric test.  This pass reconstructs the
concurrency the schedule implies and flags exactly those hazards.

From a :class:`~repro.collectives.trace.ScheduleTrace` timeline
(send/recv endpoints interleaved with :class:`BufferAccess` records in
emission order) it builds the happens-before partial order:

* **program order** — each rank's operations in emission order;
* **message order** — a matched send happens-before its recv (matching
  replays the log: a recv consumes the earliest prior unmatched send
  with the same ``(src, dst, step, nbytes, tag)``).

Emission order between different ranks is *not* an ordering — it is one
arbitrary interleaving of a schedule that real transports are free to
reorder.  Two accesses are concurrent unless connected through the
graph, and concurrent accesses to aliased storage race:

``RACE001``  write/write on overlapping memory spans, unordered.
``RACE002``  read/write on overlapping memory spans, unordered.
``RACE003``  keyed compressor state (error-feedback residuals, warm
             starts, carries) touched by two ranks, unordered — on real
             ranks each process holds its own dict, so a shared key
             means the simulation relies on cross-rank shared state.
``RACE004``  buffers declared rank-local overlap in memory (static
             check on :func:`declare_buffer` declarations; no access
             needs to be observed for this to be a latent bug).

Aliasing is address-based for memory (absolute byte spans, kept valid
by the trace's keepalive pins) and label-based for keyed state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence, Union

import numpy as np

from repro.collectives.trace import (
    BufferAccess,
    ScheduleTrace,
    TraceEvent,
    capture,
)
from repro.compression import CompressionSpec, make_compressor

from .findings import Finding, sort_findings
from .schedule import SchemeCase, default_cases, trace_case

__all__ = ["RACE_RULES", "analyze_trace", "verify_races",
           "analyze_callable", "race_path"]

RACE_RULES = {
    "RACE001": "unsynchronized write/write on aliased buffers",
    "RACE002": "unsynchronized read/write on aliased buffers",
    "RACE003": "keyed compressor state shared across ranks unordered",
    "RACE004": "buffers declared rank-local overlap in memory",
}


def race_path(scheme: str, world: int) -> str:
    return f"<race:{scheme}@world={world}>"


def _node_rank(item: Union[TraceEvent, BufferAccess]) -> int:
    if isinstance(item, TraceEvent):
        return item.src if item.kind == "send" else item.dst
    return item.rank


def _ancestor_sets(timeline: list) -> list[int]:
    """Bitset of happens-before ancestors per timeline position.

    ``anc[i]`` has bit ``p`` set iff node ``p`` happens-before node
    ``i``.  Built in one forward pass: program-order edge from the
    rank's previous node, message edge from the matched send.
    """
    anc = [0] * len(timeline)
    last_of_rank: dict[int, int] = {}
    unmatched_sends: dict[tuple, deque[int]] = {}
    for i, item in enumerate(timeline):
        mask = 0
        rank = _node_rank(item)
        prev = last_of_rank.get(rank)
        if prev is not None:
            mask |= anc[prev] | (1 << prev)
        if isinstance(item, TraceEvent):
            if item.kind == "send":
                unmatched_sends.setdefault(item.match_key(),
                                           deque()).append(i)
            else:
                queue = unmatched_sends.get(item.match_key())
                if queue:
                    sender = queue.popleft()
                    mask |= anc[sender] | (1 << sender)
        anc[i] = mask
        last_of_rank[rank] = i
    return anc


def analyze_trace(trace: ScheduleTrace, scheme: str,
                  world: int) -> list[Finding]:
    """Race-check one captured timeline; [] means race-free."""
    path = race_path(scheme, world)

    def finding(rule: str, message: str) -> Finding:
        return Finding(rule=rule, path=path, line=0, col=0, message=message,
                       source="race", scheme=scheme, world=world)

    timeline = trace.timeline
    anc = _ancestor_sets(timeline)
    access_nodes = [(i, item) for i, item in enumerate(timeline)
                    if isinstance(item, BufferAccess)]

    # aggregate racing pairs per (rule, endpoints) so one systematic bug
    # yields one finding, not one per step of the schedule
    races: dict[tuple, int] = {}
    for a_pos in range(len(access_nodes)):
        i, a = access_nodes[a_pos]
        for b_pos in range(a_pos + 1, len(access_nodes)):
            j, b = access_nodes[b_pos]
            if a.rank == b.rank:       # ordered by program order
                continue
            if not (a.is_write or b.is_write):
                continue
            if not a.aliases(b):
                continue
            if (anc[j] >> i) & 1 or (anc[i] >> j) & 1:
                continue               # happens-before ordered
            if a.space == "state":
                rule = "RACE003"
            elif a.is_write and b.is_write:
                rule = "RACE001"
            else:
                rule = "RACE002"
            key = (rule, a.kind, b.kind, a.rank, b.rank, a.buffer, b.buffer)
            races[key] = races.get(key, 0) + 1

    findings = []
    for (rule, kind_a, kind_b, rank_a, rank_b, buf_a, buf_b), count \
            in sorted(races.items()):
        where = (f"state key {buf_a}" if rule == "RACE003"
                 else f"aliased memory ({buf_a!r} / {buf_b!r})")
        findings.append(finding(
            rule,
            f"rank {rank_a} {kind_a} and rank {rank_b} {kind_b} on {where} "
            f"with no happens-before ordering ({count} occurrence(s))"))

    seen_overlaps: set[tuple] = set()
    for a_pos in range(len(trace.declared)):
        rank_a, name_a, start_a, end_a = trace.declared[a_pos]
        for b_pos in range(a_pos + 1, len(trace.declared)):
            rank_b, name_b, start_b, end_b = trace.declared[b_pos]
            if rank_a == rank_b:
                continue
            if not (start_a < end_b and start_b < end_a):
                continue
            overlap = min(end_a, end_b) - max(start_a, start_b)
            key = (rank_a, name_a, rank_b, name_b)
            if key in seen_overlaps:
                continue
            seen_overlaps.add(key)
            findings.append(finding(
                "RACE004",
                f"rank {rank_a} buffer {name_a!r} and rank {rank_b} buffer "
                f"{name_b!r} declared rank-local but share {overlap} bytes"))
    return sort_findings(findings)


#: spec battery for the registered-scheme sweep: the stateless default
#: plus a stateful operator (PowerSGD warm start) so keyed-state
#: accesses (RACE003's subject) actually appear in the timeline
_RACE_SPECS = (
    CompressionSpec("qsgd", bits=4, bucket_size=32),
    CompressionSpec("powersgd", rank=4),
)


def verify_races(cases: Sequence[SchemeCase] | None = None,
                 specs: Sequence[CompressionSpec] = _RACE_SPECS,
                 ) -> list[Finding]:
    """Race-check every registered scheme (all worlds x all specs)."""
    findings: list[Finding] = []
    for case in (default_cases() if cases is None else cases):
        for spec in specs:
            trace, _ = trace_case(case, spec=spec)
            findings.extend(analyze_trace(trace, case.scheme, case.world))
    return sort_findings(findings)


def analyze_callable(fn: Callable, world: int, scheme: str = "custom",
                     numel: int = 97, seed: int = 0,
                     spec: CompressionSpec | None = None) -> list[Finding]:
    """Race-check an unregistered collective with the standard signature.

    Mirror of :func:`repro.analysis.schedule.verify_callable` — the hook
    for toy schemes (the negative-control tests inject a deliberately
    racy reduction here and assert the detector catches it).
    """
    spec = spec or CompressionSpec("qsgd", bits=4, bucket_size=32)
    compressor = make_compressor(spec)
    rng = np.random.default_rng(seed)
    buffers = [np.asarray(rng.normal(size=numel), dtype=np.float32)
               for _ in range(world)]
    with capture() as trace:
        fn(buffers, compressor, rng, key="verify")
    return analyze_trace(trace, scheme, world)

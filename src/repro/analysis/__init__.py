"""Domain-aware static analysis for the CGX reproduction.

Two pillars (see ``docs/analysis.md``):

* :mod:`repro.analysis.rules` — an AST linter with repo-specific
  numerical-safety rules (REP001..REP006): float equality, default-dtype
  allocations in hot paths, aliased error-feedback state, mutable
  defaults, bare excepts, and in-place ops on ``split_chunks`` views.
* :mod:`repro.analysis.schedule` — a collective-schedule verifier that
  traces every registered reduction scheme on instrumented fake ranks
  and checks the send/recv log for pairing symmetry, deadlock freedom,
  wire-byte conservation against ``ReduceStats``, and bounded
  recompression depth (SCH001..SCH007).

Run ``python -m repro.analysis`` (or ``python -m repro analyze``); the
baseline workflow and output formats live in :mod:`repro.analysis.cli`.
"""

from .baseline import load_baseline, split_baselined, write_baseline
from .cli import main
from .findings import JSON_REPORT_SCHEMA, Finding, sort_findings
from .rules import HOT_PATH_PARTS, RULES, lint_file, lint_source, run_lint
from .schedule import (SchemeCase, default_cases,
                       expected_recompression_bound, trace_case,
                       verify_callable, verify_case, verify_schedules,
                       verify_trace)

__all__ = [
    "Finding", "JSON_REPORT_SCHEMA", "sort_findings",
    "RULES", "HOT_PATH_PARTS", "lint_source", "lint_file", "run_lint",
    "SchemeCase", "default_cases", "expected_recompression_bound",
    "trace_case", "verify_trace", "verify_case", "verify_schedules",
    "verify_callable",
    "load_baseline", "write_baseline", "split_baselined",
    "main",
]

"""Domain-aware static analysis for the CGX reproduction.

Eleven pillars (see ``docs/analysis.md``):

* :mod:`repro.analysis.rules` — an AST linter with repo-specific
  numerical-safety rules (REP001..REP006): float equality, default-dtype
  allocations in hot paths, aliased error-feedback state, mutable
  defaults, bare excepts, and in-place ops on ``split_chunks`` views.
* :mod:`repro.analysis.schedule` — a collective-schedule verifier that
  traces every registered reduction scheme on instrumented fake ranks
  and checks the send/recv log for pairing symmetry, deadlock freedom,
  wire-byte conservation against ``ReduceStats``, and bounded
  recompression depth (SCH001..SCH007).
* :mod:`repro.analysis.contracts` — a compressor-contract checker
  (CON001..CON008) that abstractly executes every registered operator
  (via :mod:`repro.analysis.abstract`) and verifies its declared
  :class:`~repro.compression.CompressorContract`: shape/dtype
  preservation, wire-byte exactness against real serialization,
  state/rng behaviour, and error-feedback wiring through the engine.
* :mod:`repro.analysis.races` — a happens-before race detector
  (RACE001..RACE004) over buffer-access-annotated schedule traces:
  unordered write/write and read/write on aliased memory, cross-rank
  keyed-state sharing, and overlapping rank-local buffer declarations.
* :mod:`repro.analysis.plans` — a bit-width plan certifier
  (BWP001..BWP007) that proves, over a seeded instance battery and in
  exact rational arithmetic, that every adaptive solver respects the
  ``alpha * E4`` error budget, stays within a ratcheted factor of the
  brute-force optimum, is monotone in the budget, respecs stably, and
  only emits bit-widths the compressor contracts can realize.
* :mod:`repro.analysis.shapes` — a shape/dtype pipeline interpreter
  (SHP001..SHP005) that abstractly executes layer-filter → package plan
  → compressor encode → serialization → scheme chunking for every
  (model spec × compressor × reduction scheme) triple at full model
  scale, checking coverage, fp32 dtype soundness, wire-size agreement
  and chunk-partition conservation without touching real data.
* :mod:`repro.analysis.health` — the failure-detection battery
  (HLT001..HLT005): detector soundness and latency bounds, oracle-free
  supervised recovery, bit-identical resume, checkpoint crash-safety.
* :mod:`repro.analysis.liveness` — the deadlock & progress certifier
  (DLV001..DLV006) over :mod:`repro.analysis.explore`, a small-world
  DPOR interleaving explorer: per-phase wait-for graphs, orphan
  endpoints, excluded-rank traffic, termination/conservation under
  every interleaving at world 2..4, bounded wait under a fair
  scheduler, and an AST pass for blocking calls that bypass the
  ``deliver_chunk``/trace hooks — all across fault campaigns
  (:mod:`repro.faults.cases`).
* :mod:`repro.analysis.overlap` — the overlap-safety certifier
  (OVL001..OVL006): use-before-reduce ordering, bucket-fusion
  conservation, launch-priority discipline, in-flight compressor-state
  attribution, the overlapped makespan bound, and the
  ``.grad``-consumer AST pass.
* :mod:`repro.analysis.sched` — the fleet-schedule certifier
  (SCD001..SCD007): placement soundness, admission liveness/FIFO,
  exact cross-job conservation, throttle semantics, isolation bounds,
  fairness-metric validity, and the job-tagging AST pass.
* :mod:`repro.analysis.elastic` — the elastic-membership certifier
  (ELA001..ELA005): no ghost gradients from departed ranks, the
  spot-drain protocol, convergence parity of grown/shrunk worlds,
  exact feasibility of composition-change respecs, and byte-identical
  same-seed campaign logs.

Run ``python -m repro.analysis`` (or ``python -m repro analyze``); the
baseline workflow and output formats live in :mod:`repro.analysis.cli`.
"""

from .abstract import (BehaviorObservation, RoundtripObservation,
                       default_registry, execute_behavior,
                       execute_roundtrips, probe_specs,
                       replay_adaptive_respec, replay_engine_wiring)
from .baseline import load_baseline, split_baselined, write_baseline
from .cli import main
from .contracts import CONTRACT_RULES, check_engine_wiring, verify_contracts
from .elastic import ELA_RULES, ELASTIC_CAMPAIGNS, verify_elastic
from .explore import (ExploreResult, FairRunResult, GreedyResult, Op,
                      build_programs, explore, fair_schedule, greedy_run,
                      interleaving_bound, phase_segments)
from .findings import JSON_REPORT_SCHEMA, Finding, sort_findings
from .liveness import (DLV_RULES, analyze_trace_liveness, lint_blocking,
                       verify_liveness)
from .plans import (DEFAULT_ALPHAS, OPTIMALITY_RATCHET, PLAN_RULES,
                    PlanInstance, certify_controller_stability,
                    certify_optimality, certify_plan_contracts,
                    certify_solver, default_instances, verify_plans)
from .races import RACE_RULES, analyze_callable, analyze_trace, verify_races
from .rules import HOT_PATH_PARTS, RULES, lint_file, lint_source, run_lint
from .shapes import (SCHEME_MODELS, SHAPE_RULES, SchemeModel, WireSegment,
                     battery_specs, calibrate_payload_model,
                     interpret_pipeline, symbolic_payload,
                     symbolic_wire_bytes, verify_shapes)
from .schedule import (SchemeCase, default_cases,
                       expected_recompression_bound, trace_case,
                       verify_callable, verify_case, verify_schedules,
                       verify_trace)

__all__ = [
    "Finding", "JSON_REPORT_SCHEMA", "sort_findings",
    "RULES", "HOT_PATH_PARTS", "lint_source", "lint_file", "run_lint",
    "SchemeCase", "default_cases", "expected_recompression_bound",
    "trace_case", "verify_trace", "verify_case", "verify_schedules",
    "verify_callable",
    "CONTRACT_RULES", "verify_contracts", "check_engine_wiring",
    "RoundtripObservation", "BehaviorObservation", "default_registry",
    "probe_specs", "execute_roundtrips", "execute_behavior",
    "replay_engine_wiring", "replay_adaptive_respec",
    "RACE_RULES", "analyze_trace", "analyze_callable", "verify_races",
    "PLAN_RULES", "PlanInstance", "DEFAULT_ALPHAS", "OPTIMALITY_RATCHET",
    "default_instances", "certify_solver", "certify_optimality",
    "certify_controller_stability", "certify_plan_contracts",
    "verify_plans",
    "SHAPE_RULES", "WireSegment", "SchemeModel", "SCHEME_MODELS",
    "symbolic_payload", "symbolic_wire_bytes", "battery_specs",
    "calibrate_payload_model", "interpret_pipeline", "verify_shapes",
    "DLV_RULES", "analyze_trace_liveness", "lint_blocking",
    "verify_liveness",
    "ELA_RULES", "ELASTIC_CAMPAIGNS", "verify_elastic",
    "Op", "GreedyResult", "ExploreResult", "FairRunResult",
    "build_programs", "phase_segments", "greedy_run", "explore",
    "fair_schedule", "interleaving_bound",
    "load_baseline", "write_baseline", "split_baselined",
    "main",
]

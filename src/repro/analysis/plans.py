"""Plan certifier: abstract verification of adaptive bit-width plans.

The adaptive compression problem (paper Section 5, Algorithm 1) picks
per-layer bit-widths minimizing transmitted bytes subject to the total
compression error staying within ``alpha * E4``.  The solvers in
:mod:`repro.core.adaptive` are heuristics; nothing in the test suite
*proves* that what they emit respects the budget, stays close to
optimal, or is even executable by the compressors the plan names.
L-GreCo and QSGD both show the budget constraint and the quantizer's
error model are exactly where layerwise schemes silently go wrong.

This pass certifies every registered solver over a seeded battery of
instances (synthetic families + ``synthetic_stats_for_spec`` over every
full-size model spec):

``BWP001``  budget feasibility: the assignment's error exceeds
            ``alpha * E4`` under *exact rational arithmetic* (squared
            errors compared as ``Fraction``s — no float spot-checks).
``BWP002``  structural soundness: the solver lost/invented layers,
            emitted widths outside the requested ladder, crashed, or
            transmits more than the uniform static assignment (exact
            integer byte comparison).
``BWP003``  optimality-gap regression: on small instances the
            heuristic's byte overhead over the exact brute-force
            optimum (:func:`~repro.core.adaptive.brute_force_assign`)
            exceeds the ratcheted per-solver bound.
``BWP004``  bits→bucket resolvability: an emitted width does not
            resolve through :func:`~repro.core.adaptive.resolve_bucket`
            or yields a ``CompressionSpec`` that fails validation.
``BWP005``  alpha-monotonicity: a larger error budget made the solver
            transmit *more* bytes.
``BWP006``  respec stability: ``AdaptiveController.reassign`` under
            stationary statistics flips assignments between periods, or
            writes per-layer specs that disagree with the assignment.
``BWP007``  plan/contract agreement: the plan names a bit-width that no
            registered compressor contract declares in
            ``supported_bits`` for the configured method.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.compression import CompressionSpec, Compressor
from repro.core import CGXConfig
from repro.core.adaptive import (
    ASSIGNERS,
    AdaptiveController,
    LayerStat,
    assignment_cost_bits,
    brute_force_assign,
    certify_assignment,
    resolve_bucket,
    synthetic_stats_for_spec,
)
from repro.models import available_specs, build_spec

from .abstract import default_registry
from .findings import Finding

__all__ = [
    "PLAN_RULES",
    "PlanInstance",
    "DEFAULT_ALPHAS",
    "OPTIMALITY_RATCHET",
    "default_instances",
    "certify_solver",
    "certify_optimality",
    "certify_controller_stability",
    "certify_plan_contracts",
    "verify_plans",
]

PLAN_RULES = {
    "BWP001": "assignment violates the alpha*E4 error budget (exact)",
    "BWP002": "assignment is structurally unsound",
    "BWP003": "optimality gap exceeds the ratcheted bound",
    "BWP004": "emitted bit-width does not resolve to a bucket/spec",
    "BWP005": "larger error budget transmitted more bytes",
    "BWP006": "controller respec is unstable or incoherent",
    "BWP007": "plan names bits no compressor contract supports",
}

DEFAULT_ALPHAS: tuple[float, ...] = (1.5, 2.0, 3.0)

#: ratcheted worst-case byte overhead of each heuristic over the exact
#: brute-force optimum, across the small-instance battery.  Measured at
#: introduction time and only allowed to go *down*: a solver change that
#: worsens any heuristic past its bound fails BWP003.  All three solvers
#: currently measure 1.7143x, hit on the degenerate zero-norm instance
#: where they fall back to the uniform static assignment while the exact
#: optimum exploits the dead layer.
OPTIMALITY_RATCHET: dict[str, float] = {
    "kmeans": 1.75,
    "linear": 1.75,
    "bayes": 1.75,
}

#: layers above this count are skipped by the brute-force reference
SMALL_INSTANCE_LAYERS = 12


class PlanInstance:
    """One named battery instance: layer statistics + brute-force flag."""

    def __init__(self, name: str, stats: Sequence[LayerStat]) -> None:
        self.name = name
        self.stats = list(stats)

    @property
    def small(self) -> bool:
        return 0 < len(self.stats) <= SMALL_INSTANCE_LAYERS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanInstance({self.name}, L={len(self.stats)})"


def _txl_like(seed: int = 0) -> list[LayerStat]:
    """The canonical hard instance: one huge insensitive embedding, a
    blob of near-identical matrices, a few small sensitive layers."""
    rng = np.random.default_rng(seed)
    stats = [LayerStat("embed", 137_000_000,
                       0.25 * float(np.sqrt(0.01 * 137e6)))]
    for i in range(32):
        n = 786_432
        stats.append(LayerStat(f"mat{i}", n, float(np.sqrt(0.01 * n))
                               * (1.0 + 0.05 * rng.random())))
    for i in range(8):
        stats.append(LayerStat(f"small{i}", 2048,
                               2.0 * float(np.sqrt(0.01 * 2048))))
    return stats


def default_instances(seed: int = 2024) -> list[PlanInstance]:
    """The seeded certification battery.

    Full-size statistics for every model in ``models/specs.py``, the
    Transformer-XL-shaped synthetic, random instances spanning sizes
    1..10^7, and the degenerate corners (zero-norm layers, single-layer
    models).  Small instances double as the brute-force reference set.
    """
    instances = [
        PlanInstance(f"spec:{name}",
                     synthetic_stats_for_spec(build_spec(name)))
        for name in available_specs()
    ]
    instances.append(PlanInstance("txl-like", _txl_like()))
    rng = np.random.default_rng(seed)
    for i in range(6):
        layer_count = int(rng.integers(2, 28))
        stats = [
            LayerStat(f"l{j}", int(10 ** rng.uniform(0, 7)),
                      float(rng.uniform(0.0, 50.0)))
            for j in range(layer_count)
        ]
        instances.append(PlanInstance(f"random{i}", stats))
    for i in range(4):  # guaranteed-small: brute-force eligible
        layer_count = int(rng.integers(2, SMALL_INSTANCE_LAYERS + 1))
        stats = [
            LayerStat(f"s{j}", int(10 ** rng.uniform(0, 6)),
                      float(rng.uniform(0.0, 20.0)))
            for j in range(layer_count)
        ]
        instances.append(PlanInstance(f"small{i}", stats))
    instances.append(PlanInstance(
        "spec:resnet50:head",
        synthetic_stats_for_spec(build_spec("resnet50"))[:SMALL_INSTANCE_LAYERS]))
    instances.append(PlanInstance("zero-norm", [
        LayerStat("dead", 100_000, 0.0),
        LayerStat("alive", 50_000, 3.0),
    ]))
    instances.append(PlanInstance("single-layer",
                                  [LayerStat("only", 123_457, 7.0)]))
    return instances


Assigner = Callable[..., "dict[str, int]"]


def _finding(rule: str, solver: str, message: str) -> Finding:
    return Finding(rule=rule, path=f"<plan:{solver}>", line=0, col=0,
                   message=message, source="plan", scheme=solver)


def _run_solver(solver: str, assigner: Assigner, instance: PlanInstance,
                alpha: float) -> "tuple[dict[str, int] | None, list[Finding]]":
    """One solver run; crashes become BWP002 findings, not exceptions."""
    try:
        bits = assigner(instance.stats, alpha=alpha)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return None, [_finding(
            "BWP002", solver,
            f"{instance.name} alpha={alpha}: solver raised "
            f"{type(exc).__name__}: {exc}")]
    return bits, []


def certify_solver(solver: str, assigner: Assigner,
                   instance: PlanInstance, alpha: float,
                   bitwidths: tuple[int, ...] | None = None,
                   ) -> "tuple[dict[str, int] | None, list[Finding]]":
    """BWP001/BWP002/BWP004 for one (solver, instance, alpha) cell."""
    from repro.core.adaptive import DEFAULT_BITWIDTHS

    ladder = tuple(sorted(set(bitwidths or DEFAULT_BITWIDTHS)))
    bits, findings = _run_solver(solver, assigner, instance, alpha)
    if bits is None:
        return None, findings

    expected = {s.name for s in instance.stats}
    if set(bits) != expected:
        findings.append(_finding(
            "BWP002", solver,
            f"{instance.name} alpha={alpha}: assignment covers "
            f"{len(bits)} layers, instance has {len(expected)}"))
        return bits, findings
    stray = sorted({b for b in bits.values() if b not in ladder})
    if stray:
        findings.append(_finding(
            "BWP002", solver,
            f"{instance.name} alpha={alpha}: emitted bit-width(s) {stray} "
            f"outside the requested ladder {ladder}"))
    static_cost = assignment_cost_bits(
        instance.stats, {s.name: 4 for s in instance.stats})
    cost = assignment_cost_bits(instance.stats, bits)
    if cost > static_cost:
        findings.append(_finding(
            "BWP002", solver,
            f"{instance.name} alpha={alpha}: transmits {cost} bits, worse "
            f"than the uniform static {static_cost}"))
    if not certify_assignment(instance.stats, bits, alpha):
        findings.append(_finding(
            "BWP001", solver,
            f"{instance.name} alpha={alpha}: exact error exceeds the "
            f"alpha*E4 budget (float rounding masked the violation)"))
    for width in sorted(set(bits.values())):
        try:
            bucket = resolve_bucket(width)
            CompressionSpec("qsgd", bits=width, bucket_size=bucket)
        except (ValueError, KeyError) as exc:
            findings.append(_finding(
                "BWP004", solver,
                f"{instance.name} alpha={alpha}: emitted width {width} "
                f"does not resolve to an executable spec: {exc}"))
    return bits, findings


def certify_optimality(solver: str, assigner: Assigner,
                       instances: Iterable[PlanInstance],
                       alphas: Sequence[float] = DEFAULT_ALPHAS,
                       ratchet: Mapping[str, float] | None = None,
                       ) -> list[Finding]:
    """BWP003: worst-case byte overhead vs the exact optimum, ratcheted."""
    bound = (ratchet or OPTIMALITY_RATCHET).get(solver)
    if bound is None:
        return []
    findings: list[Finding] = []
    worst = 1.0
    worst_at = ""
    for instance in instances:
        if not instance.small:
            continue
        for alpha in alphas:
            optimum = brute_force_assign(instance.stats, alpha=alpha)
            opt_cost = assignment_cost_bits(instance.stats, optimum)
            bits, crashed = _run_solver(solver, assigner, instance, alpha)
            if bits is None or set(bits) != {s.name for s in instance.stats}:
                continue  # certify_solver already reports the breakage
            ratio = assignment_cost_bits(instance.stats, bits) / opt_cost
            if ratio > worst:
                worst, worst_at = ratio, f"{instance.name} alpha={alpha}"
    if worst > bound:
        findings.append(_finding(
            "BWP003", solver,
            f"worst-case overhead {worst:.3f}x over the brute-force "
            f"optimum (at {worst_at}) exceeds the ratcheted bound "
            f"{bound:.2f}x"))
    return findings


def _certify_monotonicity(solver: str, assigner: Assigner,
                          instance: PlanInstance,
                          alphas: Sequence[float]) -> list[Finding]:
    """BWP005: transmitted bytes must not grow with the error budget."""
    costs: list[tuple[float, int]] = []
    for alpha in sorted(alphas):
        bits, crashed = _run_solver(solver, assigner, instance, alpha)
        if bits is None or set(bits) != {s.name for s in instance.stats}:
            return []  # breakage is certify_solver's finding, not BWP005's
        costs.append((alpha, assignment_cost_bits(instance.stats, bits)))
    findings = []
    for (a_lo, c_lo), (a_hi, c_hi) in zip(costs, costs[1:]):
        if c_hi > c_lo:
            findings.append(_finding(
                "BWP005", solver,
                f"{instance.name}: alpha={a_hi} transmits {c_hi} bits, "
                f"more than the {c_lo} at the tighter alpha={a_lo}"))
    return findings


def _stationary_grads(seed: int = 0) -> "dict[str, np.ndarray]":
    rng = np.random.default_rng(seed)
    return {
        "embed.weight": rng.normal(scale=0.01,
                                   size=(2000, 16)).astype(np.float32),
        "blocks.0.fc.weight": rng.normal(size=(64, 64)).astype(np.float32),
        "blocks.1.fc.weight": rng.normal(size=(48, 64)).astype(np.float32),
    }


def certify_controller_stability(
    solver: str,
    controller_cls: type[AdaptiveController] = AdaptiveController,
    period: int = 2,
    seed: int = 0,
) -> list[Finding]:
    """BWP006: replay ``AdaptiveController.reassign`` under stationary stats.

    Feeds the *same* gradient dict every step: the accumulated statistics
    of every period are identical, so a deterministic solver must emit
    identical assignments each respec — and the per-layer specs written
    into the config must agree with the emitted assignment (bits match,
    bucket resolves through :func:`resolve_bucket`).
    """
    findings: list[Finding] = []
    config = CGXConfig.cgx_default()
    controller = controller_cls(config, method=solver, period=period)
    grads = _stationary_grads(seed)
    observed: list[dict[str, int]] = []
    for _ in range(2 * period):
        if controller.observe(dict(grads)):
            observed.append(dict(controller.assignments))
    if len(observed) < 2:
        findings.append(_finding(
            "BWP006", solver,
            f"controller produced {len(observed)} reassignments in "
            f"{2 * period} stationary steps (period={period})"))
        return findings
    if observed[0] != observed[1]:
        flipped = sorted(name for name in observed[0]
                         if observed[0].get(name) != observed[1].get(name))
        findings.append(_finding(
            "BWP006", solver,
            f"stationary statistics flipped assignments across respecs "
            f"(layers {flipped})"))
    for name, width in observed[-1].items():
        spec = config.per_layer.get(name)
        if spec is None:
            findings.append(_finding(
                "BWP006", solver,
                f"assignment names {name!r} but no per-layer spec was "
                f"written"))
            continue
        if spec.bits != width or spec.bucket_size != resolve_bucket(width):
            findings.append(_finding(
                "BWP006", solver,
                f"per-layer spec for {name!r} carries bits={spec.bits} "
                f"bucket={spec.bucket_size}, assignment says {width} "
                f"(bucket {resolve_bucket(width)})"))
    return findings


def certify_plan_contracts(
    solver: str,
    bits: "dict[str, int]",
    instance: PlanInstance,
    alpha: float,
    method: str = "qsgd",
    registry: "dict[str, type[Compressor]] | None" = None,
) -> list[Finding]:
    """BWP007: every planned width is declared by the method's contract."""
    registry = registry or default_registry()
    cls = registry.get(method)
    contract = getattr(cls, "contract", None) if cls else None
    findings: list[Finding] = []
    if contract is None:
        findings.append(_finding(
            "BWP007", solver,
            f"{instance.name} alpha={alpha}: plan targets method "
            f"{method!r} which has no registered contract"))
        return findings
    if contract.supported_bits is None:
        findings.append(_finding(
            "BWP007", solver,
            f"{instance.name} alpha={alpha}: plan assigns bit-widths to "
            f"method {method!r} whose contract declares no supported_bits"))
        return findings
    unsupported = sorted({b for b in bits.values()
                          if b not in contract.supported_bits})
    if unsupported:
        findings.append(_finding(
            "BWP007", solver,
            f"{instance.name} alpha={alpha}: plan names bits "
            f"{unsupported} not in {method!r}'s declared supported_bits "
            f"{tuple(contract.supported_bits)}"))
    return findings


def verify_plans(
    assigners: "Mapping[str, Assigner] | None" = None,
    instances: Sequence[PlanInstance] | None = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    ratchet: Mapping[str, float] | None = None,
    registry: "dict[str, type[Compressor]] | None" = None,
    controller_cls: type[AdaptiveController] = AdaptiveController,
) -> list[Finding]:
    """Run the full BWP battery; everything is seeded and deterministic.

    Defaults certify the real solvers (:data:`ASSIGNERS`) over
    :func:`default_instances`; tests inject broken solvers, registries
    and controllers to exercise every rule.
    """
    assigners = assigners or dict(ASSIGNERS)
    instances = list(instances) if instances is not None \
        else default_instances()
    findings: list[Finding] = []
    for solver in sorted(assigners):
        assigner = assigners[solver]
        for instance in instances:
            for alpha in alphas:
                bits, cell = certify_solver(solver, assigner, instance, alpha)
                findings.extend(cell)
                if bits is not None and not cell:
                    findings.extend(certify_plan_contracts(
                        solver, bits, instance, alpha, registry=registry))
            findings.extend(
                _certify_monotonicity(solver, assigner, instance, alphas))
        findings.extend(certify_optimality(solver, assigner, instances,
                                           alphas, ratchet))
        if solver in ASSIGNERS and controller_cls is not None:
            findings.extend(certify_controller_stability(
                solver, controller_cls=controller_cls))
    return findings

"""``python -m repro.analysis`` — static-analysis entry point."""

import sys

from .cli import main

sys.exit(main())

"""Compressor-contract checker (rules CON001..CON008).

Each compression operator declares a
:class:`~repro.compression.CompressorContract`; this pass verifies the
declaration against *observed* behaviour from
:mod:`repro.analysis.abstract` — no source inspection, so a contract
violation means the operator genuinely misbehaves, not that it is
written in an unexpected style.

Rules:

``CON001``  operator has no contract, or the contract's ``method`` does
            not match the registry name it is registered under.
``CON002``  roundtrip broke shape/numel/dtype preservation despite
            ``preserves_shape`` / ``output_dtype`` claiming otherwise.
``CON003``  wire-byte drift: ``spec.wire_bytes``, ``Compressed.nbytes``
            and the measured serialized payload size disagree while the
            contract claims ``exact_wire_claim``.
``CON004``  statefulness mismatch: repeated compression of identical
            input under identically-seeded fresh generators differs for
            an operator declared stateless (or never differs for one
            declared stateful — a stale declaration).
``CON005``  rng mismatch: payload depends on the generator seed for an
            operator declared rng-free, or is seed-invariant for one
            declared stochastic.
``CON006``  an error-feedback-requiring method is wired into the engine
            without :class:`~repro.compression.ErrorFeedback` (methods
            with ``self_error_feedback``, e.g. DGC, are exempt — and
            must NOT be double-wrapped).
``CON007``  the engine drops accumulated error-feedback residuals when
            the adaptive policy reassigns a layer's spec without
            changing the method.
``CON008``  lossless claim violated: a roundtrip declared bit-exact
            altered at least one element.
"""

from __future__ import annotations

from repro.compression import CompressionSpec, Compressor, ErrorFeedback
from repro.core import CGXConfig, CommunicationEngine

from .abstract import (
    default_registry,
    execute_behavior,
    execute_roundtrips,
    probe_specs,
    replay_adaptive_respec,
    replay_engine_wiring,
)
from .findings import Finding

__all__ = ["CONTRACT_RULES", "verify_contracts", "check_engine_wiring"]

CONTRACT_RULES = {
    "CON001": "missing or mismatched compressor contract",
    "CON002": "shape/numel/dtype preservation violated",
    "CON003": "wire-byte claim drifts from serialized payload",
    "CON004": "statefulness declaration does not match behaviour",
    "CON005": "rng-usage declaration does not match behaviour",
    "CON006": "error-feedback-requiring method wired without ErrorFeedback",
    "CON007": "error-feedback residuals dropped on same-method respec",
    "CON008": "lossless claim violated by roundtrip",
}


def _finding(rule: str, method: str, message: str) -> Finding:
    return Finding(rule=rule, path=f"<contract:{method}>", line=0, col=0,
                   message=message, source="contract", scheme=method)


def _spec_label(spec: CompressionSpec) -> str:
    """Compact spec id for messages: distinguishes same-method probes."""
    parts = [spec.method]
    for name in ("bits", "bucket_size", "density", "rank", "ratio",
                 "scaling", "wire_dtype_bits"):
        value = getattr(spec, name, None)
        if value not in (None, "", 0):
            parts.append(f"{name}={value}")
    return " ".join(parts)


def _check_operator(method: str, cls: type[Compressor]) -> list[Finding]:
    """CON001..CON005 + CON008 for one registered operator class."""
    contract = getattr(cls, "contract", None)
    if contract is None:
        return [_finding("CON001", method,
                         f"{cls.__name__} declares no CompressorContract")]
    if contract.method != method:
        return [_finding(
            "CON001", method,
            f"{cls.__name__}.contract.method is {contract.method!r} but the "
            f"operator is registered as {method!r}")]

    findings: list[Finding] = []
    specs = probe_specs(method) or [CompressionSpec(method)]
    for spec in specs:
        for obs in execute_roundtrips(cls, spec):
            if contract.preserves_shape and (
                    obs.out_shape != obs.shape
                    or obs.out_numel != _numel(obs.shape)):
                findings.append(_finding(
                    "CON002", method,
                    f"roundtrip of shape {obs.shape} returned shape "
                    f"{obs.out_shape} ({_spec_label(spec)})"))
            if obs.out_dtype != contract.output_dtype:
                findings.append(_finding(
                    "CON002", method,
                    f"decompress returned dtype {obs.out_dtype}, contract "
                    f"declares {contract.output_dtype} ({_spec_label(spec)})"))
            if contract.exact_wire_claim and not (
                    obs.claimed_bytes == obs.declared_bytes
                    == obs.measured_bytes):
                findings.append(_finding(
                    "CON003", method,
                    f"shape {obs.shape} ({_spec_label(spec)}): wire_bytes "
                    f"claims {obs.claimed_bytes}, payload declares "
                    f"{obs.declared_bytes}, serialization measures "
                    f"{obs.measured_bytes}"))
            if contract.lossless and not obs.exact:
                findings.append(_finding(
                    "CON008", method,
                    f"shape {obs.shape} ({_spec_label(spec)}): roundtrip "
                    f"declared lossless altered the tensor"))

        behavior = execute_behavior(cls, spec)
        if behavior.repeat_differs and not contract.stateful:
            findings.append(_finding(
                "CON004", method,
                f"payload changed across identical repeat calls but the "
                f"contract declares stateless ({_spec_label(spec)})"))
        if contract.stateful and not behavior.repeat_differs:
            findings.append(_finding(
                "CON004", method,
                f"contract declares stateful but repeated identical calls "
                f"produced identical payloads ({_spec_label(spec)})"))
        if behavior.rng_sensitive and not contract.uses_rng:
            findings.append(_finding(
                "CON005", method,
                f"payload depends on the generator seed but the contract "
                f"declares uses_rng=False ({_spec_label(spec)})"))
        if contract.uses_rng and not behavior.rng_sensitive:
            findings.append(_finding(
                "CON005", method,
                f"contract declares uses_rng=True but payloads were "
                f"seed-invariant ({_spec_label(spec)})"))
    return findings


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for dim in shape:
        n *= dim
    return n


def check_engine_wiring(
    configs: list[CGXConfig] | None = None,
    engine_cls: type[CommunicationEngine] = CommunicationEngine,
    registry: dict[str, type[Compressor]] | None = None,
) -> list[Finding]:
    """CON006/CON007: replay engine planning and adaptive respec.

    Args:
        configs: engine configs to replay; defaults to one config per
            EF-relevant method so every wiring path is exercised.
        engine_cls: injectable for fixtures (a legacy engine class that
            drops residuals triggers CON007).
        registry: method -> class map; contracts are read from it.
    """
    registry = registry or default_registry()
    if configs is None:
        configs = [CGXConfig.cgx_default(128)]
        for method, spec in (
            ("topk", CompressionSpec("topk", density=0.1,
                                     error_feedback=True)),
            ("powersgd", CompressionSpec("powersgd", rank=4,
                                         error_feedback=True)),
            ("onebit", CompressionSpec("onebit", error_feedback=True)),
            ("dgc", CompressionSpec("dgc", density=0.05)),
        ):
            if method in registry:
                configs.append(CGXConfig(compression=spec))

    findings: list[Finding] = []
    for config in configs:
        for package, compressor in replay_engine_wiring(config, engine_cls):
            method = package.spec.method
            cls = registry.get(method)
            contract = getattr(cls, "contract", None) if cls else None
            if contract is None:
                continue  # CON001 reports the missing declaration
            wrapped = isinstance(compressor, ErrorFeedback)
            if (contract.requires_error_feedback
                    and not contract.self_error_feedback and not wrapped):
                findings.append(_finding(
                    "CON006", method,
                    f"package {package.name!r} uses {method} (requires "
                    f"error feedback) but the engine built a bare "
                    f"{type(compressor).__name__}"))
            if contract.self_error_feedback and wrapped:
                findings.append(_finding(
                    "CON006", method,
                    f"package {package.name!r}: {method} maintains its own "
                    f"residual but the engine double-wrapped it in "
                    f"ErrorFeedback"))

    respec = replay_adaptive_respec(engine_cls)
    if respec["rebuilt"] and not respec["carried"]:
        findings.append(_finding(
            "CON007", "topk",
            "adaptive same-method respec rebuilt the compressor and lost "
            f"{respec['residual_norm_before']:.3g} of accumulated "
            "error-feedback residual (expected it to carry over)"))
    return findings


def verify_contracts(
    registry: dict[str, type[Compressor]] | None = None,
    engine_cls: type[CommunicationEngine] = CommunicationEngine,
    check_wiring: bool = True,
) -> list[Finding]:
    """Run every contract rule over the registered operators.

    Defaults replay the real registry (:func:`make_compressor`'s table)
    and the real engine; tests inject broken registries/engines to
    exercise each rule.
    """
    registry = registry or default_registry()
    findings: list[Finding] = []
    for method in sorted(registry):
        findings.extend(_check_operator(method, registry[method]))
    if check_wiring:
        findings.extend(check_engine_wiring(engine_cls=engine_cls,
                                            registry=registry))
    return findings

"""Shape/dtype pipeline interpreter: abstract execution of the wire path.

A gradient travels layer-filter → package plan → ravel → compressor
encode → :func:`~repro.core.serialization.serialize_payload` →
reduction-scheme chunking before any byte moves.  Each stage has its own
shape/dtype/byte conventions, and the unit tests only ever exercise the
composition on tiny tensors — never on the 137M-element embeddings in
``models/specs.py``, where padding, bucket metadata and chunk boundaries
actually bite.

This pass propagates *abstract* tensors — (shape, dtype, byte-layout),
no data — through the full pipeline for every (model spec × compressor
× reduction scheme) triple, at full model scale, in milliseconds:

``SHP001``  plan coverage: a model tensor is dropped or duplicated by
            the package plan, a package miscounts its elements, or the
            method cannot restore the flat buffer the scatter step
            slices back into layers.
``SHP002``  dtype soundness: a decode or scheme accumulator narrows the
            fp32 accumulate path (or drifts to a wider dtype the wire
            claims don't cover).
``SHP003``  wire-size agreement: the symbolic serialized size of a
            chunk disagrees with ``spec.wire_bytes`` — the number the
            perf model, Fig. 7/10 accounting and the adaptive objective
            all trust.  The symbolic model itself is grounded by a
            calibration sweep against real serialized payloads on probe
            tensors.
``SHP004``  chunk-partition soundness: a scheme's chunking fails to
            cover the buffer contiguously without overlap, emits empty
            chunks, or partitions a phase into more chunks than ranks —
            per-chunk metadata (bucket scales, packing slack, sparsifier
            floors) scales with chunk count, so an over-chunking scheme
            silently inflates the wire.
``SHP005``  package-accounting agreement: ``Package.wire_bytes()`` (the
            engine's ``payload_bytes`` report) disagrees with the
            symbolic serialization of the *raveled* buffer the engine
            actually hands the operator — e.g. a matrix-shape-aware
            claim for a data path that only ever sees 1-D buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.compression import CompressionSpec, Compressor
from repro.core import CGXConfig, CommunicationEngine, Package
from repro.core.serialization import measured_wire_bytes
from repro.models import ModelSpec, available_specs, build_spec

from .abstract import PROBE_SHAPES, default_registry, probe_specs
from .findings import Finding

__all__ = [
    "SHAPE_RULES",
    "WireSegment",
    "SchemeModel",
    "SCHEME_MODELS",
    "symbolic_payload",
    "symbolic_wire_bytes",
    "battery_specs",
    "calibrate_payload_model",
    "interpret_pipeline",
    "verify_shapes",
]

SHAPE_RULES = {
    "SHP001": "package plan drops, duplicates or miscounts tensors",
    "SHP002": "decode/accumulator dtype breaks the fp32 accumulate path",
    "SHP003": "symbolic serialized size disagrees with wire_bytes claim",
    "SHP004": "scheme chunk partition is unsound or inflates metadata",
    "SHP005": "package accounting disagrees with the raveled data path",
}



@dataclass(frozen=True)
class WireSegment:
    """One field of a serialized payload: name, bytes, element dtype."""

    name: str
    nbytes: int
    dtype: str


def symbolic_wire_bytes(segments: Sequence[WireSegment]) -> int:
    return sum(segment.nbytes for segment in segments)


def symbolic_payload(spec: CompressionSpec, numel: int,
                     shape: tuple[int, ...] | None = None,
                     ) -> tuple[WireSegment, ...]:
    """Abstract serialized layout of one compressed tensor.

    Mirrors :func:`~repro.core.serialization.serialize_payload` field by
    field — independently of :meth:`CompressionSpec.wire_bytes`, which
    is exactly what lets SHP003 compare the two.  The model is grounded
    against real payloads by :func:`calibrate_payload_model`.
    """
    if numel == 0:
        return ()
    method = spec.method
    if method == "none":
        return (WireSegment("values", numel * 4, "float32"),)
    if method == "fp16":
        return (WireSegment("values", numel * 2, "float16"),)
    if method in ("qsgd", "nuq"):
        code_bits = spec.wire_dtype_bits or spec.bits
        if code_bits <= 8:
            codes = WireSegment("codes", -(-numel * code_bits // 8),
                                f"packed{code_bits}")
        else:
            codes = WireSegment("codes", numel * (code_bits // 8),
                                f"uint{code_bits}")
        buckets = -(-numel // spec.bucket_size)
        return (codes, WireSegment("norms", buckets * 4, "float32"))
    if method in ("topk", "dgc"):
        k = max(1, int(numel * spec.density))
        return (WireSegment("indices", k * 4, "int32"),
                WireSegment("values", k * 4, "float32"))
    if method == "onebit":
        buckets = -(-numel // spec.bucket_size)
        return (WireSegment("signs", -(-numel // 8), "packed1"),
                WireSegment("pos_mean", buckets * 4, "float32"),
                WireSegment("neg_mean", buckets * 4, "float32"))
    if method == "powersgd":
        if shape is None or len(shape) < 2:
            rows, cols = 1, numel
        else:
            rows, cols = shape[0], numel // shape[0]
        if rows == 1 or cols == 1:
            return (WireSegment("dense", numel * 4, "float32"),)
        rank = min(spec.rank, rows, cols)
        return (WireSegment("p", rows * rank * 4, "float32"),
                WireSegment("q", cols * rank * 4, "float32"))
    if method == "fake":
        return (WireSegment("head", max(1, int(numel / spec.ratio)) * 4,
                            "float32"),)
    raise ValueError(f"no symbolic layout for method {method!r}")


Bounds = "list[tuple[int, int]]"
PartitionFn = Callable[[int, int, "list[int] | None"],
                       "list[tuple[str, list[tuple[int, int]]]]"]


def _chunk_bounds(numel: int, n_chunks: int) -> "list[tuple[int, int]]":
    # local mirror of collectives.base.chunk_bounds: the interpreter
    # must predict the partition, not ask the implementation for it
    base, extra = divmod(numel, n_chunks)
    bounds = []
    start = 0
    for chunk in range(n_chunks):
        size = base + (1 if chunk < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _whole(numel: int) -> "list[tuple[int, int]]":
    return [(0, numel)]


def _sra_phases(numel: int, world: int,
                node_of: "list[int] | None") -> list:
    scatter = _chunk_bounds(numel, world)
    return [("reduce-scatter", scatter), ("allgather", scatter)]


def _ring_phases(numel: int, world: int,
                 node_of: "list[int] | None") -> list:
    return [("ring", _chunk_bounds(numel, world))]


def _tree_phases(numel: int, world: int,
                 node_of: "list[int] | None") -> list:
    return [("tree", _whole(numel))]


def _allgather_phases(numel: int, world: int,
                      node_of: "list[int] | None") -> list:
    return [("gather", _whole(numel))]


def _ps_phases(numel: int, world: int,
               node_of: "list[int] | None") -> list:
    return [("push", _whole(numel)), ("pull", _whole(numel))]


def _hier_phases(numel: int, world: int,
                 node_of: "list[int] | None") -> list:
    if node_of is None:
        node_of = [0] * world
    nodes = sorted(set(node_of))
    if len(nodes) == 1:
        return _sra_phases(numel, world, None)
    phases = []
    for node in nodes:
        local = sum(1 for n in node_of if n == node)
        phases.extend(
            (f"intra-node{node}-{name}", bounds)
            for name, bounds in _sra_phases(numel, local, None))
    phases.extend((f"inter-{name}", bounds)
                  for name, bounds in _sra_phases(numel, len(nodes), None))
    phases.append(("broadcast", _whole(numel)))
    return phases


@dataclass(frozen=True)
class SchemeModel:
    """Abstract chunking/accumulation behaviour of one reduction scheme."""

    name: str
    phases: PartitionFn
    #: dtype of the buffer decoded chunks are summed into; every real
    #: scheme accumulates in fp32 (``total = chunk.astype(np.float32)``)
    accumulator_dtype: str = "float32"


SCHEME_MODELS: dict[str, SchemeModel] = {
    "sra": SchemeModel("sra", _sra_phases),
    "ring": SchemeModel("ring", _ring_phases),
    "tree": SchemeModel("tree", _tree_phases),
    "allgather": SchemeModel("allgather", _allgather_phases),
    "ps": SchemeModel("ps", _ps_phases),
    "hier": SchemeModel("hier", _hier_phases),
}


def battery_specs() -> list[CompressionSpec]:
    """One canonical spec per method, plus wire-format variants."""
    return [
        CompressionSpec("none"),
        CompressionSpec("fp16"),
        CompressionSpec("qsgd", bits=4, bucket_size=128),
        CompressionSpec("qsgd", bits=2, bucket_size=64),
        CompressionSpec("qsgd", bits=4, bucket_size=128, wire_dtype_bits=8),
        CompressionSpec("nuq", bits=4, bucket_size=128),
        CompressionSpec("topk", density=0.01, error_feedback=True),
        CompressionSpec("dgc", density=0.01),
        CompressionSpec("onebit", bucket_size=512, error_feedback=True),
        CompressionSpec("powersgd", rank=4, error_feedback=True),
        CompressionSpec("fake", ratio=10.0),
    ]


def _finding(rule: str, model: str, scheme: str, world: int,
             message: str) -> Finding:
    return Finding(rule=rule, path=f"<shape:{model}>", line=0, col=0,
                   message=message, source="shape", scheme=scheme,
                   world=world)


def calibrate_payload_model(
    registry: "dict[str, type[Compressor]] | None" = None,
    shapes: Sequence[tuple[int, ...]] = PROBE_SHAPES,
) -> list[Finding]:
    """Ground the symbolic layout against real serialized payloads.

    Runs every registered method's probe specs over small real tensors
    and compares :func:`measured_wire_bytes` (actual serialized length)
    and the decompressed dtype against the symbolic model.  A mismatch
    here means the *model* is wrong — every SHP003/SHP005 verdict at
    full model scale would be built on sand.
    """
    registry = registry or default_registry()
    rng = np.random.default_rng(7)
    findings: list[Finding] = []
    for method in sorted(registry):
        for spec in probe_specs(method):
            compressor = registry[method](spec)
            for shape in shapes:
                array = rng.normal(size=shape).astype(np.float32)
                compressed = compressor.compress(array, rng,
                                                 key=("cal", shape))
                symbolic = symbolic_wire_bytes(
                    symbolic_payload(spec, array.size, shape))
                measured = measured_wire_bytes(compressed)
                if symbolic != measured:
                    findings.append(_finding(
                        "SHP003", "calibration", method, 0,
                        f"symbolic model predicts {symbolic}B for "
                        f"{method} on shape {shape}, real payload "
                        f"serializes to {measured}B"))
                decoded = compressor.decompress(compressed)
                if str(decoded.dtype) != "float32":
                    findings.append(_finding(
                        "SHP002", "calibration", method, 0,
                        f"{method} decompress returned {decoded.dtype} "
                        f"on shape {shape}; the accumulate path is fp32"))
    return findings


def _check_plan(model_name: str, model: ModelSpec, packages: list,
                method: str, registry: "dict[str, type[Compressor]]",
                ) -> list[Finding]:
    """SHP001/SHP002/SHP005: per-plan checks, scheme-independent."""
    findings: list[Finding] = []
    expected = {t.name: t for t in model.tensors}
    seen: list[str] = []
    for package in packages:
        for layer in package.layers:
            seen.append(layer.name)
        if package.numel != sum(l.numel for l in package.layers):
            findings.append(_finding(
                "SHP001", model_name, method, 0,
                f"package {package.name!r} claims {package.numel} "
                f"elements but its layers sum differently"))
    dropped = sorted(set(expected) - set(seen))
    if dropped:
        findings.append(_finding(
            "SHP001", model_name, method, 0,
            f"plan drops {len(dropped)} tensor(s): {dropped[:5]}"))
    duplicated = sorted({name for name in seen if seen.count(name) > 1})
    if duplicated:
        findings.append(_finding(
            "SHP001", model_name, method, 0,
            f"plan reduces tensor(s) twice: {duplicated[:5]}"))
    for layer_name in seen:
        tensor = expected.get(layer_name)
        if tensor is None:
            findings.append(_finding(
                "SHP001", model_name, method, 0,
                f"plan invents tensor {layer_name!r}"))

    for package in packages:
        cls = registry.get(package.spec.method)
        contract = getattr(cls, "contract", None) if cls else None
        if contract is None:
            findings.append(_finding(
                "SHP001", model_name, method, 0,
                f"package {package.name!r} uses method "
                f"{package.spec.method!r} with no registered contract"))
            continue
        if not contract.preserves_shape:
            findings.append(_finding(
                "SHP001", model_name, method, 0,
                f"package {package.name!r}: method "
                f"{package.spec.method!r} does not preserve shape; the "
                f"scatter step slices the flat buffer back into layers"))
        if contract.output_dtype != "float32":
            findings.append(_finding(
                "SHP002", model_name, method, 0,
                f"package {package.name!r}: {package.spec.method!r} "
                f"decodes to {contract.output_dtype}, narrowing the "
                f"fp32 accumulate path"))
        # the engine ravels every buffer before compressing (see
        # _gather_package), so the accounting must match the 1-D view
        claimed = package.wire_bytes()
        symbolic = symbolic_wire_bytes(
            symbolic_payload(package.spec, package.numel,
                             (package.numel,)))
        if claimed != symbolic:
            findings.append(_finding(
                "SHP005", model_name, method, 0,
                f"package {package.name!r} ({package.numel} elements) "
                f"reports {claimed}B but the raveled buffer serializes "
                f"to {symbolic}B symbolically"))
    return findings


def _check_chunks(model_name: str, package: Package, scheme: SchemeModel,
                  world: int, method: str,
                  node_of: "list[int] | None") -> list[Finding]:
    """SHP003/SHP004: per-scheme chunk checks for one package."""
    findings: list[Finding] = []
    numel = package.numel
    whole_bytes = package.spec.wire_bytes(numel)
    for phase, bounds in scheme.phases(numel, world, node_of):
        where = f"package {package.name!r} phase {phase}"
        cursor = 0
        sound = True
        if len(bounds) > world:
            extra = sum(
                symbolic_wire_bytes(
                    symbolic_payload(package.spec, end - start,
                                     (end - start,)))
                for start, end in bounds) - whole_bytes
            findings.append(_finding(
                "SHP004", model_name, f"{method}/{scheme.name}", world,
                f"{where}: partitions into {len(bounds)} chunks for "
                f"{world} ranks; per-chunk metadata inflates the wire "
                f"by {max(extra, 0)}B over the whole-buffer "
                f"{whole_bytes}B"))
            continue
        for start, end in bounds:
            if start != cursor or end < start:
                findings.append(_finding(
                    "SHP004", model_name, f"{method}/{scheme.name}", world,
                    f"{where}: chunk [{start}, {end}) breaks contiguous "
                    f"coverage at offset {cursor}"))
                sound = False
                break
            if end == start and numel >= len(bounds):
                findings.append(_finding(
                    "SHP004", model_name, f"{method}/{scheme.name}", world,
                    f"{where}: empty chunk at offset {start} despite "
                    f"{numel} elements across {len(bounds)} chunks"))
                sound = False
            cursor = end
        if sound and cursor != numel:
            findings.append(_finding(
                "SHP004", model_name, f"{method}/{scheme.name}", world,
                f"{where}: chunks cover {cursor} of {numel} elements"))
            sound = False
        if not sound:
            continue
        for start, end in bounds:
            chunk_numel = end - start
            claimed = package.spec.wire_bytes(chunk_numel)
            symbolic = symbolic_wire_bytes(
                symbolic_payload(package.spec, chunk_numel, (chunk_numel,)))
            if claimed != symbolic:
                findings.append(_finding(
                    "SHP003", model_name, f"{method}/{scheme.name}", world,
                    f"{where}: chunk [{start}, {end}) claims {claimed}B "
                    f"on the wire but serializes to {symbolic}B"))
    return findings


def interpret_pipeline(
    model_name: str,
    config: CGXConfig,
    schemes: "Mapping[str, SchemeModel] | None" = None,
    worlds: Sequence[int] = (4, 5),
    registry: "dict[str, type[Compressor]] | None" = None,
    model: ModelSpec | None = None,
) -> list[Finding]:
    """Abstractly execute one model through one config, all schemes."""
    registry = registry or default_registry()
    schemes = schemes if schemes is not None else SCHEME_MODELS
    model = model or build_spec(model_name)
    method = config.compression.method
    engine = CommunicationEngine(config)
    packages = engine.plan(model.layer_infos())
    findings = _check_plan(model_name, model, packages, method, registry)

    for scheme in schemes.values():
        for world in worlds:
            node_of = [rank // 2 for rank in range(world)] \
                if scheme.name == "hier" else None
            if scheme.accumulator_dtype != "float32":
                findings.append(_finding(
                    "SHP002", model_name, f"{method}/{scheme.name}", world,
                    f"scheme accumulates decoded chunks into "
                    f"{scheme.accumulator_dtype}; gradients are fp32"))
            for package in packages:
                findings.extend(_check_chunks(
                    model_name, package, scheme, world, method, node_of))
    return findings


def _adaptive_config(base: CompressionSpec) -> CGXConfig:
    """A config carrying a real adaptive plan in ``per_layer``.

    Ties the two certifiers together: the bit-width plans BWP certifies
    must also be *executable* — every per-layer spec the controller
    would write has to flow through the shape interpreter cleanly.
    """
    from repro.core.adaptive import (kmeans_assign, resolve_bucket,
                                     synthetic_stats_for_spec)

    spec = build_spec("transformer_xl")
    stats = synthetic_stats_for_spec(spec)
    bits = kmeans_assign(stats, alpha=2.0)
    per_layer = {name: base.with_bits(width, resolve_bucket(width))
                 for name, width in bits.items()}
    return CGXConfig(compression=base, per_layer=per_layer)


def verify_shapes(
    models: Sequence[str] | None = None,
    specs: Sequence[CompressionSpec] | None = None,
    schemes: "Mapping[str, SchemeModel] | None" = None,
    worlds: Sequence[int] = (4, 5),
    registry: "dict[str, type[Compressor]] | None" = None,
    calibrate: bool = True,
    include_adaptive: bool = True,
) -> list[Finding]:
    """Run the full SHP battery.

    Defaults sweep every model spec × every battery compressor × every
    scheme model at full tensor scale, plus the calibration pass and one
    adaptively-respecced config; tests inject broken specs, registries
    and scheme models to exercise every rule.
    """
    registry = registry or default_registry()
    findings: list[Finding] = []
    if calibrate:
        findings.extend(calibrate_payload_model(registry))
    names = list(models) if models is not None else available_specs()
    battery = list(specs) if specs is not None else battery_specs()
    for name in names:
        model = build_spec(name)
        for spec in battery:
            config = CGXConfig(compression=spec)
            findings.extend(interpret_pipeline(
                name, config, schemes=schemes, worlds=worlds,
                registry=registry, model=model))
    if include_adaptive:
        findings.extend(interpret_pipeline(
            "transformer_xl:adaptive",
            _adaptive_config(CompressionSpec("qsgd", bits=4,
                                             bucket_size=128)),
            schemes=schemes, worlds=worlds, registry=registry,
            model=build_spec("transformer_xl")))
    return findings

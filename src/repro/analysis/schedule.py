"""Collective-schedule verifier.

Runs each registered reduction scheme against instrumented fake ranks
(synthetic gradient buffers, a real compressor) under
:func:`repro.collectives.trace.capture`, then statically checks the
captured send/recv event log:

* **SCH001** — orphan send: a payload no rank ever receives (asymmetric
  schedule; under rendezvous semantics the sender blocks forever).
* **SCH002** — recv without a matching send: the receiver waits on a
  message that never exists — a deadlock in any semantics.
* **SCH003** — causality: a recv consumed before its send was emitted.
* **SCH004** — self-message (``src == dst``): a rank "transmitting" to
  itself indicates a schedule indexing bug.
* **SCH005** — wire conservation: total bytes across send events must
  equal ``ReduceStats.wire_bytes``, so the perf model and the data path
  cannot silently diverge.
* **SCH006** — recompression depth: ``max_recompressions`` must stay
  within the scheme's analytic bound (SRA 2, allgather 1, tree
  ``log2(N)+1``, ...); exceeding it means values absorb more
  quantization error than the scheme's convergence argument assumes.
* **SCH007** — rank out of range for the declared world size.

The model assumes eager (buffered) sends and blocking receives, which
matches how the simulated data path executes; deadlock freedom is then
exactly "every recv is satisfiable" (SCH002) plus causal ordering
(SCH003).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.collectives import ALGORITHMS, PartialAllreduce
from repro.collectives.base import ReduceStats
from repro.collectives.trace import ScheduleTrace, capture
from repro.compression import CompressionSpec, make_compressor

from .findings import Finding, sort_findings

__all__ = ["SchemeCase", "default_cases", "trace_case", "verify_trace",
           "verify_case", "verify_schedules", "verify_callable",
           "expected_recompression_bound"]


@dataclass(frozen=True)
class SchemeCase:
    """One (scheme, world, topology/quorum) configuration to verify."""

    scheme: str
    world: int
    node_of: tuple[int, ...] | None = None
    participants: tuple[int, ...] | None = None

    @property
    def path(self) -> str:
        return f"<schedule:{self.scheme}@world={self.world}>"


def default_cases() -> list[SchemeCase]:
    """Every registered scheme at several world sizes.

    Hierarchical needs >= 2 members per node (a single-member node
    degenerates to a world-1 SRA whose broadcast accounting has no
    receiver); partial runs with a strict quorum so at least one
    laggard exercises the late-delivery path.
    """
    cases: list[SchemeCase] = []
    for scheme in sorted(ALGORITHMS):
        if scheme == "hier":
            cases.append(SchemeCase(scheme, 4, node_of=(0, 0, 1, 1)))
            cases.append(SchemeCase(scheme, 6, node_of=(0, 0, 0, 1, 1, 1)))
        else:
            for world in (2, 3, 4, 5):
                cases.append(SchemeCase(scheme, world))
    cases.append(SchemeCase("partial", 4, participants=(0, 1, 2)))
    cases.append(SchemeCase("partial", 5, participants=(0, 2, 4)))
    return cases


def expected_recompression_bound(scheme: str, world: int) -> int:
    """Worst-case quantize rounds any value may see under ``scheme``."""
    fixed = {"sra": 2, "allgather": 1, "ps": 2, "hier": 5, "partial": 3}
    if scheme in fixed:
        return fixed[scheme]
    if scheme == "ring":
        return world
    if scheme == "tree":
        return math.ceil(math.log2(max(2, world))) + 1
    return world  # unknown scheme: the loosest defensible bound


def trace_case(case: SchemeCase, numel: int = 97,
               spec: CompressionSpec | None = None, seed: int = 0,
               ) -> tuple[ScheduleTrace, ReduceStats]:
    """Run one scheme on synthetic fake-rank buffers, capturing events."""
    spec = spec or CompressionSpec("qsgd", bits=4, bucket_size=32)
    compressor = make_compressor(spec)
    rng = np.random.default_rng(seed)
    buffers = [np.asarray(rng.normal(size=numel), dtype=np.float32)
               for _ in range(case.world)]
    with capture() as trace:
        if case.scheme == "partial":
            reducer = PartialAllreduce(case.world)
            _, stats = reducer.reduce(
                buffers, list(case.participants or range(case.world)),
                compressor, rng, key="verify",
            )
        else:
            _, stats = ALGORITHMS[case.scheme](
                buffers, compressor, rng, key="verify",
                **({"node_of": list(case.node_of)}
                   if case.node_of is not None else {}),
            )
    return trace, stats


def verify_trace(trace: ScheduleTrace, stats: ReduceStats,
                 case: SchemeCase) -> list[Finding]:
    """Statically check one captured event log; [] means clean."""
    findings: list[Finding] = []

    def emit(rule: str, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=case.path, line=0, col=0, message=message,
            source="schedule", scheme=case.scheme, world=case.world,
        ))

    sends = Counter(e.match_key() for e in trace.sends)
    recvs = Counter(e.match_key() for e in trace.recvs)
    for key, count in sorted((sends - recvs).items()):
        src, dst, step, nbytes, tag = key
        emit("SCH001", f"{count} send(s) {src}->{dst} at step {step} "
                       f"(tag {tag!r}, {nbytes}B) never received")
    for key, count in sorted((recvs - sends).items()):
        src, dst, step, nbytes, tag = key
        emit("SCH002", f"rank {dst} waits for {count} message(s) from "
                       f"{src} at step {step} (tag {tag!r}, {nbytes}B) "
                       f"that are never sent — deadlock")

    # causality: replay the log; a recv must follow its send
    available: Counter = Counter()
    causality_bad = 0
    for event in trace.events:
        key = event.match_key()
        if event.kind == "send":
            available[key] += 1
        elif available[key] > 0:
            available[key] -= 1
        elif sends[key] >= recvs[key]:  # matched overall, wrong order
            causality_bad += 1
    if causality_bad:
        emit("SCH003", f"{causality_bad} recv event(s) consumed before "
                       f"their matching send was emitted")

    for event in trace.events:
        if event.src == event.dst:
            emit("SCH004", f"self-message at step {event.step} "
                           f"(rank {event.src}, tag {event.tag!r})")
        if not (0 <= event.src < case.world and 0 <= event.dst < case.world):
            emit("SCH007", f"event {event.kind} {event.src}->{event.dst} "
                           f"outside world of {case.world} ranks")

    sent_bytes = trace.send_bytes()
    if sent_bytes != stats.wire_bytes:
        emit("SCH005", f"traced payload bytes ({sent_bytes}) != "
                       f"ReduceStats.wire_bytes ({stats.wire_bytes}); "
                       f"schedule and accounting disagree")

    bound = expected_recompression_bound(case.scheme, case.world)
    if stats.max_recompressions > bound:
        emit("SCH006", f"max_recompressions={stats.max_recompressions} "
                       f"exceeds the scheme bound of {bound}")
    return sort_findings(findings)


def verify_case(case: SchemeCase, **trace_kwargs: Any) -> list[Finding]:
    trace, stats = trace_case(case, **trace_kwargs)
    return verify_trace(trace, stats, case)


def verify_schedules(cases: Sequence[SchemeCase] | None = None,
                     ) -> list[Finding]:
    """Verify every case (default: all registered schemes); [] = clean."""
    findings: list[Finding] = []
    for case in (default_cases() if cases is None else cases):
        findings.extend(verify_case(case))
    return sort_findings(findings)


def verify_callable(fn: Callable, world: int, scheme: str = "custom",
                    numel: int = 97, seed: int = 0) -> list[Finding]:
    """Verify an unregistered collective with the standard signature.

    ``fn(buffers, compressor, rng, key=...) -> (outputs, ReduceStats)`` —
    the hook for testing toy or third-party schemes without touching the
    :data:`~repro.collectives.ALGORITHMS` registry.
    """
    case = SchemeCase(scheme, world)
    spec = CompressionSpec("qsgd", bits=4, bucket_size=32)
    compressor = make_compressor(spec)
    rng = np.random.default_rng(seed)
    buffers = [np.asarray(rng.normal(size=numel), dtype=np.float32)
               for _ in range(world)]
    with capture() as trace:
        _, stats = fn(buffers, compressor, rng, key="verify")
    return verify_trace(trace, stats, case)

"""Entry point: ``python -m repro.analysis`` / ``repro analyze``.

Runs up to eleven passes and reports findings as text or JSON:

* **lint** — numerical-safety AST rules (REP) over the given paths;
* **schedule** — collective-schedule verification (SCH);
* **contracts** — compressor-contract checking (CON), plus the fault-
  runtime contracts (FLT003 determinism, FLT004 CRC detection);
* **races** — happens-before race detection (RACE), plus the schedule
  and race batteries re-run under a lossy fault campaign (FLT001/002);
* **plans** — adaptive bit-width plan certification (BWP): exact budget
  feasibility, optimality-gap ratchet, controller respec stability;
* **shapes** — the shape/dtype pipeline interpreter (SHP): abstract
  execution of every (model x compressor x scheme) wire path;
* **health** — the failure-detection battery (HLT): detector
  soundness and latency bounds, oracle-free supervised recovery,
  bit-identical resume, checkpoint-store crash-safety;
* **liveness** — the deadlock & progress certifier (DLV): wait-for
  cycles, orphan endpoints and excluded-rank traffic per barrier
  phase, small-world DPOR interleaving exploration, bounded wait
  under a fair scheduler, and the blocking-call AST pass;
* **overlap** — the overlap-safety certifier (OVL): use-before-reduce
  ordering, bucket-fusion conservation, launch-priority discipline,
  in-flight compressor-state attribution and the makespan bound of
  the engine's overlapped mode, plus the ``.grad``-consumer AST pass;
* **sched** — the fleet-schedule certifier (SCD): placement soundness
  replayed from the canonical fleet log, admission liveness and FIFO
  order, exact cross-job conservation, throttle semantics, isolation
  bounds against isolated replays, fairness-metric validity, and the
  job-tagging AST pass over the scheduler and the shared network;
* **elastic** — the elastic-membership certifier (ELA): no ghost
  gradients from departed ranks, spot-drain protocol compliance,
  convergence parity of grown/shrunk worlds against fixed baselines,
  exact feasibility of every composition-change respec, and byte-
  identical same-seed campaign logs.

The first four run by default; ``--all`` runs all eleven (the CI
configuration).  ``--contracts`` / ``--races`` / ``--plans`` /
``--shapes`` / ``--health`` / ``--liveness`` / ``--overlap`` /
``--sched`` / ``--elastic`` select *only* the named semantic passes
(they combine with each other); ``--schedule-only`` keeps its PR-1
meaning (schedule pass alone) and ``--no-schedule`` drops the schedule
pass from the default set.

Exit status: 0 when clean (or all findings baselined), 1 when new
findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Sequence, TextIO

from .baseline import (DEFAULT_BASELINE_PATH, load_baseline, split_baselined,
                       write_baseline)
from .findings import Finding, sort_findings
from .rules import run_lint
from .schedule import verify_schedules

__all__ = ["build_parser", "main", "select_passes"]

PASSES = ("lint", "schedule", "contracts", "races")
ALL_PASSES = ("lint", "schedule", "contracts", "races", "plans", "shapes",
              "health", "liveness", "overlap", "sched", "elastic")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static analysis: numerical-safety lint (REP), "
                    "collective-schedule verification (SCH), compressor "
                    "contracts (CON), happens-before races (RACE), "
                    "adaptive-plan certification (BWP), shape/dtype "
                    "pipeline interpretation (SHP), deadlock/progress "
                    "certification (DLV), overlap-safety certification "
                    "(OVL), fleet-schedule certification (SCD), "
                    "elastic-membership certification (ELA).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "json"), help="output format")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                        help="allowlist file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_PATH})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the baseline "
                             "and exit 0")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--no-schedule", action="store_true",
                      help="skip the collective-schedule verifier")
    mode.add_argument("--schedule-only", action="store_true",
                      help="run only the collective-schedule verifier")
    parser.add_argument("--contracts", action="store_true",
                        help="run only the compressor-contract checker "
                             "(combines with the other pass flags)")
    parser.add_argument("--races", action="store_true",
                        help="run only the happens-before race detector "
                             "(combines with the other pass flags)")
    parser.add_argument("--plans", action="store_true",
                        help="run only the bit-width plan certifier "
                             "(combines with the other pass flags)")
    parser.add_argument("--shapes", action="store_true",
                        help="run only the shape/dtype pipeline "
                             "interpreter (combines with the other "
                             "pass flags)")
    parser.add_argument("--health", action="store_true",
                        help="run only the failure-detection battery "
                             "(combines with the other pass flags)")
    parser.add_argument("--liveness", action="store_true",
                        help="run only the deadlock & progress "
                             "certifier (combines with the other pass "
                             "flags)")
    parser.add_argument("--overlap", action="store_true",
                        help="run only the overlap-safety certifier "
                             "(combines with the other pass flags)")
    parser.add_argument("--sched", action="store_true",
                        help="run only the fleet-schedule certifier "
                             "(combines with the other pass flags)")
    parser.add_argument("--elastic", action="store_true",
                        help="run only the elastic-membership certifier "
                             "(combines with the other pass flags)")
    parser.add_argument("--all", dest="all_passes", action="store_true",
                        help="run every battery (lint, schedule, "
                             "contracts, races, plans, shapes, health, "
                             "liveness, overlap, sched, elastic)")
    return parser


def select_passes(args: argparse.Namespace) -> tuple[str, ...]:
    """Which passes a parsed command line asks for (see module doc)."""
    named = [name for name in ("contracts", "races", "plans", "shapes",
                               "health", "liveness", "overlap", "sched",
                               "elastic")
             if getattr(args, name)]
    if args.all_passes:
        if args.schedule_only or args.no_schedule or named:
            raise SystemExit(
                "repro.analysis: --all cannot combine with pass-"
                "selection flags (it already runs every battery)")
        return ALL_PASSES
    if args.schedule_only:
        if named:
            raise SystemExit(
                "repro.analysis: --schedule-only cannot combine with "
                f"--{'/--'.join(named)}")
        return ("schedule",)
    if named:
        if args.no_schedule:
            raise SystemExit(
                "repro.analysis: --no-schedule is redundant with "
                f"--{'/--'.join(named)} (schedule is already deselected)")
        return tuple(named)
    if args.no_schedule:
        return ("lint", "contracts", "races")
    return PASSES


def _report(new: list[Finding], baselined: list[Finding], fmt: str,
            out: TextIO) -> None:
    if fmt == "json":
        summary = {
            "total": len(new) + len(baselined),
            "new": len(new),
            "baselined": len(baselined),
            "by_rule": dict(sorted(Counter(f.rule for f in new).items())),
        }
        payload = {
            "version": 1,
            "findings": [f.to_dict() for f in new],
            "summary": summary,
        }
        print(json.dumps(payload, indent=2), file=out)
        return
    for finding in new:
        print(finding.render(), file=out)
    if new:
        print(f"{len(new)} finding(s) ({len(baselined)} baselined)",
              file=out)
    else:
        print(f"clean: no new findings ({len(baselined)} baselined)",
              file=out)


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        passes = select_passes(args)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    findings: list[Finding] = []
    if "lint" in passes:
        import os

        for path in args.paths:
            if not os.path.exists(path):
                print(f"repro.analysis: path not found: {path}",
                      file=sys.stderr)
                return 2
        findings.extend(run_lint(args.paths))
    if "schedule" in passes:
        findings.extend(verify_schedules())
    if "contracts" in passes:
        from repro.faults.validate import (verify_crc_detection,
                                           verify_fault_determinism)

        from .contracts import verify_contracts

        findings.extend(verify_contracts())
        # fault-runtime contracts: CRC detection (FLT004) and seeded
        # campaign reproducibility (FLT003)
        findings.extend(verify_crc_detection())
        findings.extend(verify_fault_determinism())
    if "races" in passes:
        from repro.faults.validate import verify_fault_schedules

        from .races import verify_races

        findings.extend(verify_races())
        # re-run the schedule + race batteries under a lossy campaign so
        # injected retransmissions cannot mask (or create) real hazards
        # (FLT001/FLT002)
        findings.extend(verify_fault_schedules())
    if "plans" in passes:
        from .plans import verify_plans

        findings.extend(verify_plans())
    if "shapes" in passes:
        from .shapes import verify_shapes

        findings.extend(verify_shapes())
    if "health" in passes:
        from .health import verify_health

        findings.extend(verify_health())
    if "liveness" in passes:
        from .liveness import verify_liveness

        findings.extend(verify_liveness())
    if "overlap" in passes:
        from .overlap import verify_overlap

        findings.extend(verify_overlap())
    if "sched" in passes:
        from .sched import verify_sched

        findings.extend(verify_sched())
    if "elastic" in passes:
        from .elastic import verify_elastic

        findings.extend(verify_elastic())
    findings = sort_findings(findings)

    if args.write_baseline:
        count = write_baseline(findings, args.baseline)
        print(f"baseline written: {count} fingerprint(s) -> {args.baseline}",
              file=out)
        return 0

    baseline = load_baseline(args.baseline)
    new, baselined = split_baselined(findings, baseline)
    _report(new, baselined, args.fmt, out)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Overlap-safety certifier (Pillar 9, rules OVL001..OVL006).

The overlapped engine mode (:meth:`~repro.core.engine.CommunicationEngine
.reduce_overlapped`) enqueues each layer's reduction as its backward
finishes, fuses transmission buckets and drains them first-needed-first-
sent.  That concurrency buys step time but opens failure modes the
sequential data path cannot have: an optimizer reading a gradient whose
reduction has not landed, a layer reduced twice (or dropped) by the
bucket fusion, a starved bucket, error-feedback residuals touched by two
in-flight reductions.  This pass certifies the overlapped schedule on
the real data path, cell by cell.

``OVL001``  use-before-reduce: a gradient consumed before its bucket's
            reduction landed — the happens-before chain grad_ready ->
            reduce_enqueued -> reduce_landed -> grad_consumed must hold
            per layer per step, in event positions and simulated time,
            including adaptive-respec and quorum-demotion steps.
``OVL002``  fusion conservation: the buckets of one step must partition
            the layer set exactly once, and the bucket byte accounting
            (dense and wire) must match both the per-layer spec arithmetic
            and the serialized payload ground truth.
``OVL003``  priority inversion: the launch order disagrees with the
            first-needed-first-sent discipline (smallest
            (first_needed, min_index) among sealed buckets), or the
            single channel overlapped two transfers.
``OVL004``  in-flight state hazard: a keyed compressor-state access
            (error-feedback residuals, quorum carries) lands outside any
            bucket's execution span, one state key is touched by two
            buckets in one step, or the happens-before race detector
            (RACE rules) finds an unordered conflict in the overlapped
            timeline.
``OVL005``  overlap ineffectiveness: under injected uniform delays the
            certified step time must stay within the makespan bound
            ``max(compute, comm) + max(largest transfer, fill) + eps``
            and beat the synchronize-at-the-end baseline by the expected
            margin.
``OVL006``  a function on the optimizer/trainer path reads ``.grad``
            without calling a completion-barrier API and without the
            ``@grad_consumer`` marker — a consumer the barrier cannot
            see (static AST pass).

The battery sweeps every reduction scheme (plus the quorum reducer)
across world sizes and two model shapes, four steps per cell: a normal
step, an adaptive respec, a quorum demotion and a carry drain — the
schedule reshapes the certifier must survive.  One extra cell drives the
full trainer (module grad-ready hooks, DDP barrier) end to end.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.collectives.timing import SCHEMES
from repro.collectives.trace import OverlapEvent, ScheduleTrace, capture
from repro.compression import CompressionSpec
from repro.core.config import CGXConfig
from repro.core.engine import CommunicationEngine
from repro.core.overlap import OverlapDelays, OverlapReport

from .findings import Finding, sort_findings

__all__ = ["OVL_RULES", "OverlapCase", "overlap_cases", "certify_case",
           "certify_trainer", "analyze_overlap_trace", "lint_grad_consumers",
           "lint_grad_consumer_source", "consumer_default_roots",
           "verify_overlap"]

OVL_RULES = {
    "OVL001": "gradient consumed before its reduction landed",
    "OVL002": "bucket fusion does not conserve layers or bytes",
    "OVL003": "launch order violates first-needed-first-sent priority",
    "OVL004": "compressor state touched outside its bucket's execution",
    "OVL005": "overlapped step time misses the makespan bound",
    "OVL006": ".grad consumer bypasses the completion barrier",
}

#: steps each battery cell runs: a clean step, an adaptive respec, a
#: quorum demotion, and a full-participation drain
CELL_STEPS = 4

#: injected uniform delays: per-layer backward interval and per-bucket
#: transfer, chosen so compute and communication are balanced (the
#: regime where overlap pays the most and the bound is tightest)
UNIFORM_COMPUTE = 1e-3
UNIFORM_COMM = 2e-3

#: float-comparison slack on simulated-time arithmetic
TIME_EPS = 1e-9


class OverlapCase:
    """One battery cell: a scheme, a world size and a model shape."""

    def __init__(self, scheme: str, world: int, model: str):
        self.scheme = scheme
        self.world = world
        self.model = model

    @property
    def path(self) -> str:
        return f"<overlap:{self.scheme}@world={self.world}/{self.model}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlapCase({self.scheme!r}, {self.world}, {self.model!r})"


def _finding(rule: str, path: str, message: str, scheme: str = "",
             world: int = 0) -> Finding:
    return Finding(rule=rule, path=path, line=0, col=0, message=message,
                   source="overlap", scheme=scheme, world=world)


# -- the battery's models and configuration -----------------------------------

def _model_layers(model: str) -> list[tuple[str, int]]:
    """(name, numel) per layer, in forward (registration) order.

    ``stack`` is eight equal compressed layers (uniform buckets);
    ``mixed`` adds a keyword-filtered bias and a below-threshold tensor,
    so fp32 per-layer packages ride the same bucket machinery.
    """
    stack = [(f"layer{i}", 96) for i in range(8)]
    if model == "stack":
        return stack
    if model == "mixed":
        return stack + [("fc.bias", 12), ("tiny", 16)]
    raise ValueError(f"unknown battery model {model!r}")


def _cell_config(scheme: str) -> CGXConfig:
    return CGXConfig(
        compression=CompressionSpec("qsgd", bits=4, bucket_size=32,
                                    error_feedback=True),
        scheme="sra" if scheme == "partial" else scheme,
        fusion_bytes=768,          # two 96-element fp32 layers per bucket
        min_compress_numel=64,
    )


def _node_of(world: int) -> list[int]:
    """Two-node placement for the hierarchical scheme."""
    return [0 if r < (world + 1) // 2 else 1 for r in range(world)]


def overlap_cases(worlds: Sequence[int] = (2, 3, 4)) -> list[OverlapCase]:
    """Every (scheme x world x model) battery cell."""
    schemes = SCHEMES + ("partial",)
    return [OverlapCase(scheme, world, model)
            for scheme in schemes
            for world in worlds
            for model in ("stack", "mixed")]


# -- running one cell ---------------------------------------------------------

def _consume_all(names: Iterable[str], step: int, t: float) -> None:
    """Emit the consumption events the DDP barrier would emit.

    Mirrors :meth:`~repro.core.ddp.CGXDistributedDataParallel
    .mark_consumed` for engine-driven cells that have no DDP wrapper.
    """
    from repro.collectives.trace import emit_overlap

    for name in names:
        emit_overlap("grad_consumed", step, t, layer=name)


def _run_cell(case: OverlapCase) -> tuple[ScheduleTrace,
                                          list[OverlapReport],
                                          OverlapDelays]:
    """Drive :meth:`reduce_overlapped` through the four-step campaign."""
    layers = _model_layers(case.model)
    names = [name for name, _ in layers]
    config = _cell_config(case.scheme)
    node_of = _node_of(case.world) if case.scheme == "hier" else None
    engine = CommunicationEngine(config, node_of=node_of)
    rng = np.random.default_rng(7)
    grad_rng = np.random.default_rng(
        abs(hash((case.scheme, case.world, case.model))) % (2**32))
    delays = OverlapDelays.uniform(names, compute=UNIFORM_COMPUTE,
                                   comm_latency=UNIFORM_COMM,
                                   comm_per_byte=0.0)
    ready_order = list(reversed(names))
    quorum = list(range(case.world - 1)) if case.world > 1 else [0]

    reports: list[OverlapReport] = []
    with capture() as trace:
        for step in range(CELL_STEPS):
            per_worker = [
                {name: grad_rng.normal(size=numel).astype(np.float32)
                 for name, numel in layers}
                for _ in range(case.world)
            ]
            # step 1 reshapes the plan (adaptive respec); the quorum
            # reducer takes over on step 2 (and step 1 for the partial
            # column); step 3 drains the carries at full participation
            if step == 1:
                config.per_layer["layer3"] = CompressionSpec(
                    "qsgd", bits=8, bucket_size=32, error_feedback=True)
            demoted = step == 2 or (case.scheme == "partial" and step == 1)
            participants = quorum if demoted else None
            _, report = engine.reduce_overlapped(
                per_worker, rng, ready_order=ready_order,
                participants=participants,
                average_over=len(quorum) if demoted else None,
                step=step, delays=delays, measure_payload=True)
            _consume_all(names, step, report.overlapped_time)
            reports.append(report)
    return trace, reports, delays


# -- OVL001: the per-layer happens-before chain -------------------------------

def _events_by_step(trace: ScheduleTrace
                    ) -> dict[int, dict[str, dict[str, OverlapEvent]]]:
    """step -> kind -> (layer or bucket name) -> event."""
    index: dict[int, dict[str, dict[str, OverlapEvent]]] = {}
    for event in trace.overlap_events:
        key = event.layer if event.kind in ("grad_ready", "grad_consumed") \
            else event.bucket
        index.setdefault(event.step, {}).setdefault(event.kind, {})[key] = \
            event
    return index


def check_use_before_reduce(case: OverlapCase, trace: ScheduleTrace,
                            reports: Sequence[OverlapReport],
                            names: Sequence[str],
                            step_ids: Sequence[int] | None = None
                            ) -> list[Finding]:
    """OVL001 over every (step, layer) of one cell's trace.

    ``step_ids`` maps each report to the step number its events carry
    (the trainer numbers steps from 1; the engine battery from 0).
    """
    findings: list[Finding] = []
    by_step = _events_by_step(trace)
    if step_ids is None:
        step_ids = list(range(len(reports)))

    def chain_violation(step: int, layer: str, detail: str) -> None:
        findings.append(_finding(
            "OVL001", case.path,
            f"step {step}, layer {layer!r}: {detail}",
            case.scheme, case.world))

    for step, report in zip(step_ids, reports):
        kinds = by_step.get(step, {})
        ready = kinds.get("grad_ready", {})
        enqueued = kinds.get("reduce_enqueued", {})
        landed = kinds.get("reduce_landed", {})
        consumed = kinds.get("grad_consumed", {})
        bucket_of = {layer: bucket.name
                     for bucket in report.buckets
                     for layer in bucket.layer_names}
        for layer in names:
            bucket = bucket_of.get(layer)
            if bucket is None:
                chain_violation(step, layer,
                                "no bucket carries this layer's reduction")
                continue
            r, e = ready.get(layer), enqueued.get(bucket)
            ld, c = landed.get(bucket), consumed.get(layer)
            missing = [label for label, ev in
                       (("grad_ready", r), ("reduce_enqueued", e),
                        ("reduce_landed", ld), ("grad_consumed", c))
                       if ev is None]
            if missing:
                chain_violation(
                    step, layer,
                    f"lifecycle event(s) {', '.join(missing)} missing "
                    f"from the trace")
                continue
            assert r and e and ld and c
            for before, after, what in (
                    (r, e, "enqueued before its gradient was ready"),
                    (e, ld, "landed before it was enqueued"),
                    (ld, c, "consumed before its reduction landed")):
                if after.t < before.t - TIME_EPS or after.pos < before.pos:
                    chain_violation(
                        step, layer,
                        f"{what} (t {before.t:.6f} -> {after.t:.6f}, "
                        f"pos {before.pos} -> {after.pos})")
    return findings


# -- OVL002: fusion conservation ----------------------------------------------

def check_fusion_conservation(case: OverlapCase,
                              reports: Sequence[OverlapReport],
                              layers: Sequence[tuple[str, int]]
                              ) -> list[Finding]:
    """OVL002: buckets partition the layers; byte accounting is exact."""
    findings: list[Finding] = []
    expected = sorted(name for name, _ in layers)
    numel_of = dict(layers)
    for step, report in enumerate(reports):
        covered = [layer for bucket in report.buckets
                   for layer in bucket.layer_names]
        if sorted(covered) != expected:
            findings.append(_finding(
                "OVL002", case.path,
                f"step {step}: buckets cover {sorted(covered)} but the "
                f"model has {expected} — a layer reduced twice or "
                f"dropped", case.scheme, case.world))
            continue
        for bucket in report.buckets:
            dense = sum(numel_of[layer] * 4 for layer in bucket.layer_names)
            if bucket.dense_bytes != dense:
                findings.append(_finding(
                    "OVL002", case.path,
                    f"step {step}, {bucket.name}: dense accounting "
                    f"{bucket.dense_bytes} B != member total {dense} B",
                    case.scheme, case.world))
            claimed = sum(pkg.spec.wire_bytes(pkg.numel)
                          for pkg in bucket.packages)
            if bucket.wire_bytes != claimed:
                findings.append(_finding(
                    "OVL002", case.path,
                    f"step {step}, {bucket.name}: wire accounting "
                    f"{bucket.wire_bytes} B != per-layer spec total "
                    f"{claimed} B", case.scheme, case.world))
            if bucket.measured_bytes >= 0 \
                    and bucket.measured_bytes != claimed:
                findings.append(_finding(
                    "OVL002", case.path,
                    f"step {step}, {bucket.name}: serialized payload "
                    f"measures {bucket.measured_bytes} B but the spec "
                    f"claims {claimed} B", case.scheme, case.world))
    return findings


# -- OVL003: launch-priority discipline ---------------------------------------

def check_priority(case: OverlapCase,
                   reports: Sequence[OverlapReport]) -> list[Finding]:
    """OVL003: replay the channel and compare against the recorded order."""
    findings: list[Finding] = []
    for step, report in enumerate(reports):
        recorded = sorted(report.buckets, key=lambda b: b.launch_t)
        for bucket in report.buckets:
            if bucket.launch_t < bucket.ready_t - TIME_EPS:
                findings.append(_finding(
                    "OVL003", case.path,
                    f"step {step}, {bucket.name}: launched at "
                    f"{bucket.launch_t:.6f} before sealing at "
                    f"{bucket.ready_t:.6f}", case.scheme, case.world))
        for prev, nxt in zip(recorded, recorded[1:]):
            if nxt.launch_t < prev.landed_t - TIME_EPS:
                findings.append(_finding(
                    "OVL003", case.path,
                    f"step {step}: {nxt.name} launched at "
                    f"{nxt.launch_t:.6f} while {prev.name} still held "
                    f"the channel until {prev.landed_t:.6f}",
                    case.scheme, case.world))
        # replay: at each free point the sealed bucket with the smallest
        # (first_needed, min_index) must go next.  Seal comparisons are
        # exact (no epsilon) to mirror the scheduler's own predicate —
        # a tolerance here would "seal" buckets the channel could not
        # actually see and report phantom inversions on float near-ties
        remaining = list(report.buckets)
        for bucket in recorded:
            sealed = [b for b in remaining if b.ready_t <= bucket.launch_t]
            if sealed:
                best = min(sealed,
                           key=lambda b: (b.first_needed, b.min_index))
                if (best.first_needed, best.min_index) < \
                        (bucket.first_needed, bucket.min_index):
                    findings.append(_finding(
                        "OVL003", case.path,
                        f"step {step}: {bucket.name} (first_needed "
                        f"{bucket.first_needed}) launched ahead of "
                        f"sealed {best.name} (first_needed "
                        f"{best.first_needed}) — priority inversion",
                        case.scheme, case.world))
            remaining.remove(bucket)
    return findings


# -- OVL004: in-flight compressor-state attribution ---------------------------

def check_state_attribution(case: OverlapCase, trace: ScheduleTrace,
                            reports: Sequence[OverlapReport]
                            ) -> list[Finding]:
    """OVL004: state accesses stay inside exactly one bucket's execution."""
    from repro.collectives.trace import BufferAccess

    from .races import analyze_trace

    findings: list[Finding] = []
    spans: list[tuple[int, str, int, int]] = []   # (step, bucket, lo, hi)
    for step, report in enumerate(reports):
        for bucket in report.buckets:
            lo, hi = bucket.exec_span
            if lo < 0:
                findings.append(_finding(
                    "OVL004", case.path,
                    f"step {step}, {bucket.name}: no execution span "
                    f"recorded — the reduction never ran",
                    case.scheme, case.world))
                continue
            spans.append((step, bucket.name, lo, hi))

    # each state key belongs to at most one bucket per step (exactly the
    # <=1-in-flight-reduction-per-residual invariant), and every state
    # access falls inside some bucket's execution
    owners: dict[tuple[int, str], set[str]] = {}
    for pos, item in enumerate(trace.timeline):
        if not isinstance(item, BufferAccess) or item.space != "state":
            continue
        containing = [(step, name) for step, name, lo, hi in spans
                      if lo <= pos < hi]
        if not containing:
            findings.append(_finding(
                "OVL004", case.path,
                f"state key {item.buffer} accessed at timeline position "
                f"{pos}, outside every bucket's execution span",
                case.scheme, case.world))
            continue
        for step, name in containing:
            owners.setdefault((step, item.buffer), set()).add(name)
    for (step, key), buckets in sorted(owners.items()):
        if len(buckets) > 1:
            findings.append(_finding(
                "OVL004", case.path,
                f"step {step}: state key {key} touched by "
                f"{len(buckets)} buckets ({', '.join(sorted(buckets))}) "
                f"— two in-flight reductions share residual state",
                case.scheme, case.world))

    # the happens-before race detector over the overlapped timeline:
    # an unordered conflict the span bookkeeping cannot express
    race_scheme = "sra" if case.scheme == "partial" else case.scheme
    for race in analyze_trace(trace, race_scheme, case.world):
        findings.append(_finding(
            "OVL004", case.path,
            f"happens-before conflict in the overlapped timeline: "
            f"[{race.rule}] {race.message}", case.scheme, case.world))
    return findings


# -- OVL005: makespan bound and overlap effectiveness -------------------------

#: the uniform-delay battery keeps compute and communication balanced,
#: so an overlapped step must beat the sequential baseline by at least
#: this factor (B buckets pipeline down to ~(1+1/B)/2 of sequential)
EFFECTIVENESS_FACTOR = 0.8


def check_makespan(case: OverlapCase, reports: Sequence[OverlapReport]
                   ) -> list[Finding]:
    """OVL005: bound + effectiveness under the injected uniform delays."""
    findings: list[Finding] = []
    for step, report in enumerate(reports):
        if not report.buckets:
            continue
        comm = [b.landed_t - b.launch_t for b in report.buckets]
        fill = min(b.ready_t for b in report.buckets)
        bound = max(report.compute_end, report.comm_total) \
            + max(max(comm), fill) + 1e-6
        if report.overlapped_time > bound:
            findings.append(_finding(
                "OVL005", case.path,
                f"step {step}: overlapped makespan "
                f"{report.overlapped_time:.6f}s exceeds the bound "
                f"{bound:.6f}s (compute {report.compute_end:.6f}s, "
                f"comm {report.comm_total:.6f}s) — the channel idled "
                f"with sealed buckets pending", case.scheme, case.world))
        limit = EFFECTIVENESS_FACTOR * report.sequential_time
        if len(report.buckets) >= 2 and report.overlapped_time > limit:
            findings.append(_finding(
                "OVL005", case.path,
                f"step {step}: overlapped step {report.overlapped_time:.6f}s"
                f" is not {EFFECTIVENESS_FACTOR:.1f}x under the sequential "
                f"{report.sequential_time:.6f}s — overlap bought "
                f"nothing", case.scheme, case.world))
    return findings


# -- putting one cell together ------------------------------------------------

def analyze_overlap_trace(case: OverlapCase, trace: ScheduleTrace,
                          reports: Sequence[OverlapReport],
                          layers: Sequence[tuple[str, int]]) -> list[Finding]:
    """All dynamic OVL rules over one cell's captured campaign."""
    names = [name for name, _ in layers]
    findings: list[Finding] = []
    findings.extend(check_use_before_reduce(case, trace, reports, names))
    findings.extend(check_fusion_conservation(case, reports, layers))
    findings.extend(check_priority(case, reports))
    findings.extend(check_state_attribution(case, trace, reports))
    findings.extend(check_makespan(case, reports))
    return sort_findings(findings)


def certify_case(case: OverlapCase) -> list[Finding]:
    """Run one battery cell and certify its trace; [] means clean."""
    trace, reports, _ = _run_cell(case)
    return analyze_overlap_trace(case, trace, reports,
                                 _model_layers(case.model))


def certify_trainer(world: int = 3, steps: int = 2) -> list[Finding]:
    """One end-to-end cell through the real trainer and DDP barrier.

    Exercises the module grad-ready hooks, the trainer's completed
    ready order, :meth:`synchronize_overlapped` and
    :meth:`mark_consumed` — the integration the engine-driven battery
    cells stub out.
    """
    from repro.training.tasks import make_task
    from repro.training.trainer import DataParallelTrainer

    case = OverlapCase("sra", world, "trainer-mlp")
    config = _cell_config("sra")
    task = make_task("mlp", batch_size=8)
    trainer = DataParallelTrainer(task, world_size=world, config=config,
                                  seed=0, overlap=True)
    names = [name for name, _ in trainer.replicas[0].named_parameters()]
    reports: list[OverlapReport] = []
    step_ids: list[int] = []
    with capture() as trace:
        for _ in range(steps):
            trainer.train_step()
            report = trainer.ddp.last_report
            assert isinstance(report, OverlapReport)
            reports.append(report)
            step_ids.append(trainer._step_index)
    findings: list[Finding] = []
    findings.extend(check_use_before_reduce(
        case, trace, reports, names, step_ids=step_ids))
    layers = [(name, param.numel) for name, param
              in trainer.replicas[0].named_parameters()]
    findings.extend(check_fusion_conservation(case, reports, layers))
    findings.extend(check_priority(case, reports))
    findings.extend(check_state_attribution(case, trace, reports))
    return sort_findings(findings)


# -- OVL006: static AST pass over the gradient-consumer path ------------------

#: calling any of these inside a function counts as running (or being)
#: the completion barrier before the .grad reads
_BARRIER_CALLS = {"synchronize", "synchronize_overlapped", "reduce",
                  "reduce_overlapped", "mark_consumed"}

#: functions whose .grad access is definitionally safe: gradient
#: producers and the reset path, never post-reduction consumers
_EXEMPT_FUNCTIONS = {"zero_grad", "backward", "accumulate_grad"}


def consumer_default_roots() -> tuple[str, ...]:
    """The modules OVL006 audits: every .grad consumer downstream of the
    barrier — the trainer loop, the DDP wrapper and the optimizers."""
    import repro.core.ddp
    import repro.nn.optim
    import repro.training.trainer

    return (os.path.abspath(repro.training.trainer.__file__),
            os.path.abspath(repro.core.ddp.__file__),
            os.path.abspath(repro.nn.optim.__file__))


def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Nodes in ``func``'s body, excluding nested function defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_bare_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_grad_consumer(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in func.decorator_list:
        name = deco.id if isinstance(deco, ast.Name) else (
            deco.attr if isinstance(deco, ast.Attribute) else "")
        if name == "grad_consumer":
            return True
    return False


def lint_grad_consumer_source(source: str, path: str) -> list[Finding]:
    """OVL006 over one file's source text."""
    findings: list[Finding] = []
    lines = source.splitlines()
    tree = ast.parse(source, filename=path)

    def snippet(lineno: int) -> str:
        return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in _EXEMPT_FUNCTIONS or _is_grad_consumer(node):
            continue
        grad_reads = [
            inner for inner in _own_nodes(node)
            if isinstance(inner, ast.Attribute) and inner.attr == "grad"
            and isinstance(inner.ctx, ast.Load)
        ]
        if not grad_reads:
            continue
        calls = {_call_bare_name(inner) for inner in _own_nodes(node)
                 if isinstance(inner, ast.Call)}
        if calls & _BARRIER_CALLS:
            continue
        first = min(grad_reads, key=lambda n: (n.lineno, n.col_offset))
        findings.append(Finding(
            rule="OVL006", path=path, line=first.lineno,
            col=first.col_offset,
            message=f"function {node.name!r} reads .grad without a "
                    f"completion-barrier call "
                    f"({'/'.join(sorted(_BARRIER_CALLS))}) and without "
                    f"@grad_consumer — in overlapped mode it may observe "
                    f"an unreduced gradient",
            source="overlap", snippet=snippet(first.lineno)))
    return findings


def lint_grad_consumers(roots: Sequence[str] | None = None) -> list[Finding]:
    """OVL006 over the consumer-path modules (or explicit files/dirs),
    occurrence-numbered for stable baseline fingerprints."""
    from .rules import iter_python_files

    roots = tuple(roots) if roots is not None else consumer_default_roots()
    files: list[str] = []
    for root in roots:
        if os.path.isdir(root):
            files.extend(iter_python_files((root,)))
        else:
            files.append(root)
    findings: list[Finding] = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        rel = os.path.relpath(path)
        findings.extend(lint_grad_consumer_source(source, rel))
    findings = sort_findings(findings)
    seen: dict[tuple[str, str, str], int] = {}
    numbered: list[Finding] = []
    for finding in findings:
        ident = (finding.rule, finding.path, finding.snippet)
        numbered.append(Finding(
            rule=finding.rule, path=finding.path, line=finding.line,
            col=finding.col, message=finding.message, source=finding.source,
            snippet=finding.snippet, occurrence=seen.get(ident, 0)))
        seen[ident] = seen.get(ident, 0) + 1
    return numbered


# -- the full battery ---------------------------------------------------------

def verify_overlap(worlds: tuple[int, ...] = (2, 3, 4),
                   with_consumer_lint: bool = True) -> list[Finding]:
    """Certify every (scheme x world x model) cell; [] means clean."""
    findings: list[Finding] = []
    for case in overlap_cases(worlds):
        findings.extend(certify_case(case))
    findings.extend(certify_trainer())
    if with_consumer_lint:
        findings.extend(lint_grad_consumers())
    return sort_findings(findings)

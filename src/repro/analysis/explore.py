"""Small-world interleaving explorer for abstracted collective schedules.

The data-path collectives execute in-process and therefore in one fixed
order, but the schedules they emit will eventually run on real
transports where rank interleaving is up to the scheduler.  This module
abstracts a captured :class:`~repro.collectives.trace.ScheduleTrace`
into per-rank **programs** of eager (buffered, non-blocking) sends and
blocking receives, then model-checks the abstraction:

* :func:`greedy_run` — the maximal-progress execution.  Eager-send /
  blocking-recv message passing is *monotone* (firing a transition
  never disables another: sends only add messages, and two receives
  can never compete for one message because a match key names its
  destination rank), so the greedy run either completes — proving every
  fair execution completes — or gets stuck on the unique blocked set,
  from which the caller builds a wait-for graph.
* :func:`explore` — a DPOR-style depth-first search over rank
  interleavings with **sleep-set pruning**: transitions on different
  ranks and different match keys commute, so each Mazurkiewicz trace
  (equivalence class of interleavings) is explored once instead of
  once per permutation.  Certifies that every interleaving terminates
  and that all of them reach the same conserved message residue.
* :func:`fair_schedule` — a round-robin scheduler that measures, for
  every blocked receive, how many full scheduler rounds pass before its
  matching send arrives.  The liveness certifier's bounded-wait rule
  (DLV005) asserts this stays under
  ``max(16, 4 * world, 2 * longest_program + world)`` — see
  :meth:`FairRunResult.bound`.

The findings layer over these primitives lives in
:mod:`repro.analysis.liveness`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.collectives.trace import ScheduleTrace, TraceEvent

__all__ = [
    "Op", "GreedyResult", "ExploreResult", "FairRunResult",
    "build_programs", "phase_segments", "greedy_run", "explore",
    "fair_schedule", "interleaving_bound",
]

#: a match key: (src, dst, step, nbytes, tag)
Key = tuple


@dataclass(frozen=True)
class Op:
    """One abstracted schedule operation owned by a single rank.

    A ``send`` is eager: it deposits its message and never blocks.  A
    ``recv`` blocks until a message with its exact match key is
    pending.  ``key`` is the :meth:`TraceEvent.match_key` tuple
    ``(src, dst, step, nbytes, tag)``.
    """

    kind: str
    key: Key

    @property
    def src(self) -> int:
        return int(self.key[0])

    @property
    def dst(self) -> int:
        return int(self.key[1])

    @property
    def tag(self) -> str:
        return str(self.key[4])

    def describe(self) -> str:
        src, dst, step, nbytes, tag = self.key
        return (f"{self.kind} {src}->{dst} step {step} "
                f"(tag {tag!r}, {nbytes}B)")


def build_programs(events: Sequence[TraceEvent]
                   ) -> dict[int, tuple[Op, ...]]:
    """Per-rank programs, in emission order, from a trace segment.

    A send belongs to its source rank, a recv to its destination; the
    order events were emitted is the program order of each rank (the
    data path executes each rank's operations in exactly that order).
    """
    programs: dict[int, list[Op]] = {}
    for event in events:
        owner = event.src if event.kind == "send" else event.dst
        programs.setdefault(owner, []).append(Op(event.kind,
                                                 event.match_key()))
    return {rank: tuple(ops) for rank, ops in programs.items()}


def phase_segments(trace: ScheduleTrace
                   ) -> list[tuple[str, list[TraceEvent]]]:
    """Split a trace into barrier-separated segments of events.

    Only the *outermost* :func:`~repro.collectives.trace.phase_scope`
    spans count (an inner collective may label its own sub-phases);
    events not covered by any span become anonymous segments so nothing
    is dropped.  With no phase marks the whole trace is one segment.
    """
    spans = sorted(trace.phase_spans, key=lambda s: (s[1], -(s[2] - s[1])))
    top: list[tuple[str, int, int]] = []
    for label, start, stop in spans:
        if any(t_start <= start and stop <= t_stop
               for _, t_start, t_stop in top):
            continue  # nested inside an already-kept span
        top.append((label, start, stop))
    segments: list[tuple[str, list[TraceEvent]]] = []
    cursor = 0
    for label, start, stop in top:
        if cursor < start:
            segments.append((f"events[{cursor}:{start}]",
                             trace.events[cursor:start]))
        segments.append((label, trace.events[start:stop]))
        cursor = max(cursor, stop)
    if cursor < len(trace.events):
        segments.append((f"events[{cursor}:{len(trace.events)}]",
                         trace.events[cursor:]))
    return [(label, events) for label, events in segments if events]


# -- maximal-progress execution ----------------------------------------------

@dataclass
class GreedyResult:
    """Outcome of the maximal-progress run over one segment."""

    completed: bool
    #: rank -> the blocking recv it is stuck on (only when not completed)
    blocked: dict[int, Op] = field(default_factory=dict)
    #: remaining (unexecuted) ops per rank at the fixpoint
    remaining: dict[int, tuple[Op, ...]] = field(default_factory=dict)
    #: messages deposited but never consumed (orphan sends)
    residue: Counter = field(default_factory=Counter)


def greedy_run(programs: Mapping[int, Sequence[Op]]) -> GreedyResult:
    """Run every rank as far as it can go; the fixpoint is unique.

    Sends are executed eagerly, receives as soon as their key is
    pending.  Because transitions never disable each other, the blocked
    set at the fixpoint does not depend on the visit order.
    """
    pcs = {rank: 0 for rank in programs}
    mailbox: Counter = Counter()
    progressed = True
    while progressed:
        progressed = False
        for rank in sorted(programs):
            ops = programs[rank]
            while pcs[rank] < len(ops):
                op = ops[pcs[rank]]
                if op.kind == "send":
                    mailbox[op.key] += 1
                elif mailbox[op.key] > 0:
                    mailbox[op.key] -= 1
                else:
                    break
                pcs[rank] += 1
                progressed = True
    blocked = {rank: programs[rank][pcs[rank]]
               for rank in programs if pcs[rank] < len(programs[rank])}
    remaining = {rank: tuple(programs[rank][pcs[rank]:])
                 for rank in programs if pcs[rank] < len(programs[rank])}
    return GreedyResult(completed=not blocked, blocked=blocked,
                        remaining=remaining,
                        residue=+mailbox)


# -- DPOR exploration ---------------------------------------------------------

@dataclass
class ExploreResult:
    """Outcome of the sleep-set DFS over one segment."""

    interleavings: int          # complete executions reached (post-pruning)
    transitions: int            # transitions fired during the search
    sleep_pruned: int           # subtrees cut by sleep sets
    deadlocks: list[dict[int, Op]]   # distinct blocked sets reached
    residues: list[tuple]       # distinct final message residues
    budget_exhausted: bool

    @property
    def deadlock_free(self) -> bool:
        return not self.deadlocks and not self.budget_exhausted

    @property
    def conserved(self) -> bool:
        """All explored executions end with one and the same residue."""
        return len(self.residues) <= 1 and not self.budget_exhausted


def _independent(op_a: Op, rank_a: int, op_b: Op, rank_b: int) -> bool:
    """Whether two co-enabled transitions commute.

    Conservative: operations of one rank are program-ordered, and two
    operations on the same match key race for the same mailbox slot.
    Everything else touches disjoint state.
    """
    return rank_a != rank_b and op_a.key != op_b.key


def explore(programs: Mapping[int, Sequence[Op]],
            budget: int = 250_000) -> ExploreResult:
    """Sleep-set DFS over all rank interleavings of ``programs``.

    Explores one representative per Mazurkiewicz trace: after a branch
    ``t`` is fully explored, ``t`` enters the *sleep set* of its sibling
    subtrees and is only woken by a dependent transition, so orderings
    that merely commute independent operations are never re-visited.
    ``budget`` caps fired transitions; exhausting it is reported (and
    treated as a certification failure by the caller), never silent.
    """
    ranks = sorted(programs)
    progs = {rank: tuple(programs[rank]) for rank in ranks}
    result = ExploreResult(interleavings=0, transitions=0, sleep_pruned=0,
                           deadlocks=[], residues=[], budget_exhausted=False)
    seen_deadlocks: set = set()

    def enabled(pcs: tuple, mailbox: dict) -> list[tuple[int, Op]]:
        out = []
        for i, rank in enumerate(ranks):
            if pcs[i] >= len(progs[rank]):
                continue
            op = progs[rank][pcs[i]]
            if op.kind == "send" or mailbox.get(op.key, 0) > 0:
                out.append((i, op))
        return out

    def dfs(pcs: tuple, mailbox: dict, sleep: frozenset) -> None:
        if result.budget_exhausted:
            return
        moves = enabled(pcs, mailbox)
        if not moves:
            if all(pcs[i] >= len(progs[rank])
                   for i, rank in enumerate(ranks)):
                result.interleavings += 1
                residue = tuple(sorted(mailbox.items()))
                if residue not in result.residues:
                    result.residues.append(residue)
            else:
                blocked = {ranks[i]: progs[ranks[i]][pcs[i]]
                           for i in range(len(ranks))
                           if pcs[i] < len(progs[ranks[i]])}
                fingerprint = tuple(sorted(
                    (rank, op.key) for rank, op in blocked.items()))
                if fingerprint not in seen_deadlocks:
                    seen_deadlocks.add(fingerprint)
                    result.deadlocks.append(blocked)
            return
        branch = [(i, op) for i, op in moves if (i, pcs[i]) not in sleep]
        if not branch:
            result.sleep_pruned += 1
            return
        done: set[tuple[int, int]] = set()
        for i, op in branch:
            if result.transitions >= budget:
                result.budget_exhausted = True
                return
            result.transitions += 1
            next_pcs = list(pcs)
            next_pcs[i] += 1
            next_mailbox = dict(mailbox)
            if op.kind == "send":
                next_mailbox[op.key] = next_mailbox.get(op.key, 0) + 1
            else:
                count = next_mailbox[op.key] - 1
                if count:
                    next_mailbox[op.key] = count
                else:
                    del next_mailbox[op.key]
            # explored siblings go to sleep in this subtree; a dependent
            # transition wakes them (drops them from the sleep set)
            next_sleep = frozenset(
                (j, pc) for j, pc in sleep | done
                if _independent(progs[ranks[j]][pc], ranks[j], op, ranks[i]))
            dfs(tuple(next_pcs), next_mailbox, next_sleep)
            done.add((i, pcs[i]))
        return

    dfs(tuple(0 for _ in ranks), {}, frozenset())
    return result


# -- fair (round-robin) progress measurement ----------------------------------

@dataclass
class FairRunResult:
    """Outcome of the round-robin run over one segment."""

    completed: bool
    max_wait: int                    # worst blocked-recv wait, in rounds
    rounds: int                      # scheduler rounds to completion
    stuck: tuple[int, ...] = ()      # ranks blocked forever
    longest: int = 0                 # longest per-rank program, in ops

    def bound(self, world: int) -> int:
        """The DLV005 wait budget for a ``world``-rank schedule.

        A blocked recv legitimately waits while its sender works
        through the sends program order places ahead of it — a wait
        proportional to the longest per-rank program.  What the rule
        must catch is a wait *beyond* what any one rank's program can
        explain: serialization chains across several ranks (convoys),
        which grow with the world size instead.  Hence
        ``max(16, 4 * world, 2 * longest + world)``; the battery's
        worst observed wait/longest ratio is 1.5.
        """
        return max(16, 4 * world, 2 * self.longest + world)


def fair_schedule(programs: Mapping[int, Sequence[Op]]) -> FairRunResult:
    """Round-robin execution: one operation per unblocked rank per round.

    Measures how long any blocked receive waits for its matching send
    under a maximally fair scheduler — the bounded-wait certificate
    (every blocked recv's send is *reachable*, and reached within the
    returned ``max_wait`` rounds).
    """
    ranks = sorted(programs)
    pcs = {rank: 0 for rank in ranks}
    waits = {rank: 0 for rank in ranks}
    mailbox: Counter = Counter()
    longest = max((len(programs[rank]) for rank in ranks), default=0)
    max_wait = 0
    rounds = 0
    while True:
        rounds += 1
        progressed = False
        alldone = True
        for rank in ranks:
            ops = programs[rank]
            if pcs[rank] >= len(ops):
                continue
            alldone = False
            op = ops[pcs[rank]]
            if op.kind == "send":
                mailbox[op.key] += 1
            elif mailbox[op.key] > 0:
                mailbox[op.key] -= 1
            else:
                waits[rank] += 1
                max_wait = max(max_wait, waits[rank])
                continue
            pcs[rank] += 1
            waits[rank] = 0
            progressed = True
        if alldone:
            return FairRunResult(completed=True, max_wait=max_wait,
                                 rounds=rounds, longest=longest)
        if not progressed:
            stuck = tuple(rank for rank in ranks
                          if pcs[rank] < len(programs[rank]))
            return FairRunResult(completed=False, max_wait=max_wait,
                                 rounds=rounds, stuck=stuck,
                                 longest=longest)


def interleaving_bound(programs: Mapping[int, Sequence[Op]]) -> int:
    """Rank interleavings of the programs, ignoring all blocking.

    The multinomial ``total! / prod(len_r!)`` counts every way to
    interleave the per-rank sequences — the space a naive scheduler
    enumeration would face, against which the DPOR exploration count is
    compared.
    """
    total = sum(len(ops) for ops in programs.values())
    bound = math.factorial(total)
    for ops in programs.values():
        bound //= math.factorial(len(ops))
    return bound

"""Abstract execution of compression operators and engine wiring.

The contract checker (:mod:`repro.analysis.contracts`) never inspects
compressor source code; it *runs* each registered operator on symbolic
probe tensors — deterministic seeded arrays whose values are irrelevant
to the checked properties — and compares the observed behaviour with
the operator's declared :class:`~repro.compression.CompressorContract`.
This module is the execution layer: it produces plain observation
records, and the rules in ``contracts.py`` turn them into findings.

Three kinds of replay:

* **roundtrip probes** — compress/decompress over a shape battery that
  covers bucket-boundary padding, ``wire_dtype_bits`` widening, the
  PowerSGD rank clamp, and 1-D fallbacks; records output shape/dtype
  and the three byte counts that must agree (``spec.wire_bytes``,
  ``Compressed.nbytes``, the serialized payload size).
* **behaviour probes** — repeated compression under identical inputs
  and identically-seeded generators (statefulness), and under different
  generator seeds on fresh instances (rng sensitivity).
* **engine replays** — :meth:`CommunicationEngine.plan` +
  ``_compressor_for`` wiring over a synthetic model, and the adaptive
  respec-while-training sequence that must carry error-feedback
  residuals across same-method spec changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.compression import (
    Compressor,
    CompressionSpec,
    DGCCompressor,
    FakeCompressor,
    FP16Compressor,
    IdentityCompressor,
    NUQSGDCompressor,
    OneBitCompressor,
    PowerSGDCompressor,
    QSGDCompressor,
    TopKCompressor,
)
from repro.compression.topk import ErrorFeedback
from repro.core import CGXConfig, CommunicationEngine, Package
from repro.core.filters import LayerInfo
from repro.core.serialization import measured_wire_bytes, serialize_payload

__all__ = [
    "PROBE_SHAPES",
    "RoundtripObservation",
    "BehaviorObservation",
    "default_registry",
    "probe_specs",
    "execute_roundtrips",
    "execute_behavior",
    "replay_engine_wiring",
    "replay_adaptive_respec",
    "SYNTHETIC_LAYERS",
]

#: shape battery: odd 1-D sizes (bucket tail padding), exact bucket
#: multiples, 2-D matrices (PowerSGD), tiny tensors (k/rank clamping),
#: and a (1, n) row that must take the 1-D dense fallback
PROBE_SHAPES: tuple[tuple[int, ...], ...] = (
    (97,), (128,), (4, 33), (16, 16), (2, 3), (1, 5), (64, 32),
)


def default_registry() -> dict[str, type[Compressor]]:
    """Method -> operator class, mirroring :func:`make_compressor`."""
    return {
        "none": IdentityCompressor,
        "fp16": FP16Compressor,
        "qsgd": QSGDCompressor,
        "nuq": NUQSGDCompressor,
        "topk": TopKCompressor,
        "powersgd": PowerSGDCompressor,
        "fake": FakeCompressor,
        "onebit": OneBitCompressor,
        "dgc": DGCCompressor,
    }


def probe_specs(method: str) -> list[CompressionSpec]:
    """Representative specs per method, including the corner cases.

    qsgd gets the l2-scaling variant and the GRACE ``wire_dtype_bits=8``
    wire format (4-bit codes travelling one byte each); powersgd gets a
    rank far above any probe matrix dimension so the clamp is exercised.
    """
    table: dict[str, list[CompressionSpec]] = {
        "none": [CompressionSpec("none")],
        "fp16": [CompressionSpec("fp16")],
        "qsgd": [
            CompressionSpec("qsgd", bits=4, bucket_size=32),
            CompressionSpec("qsgd", bits=3, bucket_size=7, scaling="l2"),
            CompressionSpec("qsgd", bits=4, bucket_size=16,
                            wire_dtype_bits=8),
        ],
        "nuq": [CompressionSpec("nuq", bits=4, bucket_size=32)],
        "topk": [CompressionSpec("topk", density=0.1)],
        "powersgd": [
            CompressionSpec("powersgd", rank=4),
            CompressionSpec("powersgd", rank=100),
        ],
        "fake": [CompressionSpec("fake", ratio=8.0)],
        "onebit": [CompressionSpec("onebit", bucket_size=32)],
        "dgc": [CompressionSpec("dgc", density=0.05)],
    }
    return table.get(method, [])


@dataclass(frozen=True)
class RoundtripObservation:
    """What one compress/decompress probe actually did."""

    spec: CompressionSpec
    shape: tuple[int, ...]
    out_shape: tuple[int, ...]
    out_numel: int
    out_dtype: str
    claimed_bytes: int    # spec.wire_bytes(numel, shape)
    declared_bytes: int   # Compressed.nbytes
    measured_bytes: int   # len(serialize_payload(...))
    exact: bool           # roundtrip was bit-identical


@dataclass(frozen=True)
class BehaviorObservation:
    """State/rng behaviour of one operator under controlled probes."""

    spec: CompressionSpec
    repeat_differs: bool  # same instance, same input, same-seed rng
    rng_sensitive: bool   # fresh instances, different rng seeds


def _probe_array(shape: tuple[int, ...], seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def execute_roundtrips(cls: type[Compressor], spec: CompressionSpec,
                       shapes: tuple[tuple[int, ...], ...] = PROBE_SHAPES,
                       seed: int = 0) -> list[RoundtripObservation]:
    """Run the shape battery through one operator class."""
    observations = []
    for shape in shapes:
        compressor = cls(spec)
        array = _probe_array(shape, seed)
        compressed = compressor.compress(array, np.random.default_rng(seed),
                                         key="probe")
        restored = compressor.decompress(compressed)
        observations.append(RoundtripObservation(
            spec=spec,
            shape=shape,
            out_shape=tuple(np.shape(restored)),
            out_numel=int(np.size(restored)),
            out_dtype=str(np.asarray(restored).dtype),
            claimed_bytes=spec.wire_bytes(array.size, shape),
            declared_bytes=compressed.nbytes,
            measured_bytes=measured_wire_bytes(compressed),
            exact=bool(np.array_equal(np.asarray(restored), array)),
        ))
    return observations


def execute_behavior(cls: type[Compressor], spec: CompressionSpec,
                     shape: tuple[int, ...] = (64, 32),
                     seed: int = 0) -> BehaviorObservation:
    """Probe statefulness and rng sensitivity of one operator class.

    Statefulness: one instance compresses the same tensor twice, each
    call fed a *fresh* generator with the same seed — any payload
    difference can only come from per-key state.  RNG sensitivity: two
    fresh instances compress the same tensor under different seeds — a
    payload difference means the operator draws from the generator.
    """
    array = _probe_array(shape, seed)

    instance = cls(spec)
    first = serialize_payload(
        instance.compress(array, np.random.default_rng(seed), key="probe"))
    second = serialize_payload(
        instance.compress(array, np.random.default_rng(seed), key="probe"))

    seed_a = serialize_payload(
        cls(spec).compress(array, np.random.default_rng(seed), key="probe"))
    seed_b = serialize_payload(
        cls(spec).compress(array, np.random.default_rng(seed + 1),
                           key="probe"))

    return BehaviorObservation(
        spec=spec,
        repeat_differs=first != second,
        rng_sensitive=seed_a != seed_b,
    )


#: synthetic model for engine replays: a compressed weight, a filtered
#: bias, a norm layer, and a tensor under the min_compress_numel floor
SYNTHETIC_LAYERS = (
    LayerInfo("fc.weight", 64 * 48, (64, 48)),
    LayerInfo("fc.bias", 64, (64,)),
    LayerInfo("ln.weight", 48, (48,)),
    LayerInfo("head.weight", 100, (10, 10)),
)


def replay_engine_wiring(
    config: CGXConfig,
    engine_cls: type[CommunicationEngine] = CommunicationEngine,
    mode: str = "cgx",
) -> list[tuple[Package, Compressor]]:
    """Plan packages for the synthetic model and build each compressor.

    Returns ``(package, compressor)`` pairs — exactly what the engine
    would use on the first step under ``config`` — so the contract rules
    can check the wiring (e.g. an EF-requiring method deployed without
    :class:`ErrorFeedback`) without running a reduction.
    """
    engine = engine_cls(config)
    packages = engine.plan(list(SYNTHETIC_LAYERS), mode=mode)
    return [(package, engine._compressor_for(package)) for package in packages]


def replay_adaptive_respec(
    engine_cls: type[CommunicationEngine] = CommunicationEngine,
    seed: int = 0,
) -> dict:
    """Replay the adaptive respec-while-training sequence.

    Step 1 reduces with an error-feedback sparsifier, leaving a nonzero
    residual in the compressor cache.  Then — as
    :meth:`AdaptiveController.reassign` does — the layer's spec changes
    *parameters only* (same method) via ``per_layer``, and step 2
    reduces again.  Returns what happened to the cached compressor:

    * ``residual_norm_before`` — residual magnitude after step 1;
    * ``residual_norm_after`` — magnitude under the new spec *before*
      step 2's compression folds it in (captured by inspecting the
      rebuilt compressor's residual store);
    * ``carried`` — the new compressor kept the old residual state.
    """
    spec = CompressionSpec("topk", density=0.1, error_feedback=True)
    config = CGXConfig(compression=spec)
    engine = engine_cls(config)
    rng = np.random.default_rng(seed)
    world = 2
    grads = [
        {"fc.weight": rng.standard_normal((64, 48)).astype(np.float32)}
        for _ in range(world)
    ]
    engine.reduce(grads, rng)
    before = engine._compressors.get("fc.weight")
    norm_before = (before.total_residual_norm()
                   if isinstance(before, ErrorFeedback) else 0.0)

    # the adaptive controller writes a same-method override with new
    # parameters (cf. AdaptiveController.reassign / spec.with_bits)
    config.per_layer["fc.weight"] = replace(spec, density=0.3)
    package_after = [
        p for p in engine.plan(list(SYNTHETIC_LAYERS))
        if p.name == "fc.weight"
    ][0]
    after = engine._compressor_for(package_after)
    norm_after = (after.total_residual_norm()
                  if isinstance(after, ErrorFeedback) else 0.0)
    return {
        "rebuilt": after is not before,
        "carried": norm_after > 0 and abs(norm_after - norm_before) < 1e-6,
        "residual_norm_before": norm_before,
        "residual_norm_after": norm_after,
    }

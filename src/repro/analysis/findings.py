"""Finding model shared by every analysis pass.

A :class:`Finding` is one diagnostic: a rule id, a location (file:line
for lint findings; a ``<schedule:scheme@world=N>``, ``<contract:method>``,
``<race:scheme@world=N>``, ``<plan:solver>``, ``<shape:model>``,
``<liveness:scheme@world=N/campaign>``, ``<overlap:scheme@world=N/model>``,
``<sched:policy-routing@n=N/cell>`` or ``<elastic:campaign@world=N>``
pseudo-path for the semantic
passes) and a message.  Findings carry a stable *fingerprint* so a baseline file can
grandfather existing ones while still failing the build on anything new
(see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "JSON_REPORT_SCHEMA", "sort_findings"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic from the linter or the schedule verifier."""

    rule: str            # e.g. "REP001", "SCH005", "CON003", "BWP001"
    path: str            # file path, or a <pass:...> pseudo-path
    line: int            # 1-based; 0 for non-lint findings
    col: int             # 0-based; 0 for non-lint findings
    message: str
    source: str = "lint"     # lint | schedule | contract | race | plan |
                             # shape | health | liveness | overlap | sched |
                             # elastic
    snippet: str = ""        # stripped source line (lint findings)
    scheme: str = ""         # reduction scheme, compression method, or solver
    world: int = 0           # world size (0 for lint/contract/plan findings)
    occurrence: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        """Location-tolerant identity: survives unrelated line shifts.

        Lint findings — and any finding carrying a source snippet, such
        as the liveness pass's DLV006 or the overlap pass's OVL006 file
        diagnostics — hash (rule, path, stripped line text, occurrence
        index among identical lines); semantic findings (schedule,
        contract, race, liveness/overlap battery) hash (rule, scheme,
        world, message).
        """
        if self.source == "lint" or self.snippet:
            raw = f"{self.rule}|{self.path}|{self.snippet}|{self.occurrence}"
        elif self.source in ("liveness", "overlap", "sched", "elastic"):
            # the pseudo-path carries the campaign/model/fleet-cell
            # axis, which scheme/world alone cannot distinguish
            raw = f"{self.rule}|{self.path}|{self.message}"
        else:
            raw = f"{self.rule}|{self.scheme}|{self.world}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source": self.source,
            "snippet": self.snippet,
            "scheme": self.scheme,
            "world": self.world,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        if self.source == "schedule":
            return (f"schedule[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "contract":
            return f"contract[{self.scheme}]: {self.rule} {self.message}"
        if self.source == "race":
            return (f"race[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "plan":
            return f"plan[{self.scheme}]: {self.rule} {self.message}"
        if self.source == "shape":
            return (f"shape[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "health":
            return (f"health[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "liveness" and not self.snippet:
            return (f"liveness[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "overlap" and not self.snippet:
            return (f"overlap[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "sched" and not self.snippet:
            return (f"sched[{self.scheme}@jobs={self.world}]: "
                    f"{self.rule} {self.message}")
        if self.source == "elastic":
            return (f"elastic[{self.scheme}@world={self.world}]: "
                    f"{self.rule} {self.message}")
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.source, f.path, f.line, f.col,
                                           f.rule, f.message))


#: Minimal JSON-schema-style description of ``--format json`` output,
#: validated by tests without requiring the ``jsonschema`` package.
JSON_REPORT_SCHEMA = {
    "type": "object",
    "required": ["version", "findings", "summary"],
    "properties": {
        "version": {"type": "integer"},
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rule", "path", "line", "col", "message",
                             "source", "fingerprint"],
                "properties": {
                    "rule": {"type": "string"},
                    "path": {"type": "string"},
                    "line": {"type": "integer"},
                    "col": {"type": "integer"},
                    "message": {"type": "string"},
                    "source": {"type": "string"},
                    "snippet": {"type": "string"},
                    "scheme": {"type": "string"},
                    "world": {"type": "integer"},
                    "fingerprint": {"type": "string"},
                },
            },
        },
        "summary": {
            "type": "object",
            "required": ["total", "new", "baselined", "by_rule"],
            "properties": {
                "total": {"type": "integer"},
                "new": {"type": "integer"},
                "baselined": {"type": "integer"},
                "by_rule": {"type": "object"},
            },
        },
    },
}

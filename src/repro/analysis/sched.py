"""Fleet-schedule certifier (Pillar 10, rules SCD001..SCD007).

The fleet scheduler (:mod:`repro.sched`) runs concurrent training jobs
on one shared link-resource pool.  Its promises — no GPU double-booking,
starvation-free FIFO admission, leak-free per-job accounting, honest
throttles, contention that can only *delay* — are exactly the claims a
multi-tenant middleware must keep, so this pass certifies them over the
seeded battery in :mod:`repro.sched.battery` (~30 fleets, 4–200 jobs,
every placement policy, both routing policies) instead of trusting the
scheduler's own bookkeeping.

``SCD001``  placement unsound: an admitted job's GPUs are missing,
            duplicated, out of range, or overlap a concurrent job's
            span — replayed from the canonical fleet log, not from the
            placer's data structures.
``SCD002``  admission liveness/FIFO broken: an arrived job never
            admits or never finishes, admissions leave arrival order,
            queue-wait accounting disagrees with the event-log deltas,
            or a job's step chain is torn (gaps, overlaps, a finish
            time that is not the last step's end).
``SCD003``  cross-job conservation broken, checked in **exact
            arithmetic**: per-job busy seconds summed as
            :class:`fractions.Fraction` must equal pool totals, the
            float counters must bit-match a replay of the audit
            ledger, per-job wire bytes (integers) must agree between
            the jobs' own counters and the network's tag counters, no
            busy second may go untagged, and ``clear_trace(job)``
            must provably not perturb any other job's counters.
``SCD004``  throttle semantics broken: a declared bandwidth share does
            not scale effective bandwidth bit-exactly (battery shares
            are dyadic, so the scaling is exact in floats), a
            throttled transfer beats the unthrottled one, or a
            departed job's throttle was not released.
``SCD005``  isolation bounds violated: some fleet step ends *earlier*
            than its isolated replay (contention must only delay — a
            bit-wise lower bound), a job whose links no concurrent
            competitor touched is not **bit-identical** to its
            isolated replay, or a contended job's total delay exceeds
            the time its shared-link competitors were concurrently
            resident (the full-serialization ceiling).
``SCD006``  fairness-metric validity: Jain fairness outside ``(0, 1]``,
            degenerate inputs (empty/single/all-zero) raising instead
            of degrading, or a nondeterministic isolated-baseline
            replay.
``SCD007``  job-tag lint over ``src/repro/sched/`` and
            ``cluster/network.py``: a ``transfer``/``run_kernel``/
            ``time_allreduce``-class call without a job tag silently
            corrupts per-job accounting (the leakage class SCD003
            would only catch at run time).
"""

from __future__ import annotations

import ast
import json
import os
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from .findings import Finding, sort_findings

if TYPE_CHECKING:
    from repro.cluster import Network
    from repro.sched import FleetResult
    from repro.sched.battery import FleetCase

__all__ = ["SCD_RULES", "certify_fleet", "verify_fleet_log",
           "lint_job_tagging", "tagging_default_roots", "verify_sched"]

SCD_RULES = {
    "SCD001": "placement unsound (missing/duplicate/overlapping GPUs)",
    "SCD002": "admission liveness, FIFO order, or step chain broken",
    "SCD003": "cross-job conservation broken (exact arithmetic)",
    "SCD004": "throttle does not scale bandwidth by the declared share",
    "SCD005": "isolation bounds violated vs the isolated replay",
    "SCD006": "fairness metric invalid or baseline replay nondeterministic",
    "SCD007": "untagged transfer/kernel call (job-tag plumbing gap)",
}

#: slack for the SCD005 full-serialization ceiling only; every equality
#: in this pass (SCD003 conservation, SCD004 scaling, SCD005 disjoint
#: isolation) is bit-exact with **zero** tolerance
_CEILING_SLACK = 1e-9


def _finding(rule: str, path: str, message: str, scheme: str = "",
             world: int = 0) -> Finding:
    return Finding(rule=rule, path=path, line=0, col=0, message=message,
                   source="sched", scheme=scheme, world=world)


# -- SCD001/SCD002: replay the canonical fleet log ----------------------------

def verify_fleet_log(payload: Mapping[str, Any], path: str) -> list[Finding]:
    """Placement soundness and admission liveness from the log alone.

    Works on any parsed :meth:`FleetResult.log_bytes` payload — including
    the tampered fixtures CI feeds it to prove the gate fails closed —
    so it trusts nothing but the event stream and the job table in the
    log header.
    """
    findings: list[Finding] = []
    fleet = payload.get("fleet", {})
    records = payload.get("records", [])
    scheme = f"{fleet.get('policy', '?')}-{fleet.get('routing', '?')}"
    n_gpus = int(fleet.get("n_gpus", 0))
    specs = {int(job["job_id"]): job for job in fleet.get("jobs", [])}
    world = len(specs)

    def emit(rule: str, message: str) -> None:
        findings.append(_finding(rule, path, message, scheme, world))

    arrived: list[int] = []
    admitted: list[int] = []
    finished: set[int] = set()
    admit_t: dict[int, float] = {}
    arrive_t: dict[int, float] = {}
    ranks_of: dict[int, list[int]] = {}
    holder: dict[int, int] = {}        # gpu -> job currently placed on it
    free_at: dict[int, float] = {}     # gpu -> last departure's end
    last_step: dict[int, tuple[int, float]] = {}   # job -> (step no, end)

    for record in records:
        event, job = record.get("event"), record.get("job")
        if job not in specs:
            emit("SCD001", f"event {event!r} names unknown job {job!r}")
            continue
        t = record.get("t", 0.0)
        if event == "arrive":
            arrived.append(job)
            arrive_t[job] = t
        elif event == "admit":
            ranks = list(record.get("ranks", []))
            admitted.append(job)
            admit_t[job] = t
            ranks_of[job] = ranks
            if len(set(ranks)) != len(ranks):
                emit("SCD001", f"job {job} admitted with duplicate GPUs "
                               f"{ranks}")
            if len(ranks) != int(specs[job]["world"]):
                emit("SCD001",
                     f"job {job} admitted on {len(ranks)} GPU(s) but its "
                     f"spec asks for {specs[job]['world']}")
            for gpu in ranks:
                if not 0 <= gpu < n_gpus:
                    emit("SCD001", f"job {job} admitted on GPU {gpu} "
                                   f"outside the fleet's 0..{n_gpus - 1}")
                elif gpu in holder:
                    emit("SCD001",
                         f"job {job} admitted on GPU {gpu} still held by "
                         f"running job {holder[gpu]} — double booking")
                elif free_at.get(gpu, 0.0) > t:
                    emit("SCD001",
                         f"job {job} admitted on GPU {gpu} at t={t!r} "
                         f"before its previous tenant departs at "
                         f"t={free_at[gpu]!r}")
                holder[gpu] = job
            if job in arrive_t and t < arrive_t[job]:
                emit("SCD002", f"job {job} admitted at t={t!r} before its "
                               f"arrival at t={arrive_t[job]!r}")
        elif event == "step":
            step, end = int(record.get("step", 0)), record.get("end", t)
            prev_no, prev_end = last_step.get(job, (0, admit_t.get(job)))
            if step != prev_no + 1:
                emit("SCD002", f"job {job} step chain torn: step {step} "
                               f"follows step {prev_no}")
            if prev_end is not None and t != prev_end:
                origin = "admission" if prev_no == 0 else f"step {prev_no}"
                emit("SCD002",
                     f"job {job} step {step} starts at t={t!r}, not at "
                     f"its {origin} end t={prev_end!r}")
            if end < t:
                emit("SCD002", f"job {job} step {step} ends at t={end!r} "
                               f"before it starts at t={t!r}")
            last_step[job] = (step, end)
        elif event == "finish":
            finished.add(job)
            steps_done, end = last_step.get(job, (0, None))
            if steps_done != int(specs[job]["steps"]):
                emit("SCD002", f"job {job} finished after {steps_done} "
                               f"step(s); its spec owes "
                               f"{specs[job]['steps']}")
            if end is not None and t != end:
                emit("SCD002", f"job {job} finish time t={t!r} is not its "
                               f"last step's end t={end!r}")
            for gpu in ranks_of.get(job, []):
                if holder.get(gpu) == job:
                    del holder[gpu]
                free_at[gpu] = t

    # liveness: every arrival admits and finishes (the battery's fleets
    # always drain; a starved job would be stuck in the queue forever)
    for job in sorted(specs):
        if job not in arrive_t:
            emit("SCD002", f"job {job} never arrives in the log")
        elif job not in admit_t:
            emit("SCD002", f"job {job} arrived at t={arrive_t[job]!r} but "
                           f"is never admitted — starvation")
        elif job not in finished:
            emit("SCD002", f"job {job} was admitted but never finishes")

    # head-of-line FIFO: admissions happen in arrival order
    expected = [job for job in arrived if job in admit_t]
    if admitted != expected:
        emit("SCD002", f"admission order {admitted} leaves the FIFO "
                       f"arrival order {expected}")
    return findings


def _certify_log(result: FleetResult, path: str) -> list[Finding]:
    """SCD001/SCD002 on the canonical log, plus the state cross-checks
    that need the live states (queue-wait accounting)."""
    payload = json.loads(result.log_bytes().decode("utf-8"))
    findings = verify_fleet_log(payload, path)
    scheme = f"{result.policy}-{result.routing}"
    arrive_t = {r["job"]: r["t"] for r in result.records
                if r["event"] == "arrive"}
    admit_t = {r["job"]: r["t"] for r in result.records
               if r["event"] == "admit"}
    for state in result.states:
        job = state.spec.job_id
        if job not in admit_t or state.queue_wait is None:
            continue
        logged = admit_t[job] - arrive_t[job]
        if state.queue_wait != logged:
            findings.append(_finding(
                "SCD002", path,
                f"job {job} accounts queue_wait={state.queue_wait!r} but "
                f"the event log says {logged!r}", scheme,
                len(result.states)))
    return findings


# -- SCD003: exact cross-job conservation -------------------------------------

def _certify_conservation(result: FleetResult, path: str) -> list[Finding]:
    findings: list[Finding] = []
    scheme = f"{result.policy}-{result.routing}"
    world = len(result.states)

    def emit(message: str) -> None:
        findings.append(_finding("SCD003", path, message, scheme, world))

    network = result.network
    pool = network.pool
    if not pool.audited:
        emit("cell ran without the conservation audit ledger — exact "
             "accounting cannot be certified (enable audit=True)")
        return findings

    # (a) tag leakage: in a fleet every occupation belongs to a job
    for name, seconds in sorted(pool.exact_untagged_seconds().items()):
        emit(f"resource {name}: {float(seconds)!r} busy second(s) carry "
             f"no job tag — per-job accounting silently loses them")

    # (b) ledger <-> live float counters, bit-for-bit: any mutation path
    # bypassing the ledger (or double-counting into it) shows up here
    for name, resource in sorted(pool.resources().items()):
        replay_total, replay_by_job = resource.replay_float_accumulation()
        if replay_total != resource.busy_time:
            emit(f"resource {name}: live busy_time "
                 f"{resource.busy_time!r} != ledger replay "
                 f"{replay_total!r} — a mutation bypassed the ledger")
        if replay_by_job != resource.busy_by_job:
            emit(f"resource {name}: live per-job seconds disagree with "
                 f"the ledger replay — per-job accounting leaked")
        # (c) exact conservation: per-job Fractions sum to the total
        by_job = resource.exact_busy_by_job()
        if sum(by_job.values(), Fraction(0)) != resource.exact_busy_seconds():
            emit(f"resource {name}: per-job exact seconds do not sum to "
                 f"the resource total (Fraction arithmetic)")

    # (d) wire bytes: the jobs' own counters (fed by the collectives'
    # ReduceStats) vs the network's per-tag integers — two independent
    # accounting paths that must agree exactly
    total_states = 0
    for state in result.states:
        tagged = network.transferred_bytes(state.spec.job_id)
        total_states += state.wire_bytes
        if state.wire_bytes != tagged:
            emit(f"job {state.spec.job_id}: job-side wire_bytes "
                 f"{state.wire_bytes} != network tag counter {tagged}")
    untagged_bytes = network.transferred_bytes(None)
    if untagged_bytes:
        emit(f"{untagged_bytes} byte(s) crossed links with no job tag")
    if network.total_transferred_bytes() != total_states:
        emit(f"fleet wire bytes do not conserve: jobs sum to "
             f"{total_states}, the network carried "
             f"{network.total_transferred_bytes()}")

    # (e) clear_trace(job) must not perturb any other job's counters
    if result.states:
        victim = result.states[0].spec.job_id
        before_busy = {name: dict(res.busy_by_job)
                       for name, res in pool.resources().items()}
        before_bytes = network.job_byte_tags()
        before_trace = {job: sum(1 for r in network.trace if r.job == job)
                        for job in {r.job for r in network.trace}}
        saved_trace = list(network.trace)
        network.clear_trace(victim)
        if any(r.job == victim for r in network.trace):
            emit(f"clear_trace({victim}) left the job's own records")
        survivors = {job: sum(1 for r in network.trace if r.job == job)
                     for job in {r.job for r in network.trace}}
        for job, count in sorted(before_trace.items(),
                                 key=lambda kv: (kv[0] is None, kv[0])):
            if job != victim and survivors.get(job, 0) != count:
                emit(f"clear_trace({victim}) dropped trace records of "
                     f"job {job}")
        after_busy = {name: dict(res.busy_by_job)
                      for name, res in pool.resources().items()}
        if after_busy != before_busy:
            emit(f"clear_trace({victim}) perturbed other jobs' busy-"
                 f"second counters")
        if network.job_byte_tags() != before_bytes:
            emit(f"clear_trace({victim}) perturbed the per-job byte "
                 f"counters")
        network.trace = saved_trace   # the check must not consume evidence
    return findings


# -- SCD004: throttle semantics -----------------------------------------------

def _certify_throttles(result: FleetResult, path: str,
                       network_cls: Callable[..., Network] | None = None
                       ) -> list[Finding]:
    from repro.cluster import Network as DefaultNetwork

    make_network = network_cls or DefaultNetwork
    findings: list[Finding] = []
    scheme = f"{result.policy}-{result.routing}"
    world = len(result.states)

    def emit(message: str) -> None:
        findings.append(_finding("SCD004", path, message, scheme, world))

    topology = result.topology
    backend = result.network.backend
    rates = sorted({s.spec.throttle for s in result.states} - {1.0},
                   reverse=True)
    pairs = [(0, 1)]
    if topology.n_gpus > 2:
        pairs.append((0, topology.n_gpus - 1))
    nbytes = 1 << 20
    scaled = nbytes * backend.copy_factor
    probe_job = max((s.spec.job_id for s in result.states), default=0) + 1

    for src, dst in pairs:
        route = topology.path(src, dst)
        base_end = None
        for rate in [1.0] + rates:
            probe = make_network(topology, backend)
            if rate < 1.0:   # shares live in (0, 1]
                probe.set_job_throttle(probe_job, rate)
            end = probe.transfer(src, dst, nbytes, 0.0, job=probe_job)
            # independent bit-exact replay of the transfer-time formula
            # from the topology's link table and the backend constants
            expected = 0.0 + backend.alpha
            for link in route:
                expected = expected + (
                    scaled / (link.bandwidth * rate) + link.latency)
            if end != expected:
                emit(f"transfer {src}->{dst} at share {rate}: end "
                     f"{end!r} != formula replay {expected!r} — the "
                     f"throttle does not scale bandwidth as declared")
            # dyadic shares divide exactly: service at share r must be
            # bit-equal to the unthrottled service divided by r
            for link in route:
                throttled = scaled / (link.bandwidth * rate)
                if throttled != (scaled / link.bandwidth) / rate:
                    emit(f"link {link.name}: share {rate} is not an "
                         f"exact bandwidth division (battery shares "
                         f"are dyadic; scaling must be bit-exact)")
            if base_end is None:
                base_end = end
            elif end < base_end:
                emit(f"transfer {src}->{dst} at share {rate} finishes at "
                     f"{end!r}, beating the unthrottled {base_end!r}")

    # release-at-departure: a drained fleet holds no throttles
    for state in result.states:
        if state.status == "done" and \
                result.network.job_throttle(state.spec.job_id) < 1.0:
            emit(f"job {state.spec.job_id} departed but its throttle "
                 f"was never released")
    return findings


# -- SCD005: isolation bounds -------------------------------------------------

def _certify_isolation(result: FleetResult, path: str) -> list[Finding]:
    findings: list[Finding] = []
    scheme = f"{result.policy}-{result.routing}"
    world = len(result.states)

    def emit(message: str) -> None:
        findings.append(_finding("SCD005", path, message, scheme, world))

    step_ends: dict[int, list[float]] = {}
    for record in result.records:
        if record["event"] == "step":
            step_ends.setdefault(record["job"], []).append(record["end"])

    spans: dict[int, tuple[float, float]] = {}
    links: dict[int, set[str]] = {}
    for state in result.states:
        job = state.spec.job_id
        if state.admit_time is not None and state.finish_time is not None:
            spans[job] = (state.admit_time, state.finish_time)
        links[job] = result.job_link_names(job)

    for state in result.states:
        job = state.spec.job_id
        if job not in spans or job not in result.runners:
            continue   # never admitted; SCD002 already reports it
        replay = result.isolated_replay(job)
        ends = step_ends.get(job, [])
        if len(replay) != len(ends):
            emit(f"job {job}: {len(ends)} logged step(s) vs "
                 f"{len(replay)} replayed — cannot compare isolation")
            continue
        # bit-wise lower bound: contention can only delay
        for index, (fleet_end, replay_end) in enumerate(zip(ends, replay)):
            if fleet_end < replay_end:
                emit(f"job {job} step {index + 1} ends at {fleet_end!r}, "
                     f"*earlier* than its isolated replay {replay_end!r} "
                     f"— contention accelerated it")
                break
        admit, finish = spans[job]
        competitors = [
            other for other in spans
            if other != job and spans[other][0] < finish
            and admit < spans[other][1]
        ]
        shared = [other for other in competitors
                  if links[job] & links[other]]
        if not shared:
            # disjoint placement: sharing the clock must be free
            if ends != replay:
                emit(f"job {job}: no concurrent job touched its links, "
                     f"yet its step ends are not bit-identical to the "
                     f"isolated replay")
        else:
            # full-serialization ceiling: every wait ends at a shared-
            # link horizon some competitor scheduled, and those horizons
            # never outlive the competitor's span (the pool schedules
            # no task past its job's step end) — so the job's total
            # delay cannot exceed the time competitors sharing its
            # links were concurrently resident.  Note link *occupancy*
            # is not the bound: the no-backfill pool lets a late chunk
            # park its horizon far beyond the link's busy seconds.
            delay = sum(fleet_end - replay_end
                        for fleet_end, replay_end in zip(ends, replay))
            ceiling = sum(
                min(finish, spans[other][1]) - max(admit, spans[other][0])
                for other in shared
            )
            if delay > ceiling * (1.0 + _CEILING_SLACK) + _CEILING_SLACK:
                emit(f"job {job}: total delay {delay!r}s exceeds the "
                     f"{ceiling!r}s its shared-link competitors were "
                     f"concurrently resident — more than full "
                     f"serialization")
    return findings


# -- SCD006: fairness-metric validity -----------------------------------------

def _certify_fairness(result: FleetResult, path: str) -> list[Finding]:
    from repro.sched.metrics import compute_metrics, isolated_step_times

    findings: list[Finding] = []
    scheme = f"{result.policy}-{result.routing}"
    world = len(result.states)

    def emit(message: str) -> None:
        findings.append(_finding("SCD006", path, message, scheme, world))

    try:
        metrics = compute_metrics(result)
    except Exception as exc:   # noqa: B902 — the finding *is* the report
        emit(f"compute_metrics raised {type(exc).__name__}: {exc}")
        return findings
    if not 0.0 < metrics.fairness <= 1.0:
        emit(f"Jain fairness {metrics.fairness!r} outside (0, 1]")
    if metrics.p95_queue_wait > metrics.max_queue_wait:
        emit(f"p95 queue wait {metrics.p95_queue_wait!r} exceeds the "
             f"maximum {metrics.max_queue_wait!r}")
    if metrics.completed > metrics.n_jobs:
        emit(f"{metrics.completed} completions out of {metrics.n_jobs} "
             f"job(s)")
    if isolated_step_times(result) != isolated_step_times(result):
        emit("isolated-baseline replay is nondeterministic: two replays "
             "of the same result disagree")
    return findings


def _certify_metric_degenerates(path: str = "<sched:degenerate>"
                                ) -> list[Finding]:
    """SCD006 on the metric helpers' degenerate inputs (once per run)."""
    from repro.sched.metrics import jain_fairness, percentile

    findings: list[Finding] = []

    def emit(message: str) -> None:
        findings.append(_finding("SCD006", path, message))

    probes: list[tuple[str, Callable[[], float], float]] = [
        ("jain_fairness([])", lambda: jain_fairness([]), 1.0),
        ("jain_fairness([0,0,0])", lambda: jain_fairness([0.0] * 3), 1.0),
        ("jain_fairness([x]*4)", lambda: jain_fairness([0.3] * 4), 1.0),
        ("percentile([], 50)", lambda: percentile([], 50.0), 0.0),
        ("percentile([5], 95)", lambda: percentile([5.0], 95.0), 5.0),
    ]
    for label, probe, want in probes:
        try:
            got = probe()
        except Exception as exc:
            emit(f"{label} raised {type(exc).__name__} instead of "
                 f"degrading to {want!r}")
            continue
        if got != want:
            emit(f"{label} = {got!r}, expected {want!r}")
    for vector in ([1.0, 0.0, 0.0, 0.0], [0.25, 0.5, 0.25],
                   [1e-9, 2e-9, 3e-9]):
        value = jain_fairness(vector)
        if not 0.0 < value <= 1.0:
            emit(f"jain_fairness({vector}) = {value!r} outside (0, 1]")
    return findings


# -- SCD007: job-tag lint over sched/ and the shared network ------------------

#: calls that schedule work on the shared pool and must carry a job tag
_TAGGED_CALLS = {
    "transfer", "transfer_latency_only", "run_kernel", "schedule",
    "schedule_path", "time_allreduce", "time_partial_allreduce",
}

#: functions allowed to schedule untagged: bandwidth probes run on a
#: scratch network that no job shares
_TAG_EXEMPT_FUNCTIONS = {"measure_p2p_bandwidth"}


def tagging_default_roots() -> tuple[str, ...]:
    """What SCD007 audits: the scheduler package + the shared network."""
    import repro.cluster.network
    import repro.sched

    return (os.path.dirname(os.path.abspath(repro.sched.__file__)),
            os.path.abspath(repro.cluster.network.__file__))


def _carries_job_tag(call: ast.Call) -> bool:
    """Whether a call passes a job id — ``job=`` kwarg or a positional
    that is visibly a job id (``job``, ``*_job_id``, ``x.job_id``...)."""
    for keyword in call.keywords:
        if keyword.arg == "job":
            return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and (
                arg.id == "job" or arg.id.endswith("job_id")):
            return True
        if isinstance(arg, ast.Attribute) and arg.attr in ("job", "job_id"):
            return True
    return False


def lint_job_tagging_source(source: str, path: str) -> list[Finding]:
    """SCD007 over one file's source text."""
    from .liveness import _call_name, _own_calls

    findings: list[Finding] = []
    lines = source.splitlines()
    tree = ast.parse(source, filename=path)

    def snippet(lineno: int) -> str:
        return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in _TAG_EXEMPT_FUNCTIONS:
            continue
        for call in _own_calls(node):
            qualifier, name = _call_name(call)
            if name not in _TAGGED_CALLS or qualifier is None:
                continue
            if not _carries_job_tag(call):
                findings.append(Finding(
                    rule="SCD007", path=path, line=call.lineno,
                    col=call.col_offset,
                    message=f"{qualifier}.{name}(...) in {node.name!r} "
                            f"carries no job tag — its busy time and "
                            f"bytes vanish from per-job accounting",
                    source="sched", snippet=snippet(call.lineno)))
    return findings


def lint_job_tagging(roots: Sequence[str] | None = None) -> list[Finding]:
    """SCD007 over the scheduler package and ``cluster/network.py``,
    occurrence-numbered for stable baseline fingerprints."""
    from .rules import iter_python_files

    roots = tuple(roots) if roots is not None else tagging_default_roots()
    findings: list[Finding] = []
    for path in iter_python_files(roots):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_job_tagging_source(source, os.path.relpath(path)))
    findings = sort_findings(findings)
    seen: dict[tuple[str, str, str], int] = {}
    numbered: list[Finding] = []
    for finding in findings:
        ident = (finding.rule, finding.path, finding.snippet)
        numbered.append(Finding(
            rule=finding.rule, path=finding.path, line=finding.line,
            col=finding.col, message=finding.message, source=finding.source,
            snippet=finding.snippet, occurrence=seen.get(ident, 0)))
        seen[ident] = seen.get(ident, 0) + 1
    return numbered


# -- one cell, and the full battery -------------------------------------------

def certify_fleet(result: FleetResult, path: str,
                  network_cls: Callable[..., Network] | None = None
                  ) -> list[Finding]:
    """All dynamic SCD rules (001–006) over one finished fleet campaign.

    ``network_cls`` is the probe-network seam SCD004 builds its
    throttle probes from; tests inject a doctored class to prove the
    rule fires.
    """
    findings: list[Finding] = []
    findings.extend(_certify_log(result, path))
    findings.extend(_certify_conservation(result, path))
    findings.extend(_certify_throttles(result, path, network_cls))
    findings.extend(_certify_isolation(result, path))
    findings.extend(_certify_fairness(result, path))
    return sort_findings(findings)


def verify_sched(cases: Sequence[FleetCase] | None = None,
                 with_tag_lint: bool = True) -> list[Finding]:
    """Certify every battery cell; ``[]`` means the scheduler is clean."""
    from repro.sched.battery import fleet_cases, run_fleet_case

    findings: list[Finding] = []
    findings.extend(_certify_metric_degenerates())
    for case in (fleet_cases() if cases is None else cases):
        result = run_fleet_case(case)
        findings.extend(certify_fleet(result, case.path))
    if with_tag_lint:
        findings.extend(lint_job_tagging())
    return sort_findings(findings)

"""Scaled-down, architecturally faithful versions of the paper's models.

The paper trains ResNet50, VGG16, ViT-Base, Transformer-XL, GPT-2 and
BERT.  Here each family is reproduced at a size trainable in seconds on
CPU while keeping the layer *types* (conv+BN residual blocks, plain conv
stacks, patch embeddings, token embeddings, attention, LayerNorm, biases)
whose differing compression sensitivity drives CGX's design (layer
filters, per-layer bit-widths).

Use :func:`build_model` with a model family name and an integer seed.
"""

from __future__ import annotations

import numpy as np

from .attention import TransformerBlock
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from .module import Module, Parameter, Sequential

__all__ = [
    "MLPClassifier",
    "TinyVGG",
    "TinyResNet",
    "ViTClassifier",
    "TransformerLM",
    "BertQA",
    "build_model",
    "MODEL_FAMILIES",
]


class MLPClassifier(Sequential):
    """Simple MLP baseline used in unit tests and the quickstart example."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        depth: int = 2,
        *,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        layers: list[Module] = [Linear(in_features, hidden, rng=rng), ReLU()]
        for _ in range(depth - 1):
            layers += [Linear(hidden, hidden, rng=rng), ReLU()]
        layers.append(Linear(hidden, num_classes, rng=rng))
        super().__init__(*layers)


class _BasicBlock(Module):
    """ResNet basic block: conv-BN-ReLU-conv-BN with identity shortcut."""

    def __init__(self, channels: int, *, rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(channels)
        self.relu2 = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(out + x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad)
        branch = self.bn2.backward(grad)
        branch = self.conv2.backward(branch)
        branch = self.relu1.backward(branch)
        branch = self.bn1.backward(branch)
        branch = self.conv1.backward(branch)
        return grad + branch


class TinyResNet(Module):
    """ResNet50-style classifier: conv stem, BN residual blocks, GAP head."""

    def __init__(
        self,
        in_channels: int = 3,
        channels: int = 16,
        num_blocks: int = 2,
        num_classes: int = 10,
        image_size: int = 16,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        del image_size  # accepted for recipe symmetry; GAP head is size-free
        self.stem = Conv2d(in_channels, channels, 3, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(channels)
        self.stem_relu = ReLU()
        self.blocks = Sequential(
            *[_BasicBlock(channels, rng=rng) for _ in range(num_blocks)]
        )
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem_relu(self.stem_bn(self.stem(x)))
        x = self.blocks(x)
        return self.fc(self.pool(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad)
        self._notify_grad_ready("fc")
        grad = self.pool.backward(grad)
        grad = self.blocks.backward(grad)
        grad = self.stem_bn.backward(self.stem_relu.backward(grad))
        self._notify_grad_ready("stem_bn")
        grad = self.stem.backward(grad)
        self._notify_grad_ready("stem")
        return grad


class TinyVGG(Sequential):
    """VGG16-style plain conv stack with max pooling and an FC head."""

    def __init__(
        self,
        in_channels: int = 3,
        channels: tuple[int, ...] = (8, 16),
        num_classes: int = 10,
        image_size: int = 16,
        *,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        layers: list[Module] = []
        current = in_channels
        size = image_size
        for width in channels:
            layers += [
                Conv2d(current, width, 3, padding=1, rng=rng),
                ReLU(),
                Conv2d(width, width, 3, padding=1, rng=rng),
                ReLU(),
                MaxPool2d(2),
            ]
            current = width
            size //= 2
        layers += [
            Flatten(),
            Linear(current * size * size, 4 * num_classes, rng=rng),
            ReLU(),
            Linear(4 * num_classes, num_classes, rng=rng),
        ]
        super().__init__(*layers)


class _PatchEmbed(Module):
    """Image-to-sequence patch embedding: (B,C,H,W) -> (B, T, D)."""

    def __init__(
        self,
        in_channels: int,
        dim: int,
        patch_size: int,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.proj = Conv2d(
            in_channels, dim, patch_size, stride=patch_size, bias=True, rng=rng
        )
        self.dim = dim
        self._grid: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.proj(x)
        batch, dim, grid_h, grid_w = out.shape
        self._grid = (grid_h, grid_w)
        return out.reshape(batch, dim, grid_h * grid_w).transpose(0, 2, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grid_h, grid_w = self._grid
        grad = grad.transpose(0, 2, 1).reshape(
            grad.shape[0], self.dim, grid_h, grid_w
        )
        return self.proj.backward(grad)


class _PositionalEmbedding(Module):
    """Learned additive positional embedding over (B, T, D)."""

    def __init__(self, max_len: int, dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.weight = self.register_parameter(
            "weight",
            Parameter(rng.normal(0.0, 0.02, size=(max_len, dim)).astype(np.float32)),
        )
        self._seq: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._seq = x.shape[1]
        if self._seq > self.weight.data.shape[0]:
            raise ValueError(
                f"sequence length {self._seq} exceeds "
                f"max_len {self.weight.data.shape[0]}"
            )
        return x + self.weight.data[: self._seq]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        dense = np.zeros_like(self.weight.data)
        dense[: self._seq] = grad.sum(axis=0)
        self.weight.accumulate_grad(dense)
        return grad


class ViTClassifier(Module):
    """ViT-style classifier: patch embed, transformer encoder, mean pool."""

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        dim: int = 32,
        depth: int = 2,
        num_heads: int = 4,
        num_classes: int = 10,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        num_patches = (image_size // patch_size) ** 2
        self.patch = _PatchEmbed(in_channels, dim, patch_size, rng=rng)
        self.pos = _PositionalEmbedding(num_patches, dim, rng=rng)
        self.blocks = Sequential(
            *[TransformerBlock(dim, num_heads, rng=rng) for _ in range(depth)]
        )
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self._seq: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.pos(self.patch(x))
        x = self.norm(self.blocks(x))
        self._seq = x.shape[1]
        return self.head(x.mean(axis=1))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad)
        self._notify_grad_ready("head")
        grad = np.repeat(grad[:, None, :], self._seq, axis=1) / self._seq
        grad = self.norm.backward(grad)
        self._notify_grad_ready("norm")
        grad = self.blocks.backward(grad)
        grad = self.pos.backward(grad)
        self._notify_grad_ready("pos")
        grad = self.patch.backward(grad)
        self._notify_grad_ready("patch")
        return grad


class TransformerLM(Module):
    """Causal transformer language model (Transformer-XL / GPT-2 style).

    Input: integer tokens (B, T).  Output: next-token logits (B, T, V).
    """

    def __init__(
        self,
        vocab_size: int = 64,
        max_len: int = 32,
        dim: int = 32,
        depth: int = 2,
        num_heads: int = 4,
        dropout: float = 0.0,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embed = Embedding(vocab_size, dim, rng=rng)
        self.pos = _PositionalEmbedding(max_len, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)
        self.blocks = Sequential(
            *[
                TransformerBlock(dim, num_heads, causal=True, dropout=dropout, rng=rng)
                for _ in range(depth)
            ]
        )
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        x = self.drop(self.pos(self.embed(tokens)))
        x = self.norm(self.blocks(x))
        return self.head(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad)
        self._notify_grad_ready("head")
        grad = self.norm.backward(grad)
        self._notify_grad_ready("norm")
        grad = self.blocks.backward(grad)
        grad = self.pos.backward(self.drop.backward(grad))
        self._notify_grad_ready("pos")
        grad = self.embed.backward(grad)
        self._notify_grad_ready("embed")
        return grad


class BertQA(Module):
    """BERT-style span-extraction model: tokens (B, T) -> logits (B, T, 2)."""

    def __init__(
        self,
        vocab_size: int = 64,
        max_len: int = 32,
        dim: int = 32,
        depth: int = 2,
        num_heads: int = 4,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embed = Embedding(vocab_size, dim, rng=rng)
        self.pos = _PositionalEmbedding(max_len, dim, rng=rng)
        self.blocks = Sequential(
            *[TransformerBlock(dim, num_heads, rng=rng) for _ in range(depth)]
        )
        self.norm = LayerNorm(dim)
        self.qa_head = Linear(dim, 2, rng=rng)

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        x = self.pos(self.embed(tokens))
        x = self.norm(self.blocks(x))
        return self.qa_head(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.qa_head.backward(grad)
        self._notify_grad_ready("qa_head")
        grad = self.norm.backward(grad)
        self._notify_grad_ready("norm")
        grad = self.blocks.backward(grad)
        grad = self.pos.backward(grad)
        self._notify_grad_ready("pos")
        grad = self.embed.backward(grad)
        self._notify_grad_ready("embed")
        return grad


#: Family name -> (constructor, GELU-free CNN flag).  Matches paper Table 3.
MODEL_FAMILIES = {
    "resnet50": TinyResNet,
    "vgg16": TinyVGG,
    "vit": ViTClassifier,
    "transformer_xl": TransformerLM,
    "gpt2": TransformerLM,
    "bert": BertQA,
    "mlp": MLPClassifier,
}


def build_model(family: str, seed: int = 0, **overrides) -> Module:
    """Build a scaled-down model of ``family`` with deterministic init.

    Args:
        family: one of :data:`MODEL_FAMILIES`.
        seed: RNG seed for weight initialization; replicas built with the
            same seed have identical parameters (a DDP prerequisite).
        overrides: constructor keyword overrides (e.g. ``dim=64``).
    """
    if family not in MODEL_FAMILIES:
        raise KeyError(f"unknown model family {family!r}; "
                       f"choose from {sorted(MODEL_FAMILIES)}")
    rng = np.random.default_rng(seed)
    if family == "mlp":
        defaults = {"in_features": 32, "hidden": 64, "num_classes": 10}
        defaults.update(overrides)
        return MLPClassifier(rng=rng, **defaults)
    constructor = MODEL_FAMILIES[family]
    return constructor(rng=rng, **overrides)

"""Neural-network layers with explicit forward/backward passes.

Layer classes cache forward activations on the instance and implement
exact analytic gradients.  Parameter names follow PyTorch conventions
(``weight`` / ``bias``) so that CGX layer filters such as ``"bias"`` or
``"bn"`` match the way the paper's Listing 1 describes.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Residual",
]


def _kaiming_uniform(fan_in: int, shape: tuple[int, ...], rng: np.random.Generator):
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` over the last axis of ``x``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight",
            Parameter(_kaiming_uniform(in_features, (out_features, in_features), rng)),
        )
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(np.zeros(out_features, dtype=np.float32))
            )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad.reshape(-1, self.out_features)
        self.weight.accumulate_grad(flat_g.T @ flat_x)
        if self.bias is not None:
            self.bias.accumulate_grad(flat_g.sum(axis=0))
        return grad @ self.weight.data


class Embedding(Module):
    """Token-id lookup table; input is an integer array of any shape."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)).astype(
                    np.float32
                )
            ),
        )
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = np.asarray(ids)
        return self.weight.data[self._ids]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        dense = np.zeros_like(self.weight.data)
        np.add.at(dense, self._ids.reshape(-1), grad.reshape(-1, self.embedding_dim))
        self.weight.accumulate_grad(dense)
        return np.zeros(self._ids.shape, dtype=np.float32)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = self.register_parameter(
            "weight", Parameter(np.ones(dim, dtype=np.float32))
        )
        self.bias = self.register_parameter(
            "bias", Parameter(np.zeros(dim, dtype=np.float32))
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        norm = (x - mean) * inv_std
        self._cache = (norm, inv_std)
        return norm * self.weight.data + self.bias.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        norm, inv_std = self._cache
        flat_g = grad.reshape(-1, self.dim)
        flat_n = norm.reshape(-1, self.dim)
        self.weight.accumulate_grad((flat_g * flat_n).sum(axis=0))
        self.bias.accumulate_grad(flat_g.sum(axis=0))
        g = grad * self.weight.data
        mean_g = g.mean(axis=-1, keepdims=True)
        mean_gn = (g * norm).mean(axis=-1, keepdims=True)
        return (g - mean_g - norm * mean_gn) * inv_std


class _BatchNormBase(Module):
    """Shared machinery for 1-D and 2-D batch normalization."""

    # Axes over which statistics are computed; set by subclasses.
    _axes: tuple[int, ...] = (0,)

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = self.register_parameter(
            "weight", Parameter(np.ones(num_features, dtype=np.float32))
        )
        self.bias = self.register_parameter(
            "bias", Parameter(np.zeros(num_features, dtype=np.float32))
        )
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: tuple | None = None

    def _reshape_stats(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1] = self.num_features
        return stat.reshape(shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        mean_b = self._reshape_stats(mean, x.ndim)
        inv_b = self._reshape_stats(inv_std, x.ndim)
        norm = (x - mean_b) * inv_b
        self._cache = (norm, inv_std, x.ndim)
        w = self._reshape_stats(self.weight.data, x.ndim)
        b = self._reshape_stats(self.bias.data, x.ndim)
        return norm * w + b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        norm, inv_std, ndim = self._cache
        self.weight.accumulate_grad((grad * norm).sum(axis=self._axes))
        self.bias.accumulate_grad(grad.sum(axis=self._axes))
        w = self._reshape_stats(self.weight.data, ndim)
        g = grad * w
        count = norm.size // self.num_features
        mean_g = self._reshape_stats(g.sum(axis=self._axes) / count, ndim)
        mean_gn = self._reshape_stats((g * norm).sum(axis=self._axes) / count, ndim)
        inv_b = self._reshape_stats(inv_std, ndim)
        return (g - mean_g - norm * mean_gn) * inv_b


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over (B, C) inputs."""

    _axes = (0,)


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over (B, C, H, W) inputs."""

    _axes = (0, 2, 3)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p <= 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.relu(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return F.relu_backward(grad, self._x)


class GELU(Module):
    def __init__(self):
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return F.gelu_backward(grad, self._x)


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = F.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return F.tanh_backward(grad, self._out)


class Conv2d(Module):
    """2-D convolution over (B, C, H, W) via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                _kaiming_uniform(
                    fan_in, (out_channels, in_channels, kernel_size, kernel_size), rng
                )
            ),
        )
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(np.zeros(out_channels, dtype=np.float32))
            )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        cols, out_h, out_w = F.im2col(x, k, k, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("oc,bcl->bol", w_mat, cols, optimize=True)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        self._cache = (x.shape, cols, out_h, out_w)
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols, out_h, out_w = self._cache
        k = self.kernel_size
        grad_mat = grad.reshape(grad.shape[0], self.out_channels, out_h * out_w)
        w_grad = np.einsum("bol,bcl->oc", grad_mat, cols, optimize=True)
        self.weight.accumulate_grad(w_grad.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=(0, 2)))
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        col_grad = np.einsum("oc,bol->bcl", w_mat, grad_mat, optimize=True)
        return F.col2im(col_grad, x_shape, k, k, self.stride, self.padding)


class MaxPool2d(Module):
    """Non-overlapping max pooling with ``kernel_size == stride``."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(f"input {height}x{width} not divisible by pool size {k}")
        view = x.reshape(batch, channels, height // k, k, width // k, k)
        out = view.max(axis=(3, 5))
        mask = view == out[:, :, :, None, :, None]
        self._cache = (mask, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask, x_shape = self._cache
        k = self.kernel_size
        expanded = grad[:, :, :, None, :, None] * mask
        return expanded.reshape(x_shape)


class GlobalAvgPool2d(Module):
    """Mean over spatial dimensions: (B, C, H, W) -> (B, C)."""

    def __init__(self):
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        _, _, height, width = self._shape
        scale = 1.0 / (height * width)
        return np.broadcast_to(
            grad[:, :, None, None] * scale, self._shape
        ).astype(np.float32, copy=True)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self):
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Residual(Module):
    """Residual wrapper: ``y = x + inner(x)``."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.inner(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad + self.inner.backward(grad)

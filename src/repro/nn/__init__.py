"""Mini deep-learning framework: the training substrate CGX plugs into.

Public surface re-exports the pieces most users need; submodules hold the
rest (``repro.nn.functional``, ``repro.nn.data``, ``repro.nn.amp``).
"""

from .attention import MultiHeadSelfAttention, TransformerBlock
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Tanh,
)
from .models import (
    BertQA,
    MLPClassifier,
    MODEL_FAMILIES,
    TinyResNet,
    TinyVGG,
    TransformerLM,
    ViTClassifier,
    build_model,
)
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, clip_grad_norm, global_grad_norm

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Residual",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "MLPClassifier",
    "TinyResNet",
    "TinyVGG",
    "ViTClassifier",
    "TransformerLM",
    "BertQA",
    "MODEL_FAMILIES",
    "build_model",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "global_grad_norm",
]

"""Loss functions returning ``(loss_value, grad_wrt_logits)``.

Losses are plain functions rather than modules: the trainer calls the
model's ``forward`` to get logits, computes the loss gradient here, and
feeds it back through ``model.backward``.
"""

from __future__ import annotations

import numpy as np

from . import functional as F

__all__ = [
    "softmax_cross_entropy",
    "sequence_cross_entropy",
    "span_extraction_loss",
    "mse_loss",
    "perplexity",
]


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over (N, C) logits with integer targets (N,)."""
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=-1)
    loss = -log_probs[np.arange(n), targets].mean()
    grad = F.softmax(logits, axis=-1)
    grad[np.arange(n), targets] -= 1.0
    return float(loss), grad / n


def sequence_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Token-averaged cross-entropy over (B, T, V) logits, targets (B, T)."""
    batch, seq, vocab = logits.shape
    loss, grad = softmax_cross_entropy(
        logits.reshape(batch * seq, vocab), targets.reshape(-1)
    )
    return loss, grad.reshape(batch, seq, vocab)


def span_extraction_loss(
    logits: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[float, np.ndarray]:
    """SQuAD-style span loss over (B, T, 2) start/end logits.

    Mirrors BERT-QA training: independent cross-entropy over the start
    position and the end position, averaged.
    """
    start_loss, start_grad = softmax_cross_entropy(logits[:, :, 0], starts)
    end_loss, end_grad = softmax_cross_entropy(logits[:, :, 1], ends)
    grad = np.zeros_like(logits)
    grad[:, :, 0] = start_grad * 0.5
    grad[:, :, 1] = end_grad * 0.5
    return 0.5 * (start_loss + end_loss), grad


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error."""
    diff = pred - target
    return float(np.mean(diff**2)), 2.0 * diff / diff.size


def perplexity(mean_cross_entropy: float) -> float:
    """Perplexity from a mean token cross-entropy (natural log)."""
    return float(np.exp(min(mean_cross_entropy, 50.0)))

"""Multi-head self-attention and transformer blocks.

These power the scaled-down Transformer-XL-style language model, the
ViT-style classifier and the BERT-style QA model used in the accuracy
experiments (paper Table 3, Figure 4).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import Dropout, GELU, LayerNorm, Linear
from .module import Module

__all__ = ["MultiHeadSelfAttention", "TransformerBlock"]


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product self-attention over (B, T, D) inputs.

    Args:
        dim: model width; must divide evenly by ``num_heads``.
        num_heads: number of attention heads.
        causal: apply an autoregressive mask (used by language models).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        causal: bool = False,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        rng = rng or np.random.default_rng(0)
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        qkv = self.qkv(x)
        q, k, v = np.split(qkv, 3, axis=-1)
        q, k, v = self._split_heads(q), self._split_heads(k), self._split_heads(v)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.einsum("bhqd,bhkd->bhqk", q, k, optimize=True) * scale
        if self.causal:
            seq = x.shape[1]
            mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
            scores = np.where(mask, -1e9, scores)
        attn = F.softmax(scores, axis=-1)
        out_heads = np.einsum("bhqk,bhkd->bhqd", attn, v, optimize=True)
        self._cache = (q, k, v, attn, scale)
        return self.proj(self._merge_heads(out_heads))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        q, k, v, attn, scale = self._cache
        grad_merged = self.proj.backward(grad)
        grad_heads = self._split_heads(grad_merged)
        grad_attn = np.einsum("bhqd,bhkd->bhqk", grad_heads, v, optimize=True)
        grad_v = np.einsum("bhqk,bhqd->bhkd", attn, grad_heads, optimize=True)
        grad_scores = F.softmax_backward(grad_attn, attn, axis=-1) * scale
        grad_q = np.einsum("bhqk,bhkd->bhqd", grad_scores, k, optimize=True)
        grad_k = np.einsum("bhqk,bhqd->bhkd", grad_scores, q, optimize=True)
        grad_qkv = np.concatenate(
            [self._merge_heads(grad_q), self._merge_heads(grad_k),
             self._merge_heads(grad_v)],
            axis=-1,
        )
        return self.qkv.backward(grad_qkv)


class TransformerBlock(Module):
    """Pre-LN transformer block: LN -> MHSA -> add, LN -> MLP -> add."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: int = 4,
        causal: bool = False,
        dropout: float = 0.0,
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, causal=causal, rng=rng)
        self.ln2 = LayerNorm(dim)
        self.fc1 = Linear(dim, mlp_ratio * dim, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(mlp_ratio * dim, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.ln1(x))
        x = x + self.drop(self.fc2(self.act(self.fc1(self.ln2(x)))))
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mlp_grad = self.drop.backward(grad)
        mlp_grad = self.fc1.backward(self.act.backward(self.fc2.backward(mlp_grad)))
        grad = grad + self.ln2.backward(mlp_grad)
        attn_grad = self.attn.backward(grad)
        return grad + self.ln1.backward(attn_grad)

"""Mixed-precision emulation.

The paper trains several models with AMP "level 1" (activations fp16) or
"level 2" (model + activations + gradients fp16), and notes that PowerSGD
is incompatible with fp16 gradients.  We emulate the numerically relevant
part — the precision loss — by round-tripping arrays through float16 at
the same boundaries.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["AmpLevel", "fp16_roundtrip", "apply_grad_precision"]


class AmpLevel(Enum):
    """Mixed-precision levels as named in the paper's Appendix C."""

    O0 = "fp32"          # everything full precision
    O1 = "amp_act"       # activations fp16; weights and gradients fp32
    O2 = "amp_full"      # weights, activations and gradients fp16


def fp16_roundtrip(x: np.ndarray) -> np.ndarray:
    """Quantize ``x`` to float16 precision, returned as float32."""
    # overflow-to-inf IS the emulated fp16 semantics (values beyond
    # ~65504 saturate to inf in real half precision), so the cast
    # warning is expected and suppressed
    with np.errstate(over="ignore"):
        return x.astype(np.float16).astype(np.float32)


def apply_grad_precision(grad: np.ndarray, level: AmpLevel) -> np.ndarray:
    """Apply the gradient-precision effect of an AMP level."""
    if level is AmpLevel.O2:
        return fp16_roundtrip(grad)
    return grad

"""Synthetic datasets standing in for ImageNet, WikiText and SQuAD.

Each dataset is deterministic given a seed, infinitely samplable, and
*learnable*: models trained on it converge to a stable optimum, so the
"accuracy gap vs uncompressed baseline" measured in the Table 3
reproduction is meaningful.  See DESIGN.md §2 for the substitution
rationale.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SyntheticVectors",
    "SyntheticImages",
    "MarkovText",
    "SyntheticQA",
]


class SyntheticVectors:
    """Gaussian-mixture vector classification (for MLPs)."""

    def __init__(
        self,
        num_classes: int = 10,
        dim: int = 32,
        noise: float = 0.8,
        seed: int = 0,
    ):
        self.num_classes = num_classes
        self.dim = dim
        self.noise = noise
        rng = np.random.default_rng(seed)
        self.prototypes = rng.normal(size=(num_classes, dim)).astype(np.float32)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=batch_size)
        noise = rng.normal(scale=self.noise, size=(batch_size, self.dim))
        x = self.prototypes[labels] + noise.astype(np.float32)
        return x.astype(np.float32), labels

    def eval_set(self, n: int, seed: int = 10_000):
        return self.sample(n, np.random.default_rng(seed))


class SyntheticImages:
    """Gaussian-mixture image classification (ImageNet stand-in).

    Class prototypes are smooth low-frequency images; samples add pixel
    noise and a random brightness shift, so conv models must learn
    spatially structured features.
    """

    def __init__(
        self,
        num_classes: int = 10,
        channels: int = 3,
        image_size: int = 16,
        noise: float = 0.5,
        seed: int = 0,
    ):
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size
        self.noise = noise
        rng = np.random.default_rng(seed)
        coarse = rng.normal(size=(num_classes, channels, 4, 4))
        reps = image_size // 4
        self.prototypes = np.kron(coarse, np.ones((1, 1, reps, reps))).astype(
            np.float32
        )

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=batch_size)
        x = self.prototypes[labels].copy()
        x += rng.normal(scale=self.noise, size=x.shape).astype(np.float32)
        x += rng.normal(scale=0.1, size=(batch_size, 1, 1, 1)).astype(np.float32)
        return x, labels

    def eval_set(self, n: int, seed: int = 10_000):
        return self.sample(n, np.random.default_rng(seed))


class MarkovText:
    """Order-2 Markov token stream (WikiText stand-in).

    A fixed random sparse transition table maps each token bigram to a
    skewed next-token distribution; language models reduce perplexity by
    learning the table.
    """

    def __init__(
        self,
        vocab_size: int = 64,
        seq_len: int = 32,
        branching: int = 4,
        seed: int = 0,
    ):
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        rng = np.random.default_rng(seed)
        # successors[a, b] -> `branching` candidate next tokens for bigram (a, b)
        self.successors = rng.integers(
            0, vocab_size, size=(vocab_size, vocab_size, branching)
        )
        raw = rng.dirichlet(np.full(branching, 0.4), size=(vocab_size, vocab_size))
        self.probs = raw.astype(np.float64)

    def _roll(self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator):
        probs = self.probs[a, b]
        cumulative = np.cumsum(probs, axis=-1)
        draws = rng.random(size=(a.shape[0], 1))
        idx = (draws > cumulative).sum(axis=-1)
        return self.successors[a, b, idx]

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(tokens, next_tokens)`` each of shape (B, seq_len)."""
        stream = np.empty((batch_size, self.seq_len + 1), dtype=np.int64)
        stream[:, 0] = rng.integers(0, self.vocab_size, size=batch_size)
        stream[:, 1] = rng.integers(0, self.vocab_size, size=batch_size)
        for t in range(2, self.seq_len + 1):
            stream[:, t] = self._roll(stream[:, t - 2], stream[:, t - 1], rng)
        return stream[:, :-1], stream[:, 1:]

    def eval_set(self, n: int, seed: int = 10_000):
        return self.sample(n, np.random.default_rng(seed))


class SyntheticQA:
    """Span extraction over token sequences (SQuAD stand-in).

    Sequences are random tokens with one answer span delimited by two
    reserved marker tokens; the model must output the span boundaries.
    """

    BEGIN = 1
    END = 2

    def __init__(self, vocab_size: int = 64, seq_len: int = 32, seed: int = 0):
        if vocab_size < 8:
            raise ValueError("vocab_size must be at least 8")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        del seed  # no fixed structure beyond the marker convention

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(tokens, starts, ends)``."""
        tokens = rng.integers(3, self.vocab_size, size=(batch_size, self.seq_len))
        starts = rng.integers(1, self.seq_len - 3, size=batch_size)
        lengths = rng.integers(1, 3, size=batch_size)
        ends = np.minimum(starts + lengths, self.seq_len - 1)
        rows = np.arange(batch_size)
        tokens[rows, starts] = self.BEGIN
        tokens[rows, ends] = self.END
        return tokens, starts, ends

    def eval_set(self, n: int, seed: int = 10_000):
        return self.sample(n, np.random.default_rng(seed))

"""Learning-rate schedules used by the training recipes.

The paper trains under unmodified standard recipes (Goal 2); standard
recipes include warmup and decay schedules, so the trainer supports the
two that cover its model families: cosine decay with linear warmup
(ViT/BERT-style) and step decay (classic CNN recipes).
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "CosineWarmup", "StepDecay", "ConstantLR"]


class LRScheduler:
    """Base: owns an optimizer and rewrites its ``lr`` every step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; returns the learning rate now in effect."""
        self.step_count += 1
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """No schedule; keeps the base learning rate."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class CosineWarmup(LRScheduler):
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 warmup_steps: int = 0, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps >= total_steps:
            raise ValueError("warmup must be shorter than the schedule")
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / \
            max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each milestone."""

    def __init__(self, optimizer: Optimizer, milestones: list[int],
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma**passed

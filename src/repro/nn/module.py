"""Module and parameter abstractions for the mini deep-learning framework.

The framework is deliberately small but structurally faithful to the DDP
training stacks the paper integrates with: modules own named parameters,
gradients accumulate into ``Parameter.grad`` during an explicit backward
pass, and the full model exposes ``named_parameters()`` in *backward
order* metadata so a communication engine can reason about per-layer
gradients exactly the way CGX does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]

#: a grad-ready hook receives the dotted names (relative to the module
#: the hook was registered on) of the parameters whose gradients one
#: backward stage just finished accumulating
GradReadyHook = Callable[[list[str]], None]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes:
        data: parameter values (float32 or float16 ndarray).
        grad: accumulated gradient of the current step, or ``None``.
    """

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def numel(self) -> int:
        return int(self.data.size)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient, allocating on first use."""
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses register parameters via :meth:`register_parameter` and
    child modules by plain attribute assignment.  ``forward`` must cache
    whatever ``backward`` needs on ``self``; each data-parallel worker
    owns an independent replica, so instance-level caches are safe.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True
        # (root-relative prefix, hook) sinks notified when one of this
        # module's child stages finishes its backward — the per-layer
        # gradient emission signal the overlapped engine consumes
        self._grad_ready_sinks: list[tuple[str, GradReadyHook]] = []

    # -- registration ----------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        self._parameters[name] = param
        return param

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module):
            if "_modules" not in self.__dict__:
                raise RuntimeError("call Module.__init__() before assigning children")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal --------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, Parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_prefix, module)`` pairs, root first.

        The prefix ends with ``.`` for children (matches the dotted
        parameter names of :meth:`named_parameters`); the root's prefix
        is the empty string.
        """
        yield prefix, self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    # -- gradient-readiness hooks -----------------------------------------
    def register_grad_ready_hook(self, hook: GradReadyHook) -> None:
        """Fire ``hook`` as each backward stage emits its gradients.

        The hook receives the dotted parameter names (relative to this
        module) of one just-finished stage, in emission order — the
        signal the overlapped communication engine uses to enqueue
        per-layer reductions while the rest of the backward pass runs.
        The registration propagates to every submodule so nested
        containers (a ``Sequential`` of blocks inside a model) report
        through the same hook with correctly prefixed names.
        """
        for module_prefix, module in self.named_modules():
            module._grad_ready_sinks.append((module_prefix, hook))

    def clear_grad_ready_hooks(self) -> None:
        for _, module in self.named_modules():
            module._grad_ready_sinks.clear()

    def _notify_grad_ready(self, child_key: str) -> None:
        """Report that child stage ``child_key``'s backward finished.

        Called by container ``backward`` implementations right after
        ``self._modules[child_key].backward(...)`` returns (or with a
        directly-registered parameter's name).  No-op when no hook is
        registered, so the backward pass pays one empty-list check per
        stage in sequential mode.
        """
        sinks = self._grad_ready_sinks
        if not sinks:
            return
        child = self._modules.get(child_key)
        if child is not None:
            names = [f"{child_key}.{n}" for n, _ in child.named_parameters()]
        elif child_key in self._parameters:
            names = [child_key]
        else:
            names = []
        if not names:
            return
        for module_prefix, hook in sinks:
            hook([f"{module_prefix}{n}" for n in names])

    def num_parameters(self) -> int:
        return sum(p.numel for p in self.parameters())

    # -- state ------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(np.float32, copy=True)

    # -- compute ----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def append(self, layer: Module) -> None:
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for i in range(len(self.layers) - 1, -1, -1):
            grad = self.layers[i].backward(grad)
            self._notify_grad_ready(str(i))
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

"""Primitive numerical operations with explicit backward rules.

These functions are the computational core of the :mod:`repro.nn` layers.
Each ``*_backward`` takes the upstream gradient plus whatever the forward
pass cached, and returns gradients for the forward inputs.  Keeping the
math here lets the layer classes stay small and testable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "relu_backward",
    "gelu",
    "gelu_backward",
    "tanh",
    "tanh_backward",
    "sigmoid",
    "sigmoid_backward",
    "softmax",
    "softmax_backward",
    "log_softmax",
    "im2col",
    "col2im",
]

_GELU_C = np.sqrt(2.0 / np.pi)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_backward(grad: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of :func:`relu` with respect to its input."""
    return grad * (x > 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as used by BERT/GPT)."""
    inner = _GELU_C * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def gelu_backward(grad: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of :func:`gelu` with respect to its input."""
    inner = _GELU_C * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    dinner = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return grad * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_backward(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient of :func:`tanh` given the forward *output*."""
    return grad * (1.0 - out**2)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_backward(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient of :func:`sigmoid` given the forward *output*."""
    return grad * out * (1.0 - out)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with max-subtraction for stability."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def softmax_backward(grad: np.ndarray, out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient of :func:`softmax` given the forward *output*."""
    dot = np.sum(grad * out, axis=axis, keepdims=True)
    return out * (grad - dot)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` of shape (B, C, H, W) into convolution columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(B, C * kh * kw, out_h * out_w)``.
    """
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    cols = np.empty((batch, channels, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(batch, channels * kh * kw, out_h * out_w), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back into an input-shaped gradient.

    Inverse scatter of :func:`im2col`: overlapping positions accumulate.
    """
    batch, channels, height, width = x_shape
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    cols = cols.reshape(batch, channels, kh, kw, out_h, out_w)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded

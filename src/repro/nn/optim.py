"""Optimizers and gradient utilities.

The paper's key constraint (Goal 2, "hyperparameter freedom") is that
compressed training must work under the *uncompressed* recipes, so the
optimizers here match the standard PyTorch semantics the recipes assume:
SGD with Nesterov/heavy-ball momentum and weight decay, Adam with bias
correction, and global-norm gradient clipping (the Technical Issue 3
interaction the paper discusses).
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm", "global_grad_norm",
           "grad_consumer"]

_F = TypeVar("_F", bound=Callable)


def grad_consumer(fn: _F) -> _F:
    """Mark ``fn`` as a sanctioned gradient sink.

    The overlapped engine's completion barrier guarantees every
    ``param.grad`` is fully reduced before consumers run; the OVL006
    lint flags functions on the optimizer/trainer path that read
    ``.grad`` without either synchronizing themselves or carrying this
    marker.  Decorating a function asserts it only ever runs after the
    barrier (optimizer updates, clipping, norm measurement).
    """
    fn.__grad_consumer__ = True  # type: ignore[attr-defined]
    return fn


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Copyable snapshot of the optimizer's mutable state.

        Used by checkpoint/restore and by elastic membership (a
        rejoining worker adopts a live peer's state so momentum and
        bias correction stay consistent across the fleet).
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`state_dict`."""


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: dict[int, np.ndarray] = {}

    @grad_consumer
    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(i)
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel *= self.momentum
                vel += grad
                self._velocity[i] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {"velocity": {i: v.copy()
                             for i, v in self._velocity.items()}}

    def load_state_dict(self, state: dict) -> None:
        self._velocity = {int(i): np.array(v, copy=True)
                          for i, v in state["velocity"].items()}


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    @grad_consumer
    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(i)
            if m is None:
                m = np.zeros_like(param.data)
                self._m[i] = m
                self._v[i] = np.zeros_like(param.data)
            v = self._v[i]
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {"step_count": self._step_count,
                "m": {i: m.copy() for i, m in self._m.items()},
                "v": {i: v.copy() for i, v in self._v.items()}}

    def load_state_dict(self, state: dict) -> None:
        self._step_count = int(state["step_count"])
        self._m = {int(i): np.array(m, copy=True)
                   for i, m in state["m"].items()}
        self._v = {int(i): np.array(v, copy=True)
                   for i, v in state["v"].items()}


@grad_consumer
def global_grad_norm(params: list[Parameter]) -> float:
    """L2 norm of all gradients concatenated."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return float(np.sqrt(total))


@grad_consumer
def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so the global norm is at most ``max_norm``.

    Returns the pre-clip norm.  As the paper notes (Technical Issue 3),
    clipping needs the *synchronized* gradient norm, so DDP wrappers must
    call this only after reduction completes.
    """
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm

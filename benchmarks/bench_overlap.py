"""Extension: overlapped vs. sequential gradient exchange on the wire.

The engine's overlapped mode enqueues each bucket's collective as its
member gradients are emitted, so communication hides under the rest of
the backward pass instead of starting after it.  This benchmark drives
the Network-grounded timed model (:func:`repro.collectives
.time_overlapped_step`) over the real CGX bucket plans of three paper
models on the commodity 8x RTX 3090 box, and reports the per-step
wall-time of both drains plus the overlap ratio.  A machine-readable
``BENCH_overlap.json`` is persisted for CI to ratchet against.
"""

import json
import os

from common import RESULTS_DIR, emit, format_table, run_once

from repro.cluster import Network, get_backend, get_machine
from repro.collectives import TimedBucket, time_overlapped_step
from repro.core import CGXConfig, CommunicationEngine, LayerInfo
from repro.core.engine import group_for_transmission
from repro.models import build_spec
from repro.training.perf import _gradient_ready_times

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_overlap.json")

MODELS = ["resnet50", "vgg16", "transformer_xl"]
SCHEMES = ["sra", "ring"]
MACHINE = "rtx3090-8x"


def _timed_step(model: str, scheme: str) -> dict:
    """One overlapped-vs-sequential comparison on the calibrated machine."""
    machine = get_machine(MACHINE)
    spec = build_spec(model)
    config = CGXConfig.cgx_default()
    config.scheme = scheme
    engine = CommunicationEngine(config)

    layers = [LayerInfo(t.name, t.numel, t.shape, t.kind)
              for t in spec.backward_order()]
    packages = group_for_transmission(engine.plan(layers, mode="cgx"),
                                      config.fusion_bytes)
    batch = machine.gpu.max_batch_per_gpu(spec)
    compute_time = machine.gpu.step_compute_time(spec, batch)
    ready = _gradient_ready_times(spec, compute_time)
    forward_pos = {t.name: i for i, t in enumerate(spec.tensors)}

    buckets = [
        TimedBucket(
            name=pkg.name, numel=pkg.numel, spec=pkg.spec,
            ready=max(ready[layer.name] for layer in pkg.layers),
            first_needed=min(forward_pos[layer.name]
                             for layer in pkg.layers),
            min_index=i,
        )
        for i, pkg in enumerate(packages)
    ]
    net = Network(machine.topology(), get_backend(config.backend))
    timing = time_overlapped_step(net, list(range(machine.n_gpus)), buckets,
                                  scheme=scheme, compute_end=compute_time)
    return {
        "model": model,
        "scheme": scheme,
        "buckets": len(buckets),
        "compute_s": compute_time,
        "overlapped_s": timing.overlapped_end,
        "sequential_s": timing.sequential_end,
        "overlap_ratio": timing.overlap_ratio,
        "wire_bytes": timing.wire_bytes,
    }


def run_campaign():
    return [_timed_step(model, scheme)
            for model in MODELS for scheme in SCHEMES]


def test_bench_overlap(benchmark):
    results = run_once(benchmark, run_campaign)

    rows = [[r["model"], r["scheme"], r["buckets"],
             f"{1e3 * r['compute_s']:.1f}", f"{1e3 * r['sequential_s']:.1f}",
             f"{1e3 * r['overlapped_s']:.1f}", f"{r['overlap_ratio']:.2f}x"]
            for r in results]
    emit("overlap", format_table(
        f"Overlapped vs sequential gradient exchange ({MACHINE}, 8 GPUs)",
        ["model", "scheme", "buckets", "compute ms", "sequential ms",
         "overlapped ms", "ratio"],
        rows,
        note="sequential = all collectives start after the backward pass; "
             "overlapped = buckets launch as their gradients are emitted "
             "(first-needed-first-sent)."))

    payload = {
        "version": 1,
        "machine": MACHINE,
        "results": results,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for r in results:
        # overlap must never lose, and must actually hide communication
        # under compute on every (model, scheme) cell
        assert r["overlapped_s"] <= r["sequential_s"] + 1e-9, r
        assert r["overlap_ratio"] > 1.05, r
        assert r["buckets"] >= 2, r

"""Extension: CGX's win grows with communication intensity.

Figure 1's implicit claim, made explicit: the benefit of compression is
governed by a model's *communication intensity* — gradient bytes per
second of compute.  Sweeping all six evaluation models on the 8x3090
box, CGX's self-speedup over NCCL must rank-correlate with intensity
(parameter-heavy/compute-light models like the LMs gain the most; a
compute-dense ViT gains the least).
"""

from scipy import stats

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import available_specs, build_spec
from repro.training import simulate_machine_step

MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    intensities = []
    speedups = []
    for name in available_specs():
        spec = build_spec(name)
        batch = MACHINE.gpu.max_batch_per_gpu(spec)
        compute = MACHINE.gpu.step_compute_time(spec, batch)
        intensity = spec.gradient_bytes / compute / 1e9  # GB per compute-s
        base = simulate_machine_step(MACHINE, spec,
                                     CGXConfig.baseline_nccl(),
                                     plan_mode="fused")
        cgx = simulate_machine_step(MACHINE, spec, CGXConfig.cgx_default())
        speedup = cgx.throughput / base.throughput
        intensities.append(intensity)
        speedups.append(speedup)
        rows.append([name, f"{spec.num_parameters / 1e6:.0f}M",
                     f"{compute * 1000:.0f}", f"{intensity:.2f}",
                     f"{speedup:.2f}x"])
    rows.sort(key=lambda r: float(r[3]))
    return rows, intensities, speedups


def test_speedup_tracks_communication_intensity(benchmark):
    rows, intensities, speedups = run_once(benchmark, campaign)
    correlation, _ = stats.spearmanr(intensities, speedups)
    table = format_table(
        "Model sweep — CGX self-speedup vs communication intensity, 8x3090",
        ["model", "params", "compute (ms)", "grad GB per compute-s",
         "CGX speedup"],
        rows,
        note=f"Spearman rank correlation intensity vs speedup: "
             f"{correlation:.2f} — the more communication per unit of "
             f"compute, the more compression buys.",
    )
    emit("model_size_sweep", table)

    assert correlation > 0.7
    assert min(speedups) > 1.5   # every model benefits on commodity
    assert max(speedups) > 3.0   # and the comm-bound ones benefit a lot

"""Extension: straggler sensitivity of synchronous data-parallel training.

The paper's future-work list points at hybrid synchronization (Sync-
Switch, Petrel) precisely because synchronous allreduce waits for the
slowest worker.  This bench quantifies that cost in the simulator: one
1.5x straggler drags the whole 8-GPU step toward its pace regardless of
compression — compression removes the *bandwidth* bottleneck, not the
*synchronization* one — which is why the adaptive-compression story is
orthogonal to hybrid-sync work.

The straggler itself is expressed as a :mod:`repro.faults` plan rather
than a hand-built jitter list, so the bench exercises the same fault
schedule the resilience runtime consumes, and a second campaign drives
a dead-link plan through :func:`plan_fallback` to time the degraded
quorum step the policy layer falls back to.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.faults import FaultPlan, link_outage, plan_fallback, straggler
from repro.models import build_spec
from repro.training import simulate_step

MACHINE = get_machine("rtx3090-8x")
WORLD = 8
MODELS = ["resnet50", "vit"]
STRAGGLER_FACTOR = 1.5   # one rank at 1.5x compute time

# One persistent straggler on rank 3, as a declarative fault plan.
STRAGGLER_PLAN = FaultPlan(
    name="bench-straggler", seed=0, world=WORLD,
    events=(straggler(0, None, rank=3,
                      factor=STRAGGLER_FACTOR),))

# Every route touching rank 3 goes down: the fallback planner must
# demote the step to a 7-rank quorum rather than stall forever.
DEAD_LINK_PLAN = FaultPlan(
    name="bench-dead-link", seed=0, world=WORLD,
    events=(link_outage(0, None, src=3),))


def plan_jitter(plan: FaultPlan, step: int = 1) -> list[float]:
    """Per-rank additive compute jitter implied by a fault plan."""
    faults = plan.at_step(step)
    return [faults.compute_scale(rank) - 1.0 for rank in range(plan.world)]


def campaign():
    rows = []
    results = {}
    for model in MODELS:
        spec = build_spec(model)
        for method, config, mode in [
            ("nccl", CGXConfig.baseline_nccl(), "fused"),
            ("cgx", CGXConfig.cgx_default(), "cgx"),
        ]:
            base = simulate_step(spec, MACHINE.gpu, MACHINE.topology(),
                                 config, plan_mode=mode)
            jitter = plan_jitter(STRAGGLER_PLAN)
            slow = simulate_step(spec, MACHINE.gpu, MACHINE.topology(),
                                 config, plan_mode=mode,
                                 compute_jitter=jitter)
            penalty = slow.step_time / base.step_time
            results[(model, method)] = penalty
            rows.append([model, method, f"{base.step_time * 1000:.1f}",
                         f"{slow.step_time * 1000:.1f}",
                         f"{(penalty - 1) * 100:.0f}%"])
    return rows, results


def quorum_campaign():
    """Dead-link fallback: rank 3 unreachable, reduce over the quorum."""
    rows = []
    results = {}
    faults = DEAD_LINK_PLAN.at_step(1)
    decision, members = plan_fallback(faults, list(range(WORLD)))
    for model in MODELS:
        spec = build_spec(model)
        config = CGXConfig.cgx_default()
        base = simulate_step(spec, MACHINE.gpu, MACHINE.topology(),
                             config, plan_mode="cgx")
        degraded = simulate_step(spec, MACHINE.gpu, MACHINE.topology(),
                                 config, plan_mode="cgx", ranks=members)
        ratio = degraded.step_time / base.step_time
        results[model] = (decision, members, ratio)
        rows.append([model, decision, f"{len(members)}/{WORLD}",
                     f"{base.step_time * 1000:.1f}",
                     f"{degraded.step_time * 1000:.1f}",
                     f"{ratio:.3f}"])
    return rows, results


def test_straggler_sensitivity(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        f"Stragglers — one rank {STRAGGLER_FACTOR:.1f}x slower "
        f"(plan '{STRAGGLER_PLAN.name}'), 8x RTX3090",
        ["model", "method", "step (ms)", "straggled step (ms)", "penalty"],
        rows,
        note="Comm-bound baselines hide stragglers under the transfer "
             "makespan; compression removes the bandwidth bottleneck and "
             "exposes the straggler in full — motivating the hybrid-sync "
             "future work the paper cites.",
    )
    emit("stragglers", table)

    overhang = STRAGGLER_FACTOR - 1.0
    for (model, method), penalty in results.items():
        assert 1.0 <= penalty < 1 + overhang + 0.1, (model, method)
    for model in MODELS:
        # communication-bound baselines partially *hide* the straggler
        # (its extra compute fits under the comm makespan); once CGX
        # removes the bandwidth bottleneck the step is compute-bound and
        # inherits most of the straggler's delay — compression exposes
        # stragglers, which is why hybrid synchronization remains open.
        assert results[(model, "cgx")] > results[(model, "nccl")], model
        assert results[(model, "cgx")] > 1.25, model


def test_dead_link_quorum_fallback(benchmark):
    rows, results = run_once(benchmark, quorum_campaign)
    table = format_table(
        f"Dead link — plan '{DEAD_LINK_PLAN.name}' isolates rank 3, "
        "CGX falls back to a quorum step",
        ["model", "decision", "quorum", "step (ms)",
         "quorum step (ms)", "ratio"],
        rows,
        note="All routes touching rank 3 are down; plan_fallback demotes "
             "the step to the reachable quorum instead of stalling, and "
             "the degraded step stays within a small factor of healthy.",
    )
    emit("stragglers_dead_link", table)

    for model, (decision, members, ratio) in results.items():
        assert decision == "quorum", model
        assert members == [0, 1, 2, 4, 5, 6, 7], model
        # a 7-rank reduction moves slightly less data but keeps the same
        # critical path shape; it must not blow up relative to healthy.
        assert 0.5 < ratio < 1.5, (model, ratio)

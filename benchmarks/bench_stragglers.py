"""Extension: straggler sensitivity of synchronous data-parallel training.

The paper's future-work list points at hybrid synchronization (Sync-
Switch, Petrel) precisely because synchronous allreduce waits for the
slowest worker.  This bench quantifies that cost in the simulator: one
1.5x straggler drags the whole 8-GPU step toward its pace regardless of
compression — compression removes the *bandwidth* bottleneck, not the
*synchronization* one — which is why the adaptive-compression story is
orthogonal to hybrid-sync work.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_step

MACHINE = get_machine("rtx3090-8x")
MODELS = ["resnet50", "vit"]
STRAGGLER = 0.5   # +50% compute time on one rank


def campaign():
    rows = []
    results = {}
    for model in MODELS:
        spec = build_spec(model)
        for method, config, mode in [
            ("nccl", CGXConfig.baseline_nccl(), "fused"),
            ("cgx", CGXConfig.cgx_default(), "cgx"),
        ]:
            base = simulate_step(spec, MACHINE.gpu, MACHINE.topology(),
                                 config, plan_mode=mode)
            jitter = [0.0] * 8
            jitter[3] = STRAGGLER
            slow = simulate_step(spec, MACHINE.gpu, MACHINE.topology(),
                                 config, plan_mode=mode,
                                 compute_jitter=jitter)
            penalty = slow.step_time / base.step_time
            results[(model, method)] = penalty
            rows.append([model, method, f"{base.step_time * 1000:.1f}",
                         f"{slow.step_time * 1000:.1f}",
                         f"{(penalty - 1) * 100:.0f}%"])
    return rows, results


def test_straggler_sensitivity(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        f"Stragglers — one rank {1 + STRAGGLER:.1f}x slower, 8x RTX3090",
        ["model", "method", "step (ms)", "straggled step (ms)", "penalty"],
        rows,
        note="Comm-bound baselines hide stragglers under the transfer "
             "makespan; compression removes the bandwidth bottleneck and "
             "exposes the straggler in full — motivating the hybrid-sync "
             "future work the paper cites.",
    )
    emit("stragglers", table)

    for (model, method), penalty in results.items():
        assert 1.0 <= penalty < 1 + STRAGGLER + 0.1, (model, method)
    for model in MODELS:
        # communication-bound baselines partially *hide* the straggler
        # (its extra compute fits under the comm makespan); once CGX
        # removes the bandwidth bottleneck the step is compute-bound and
        # inherits most of the straggler's delay — compression exposes
        # stragglers, which is why hybrid synchronization remains open.
        assert results[(model, "cgx")] > results[(model, "nccl")], model
        assert results[(model, "cgx")] > 1.25, model

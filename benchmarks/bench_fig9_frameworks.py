"""Figure 9 (Appendix D): CGX under a second framework frontend.

The paper shows the Horovod/CGX speedup carries unchanged from PyTorch
to TensorFlow.  Our substrate has an eager (define-by-run) and a graph
(define-then-run, TF-style) frontend over the same engine; this bench
(1) verifies both frontends produce identical reductions on real data
and (2) regenerates the CNN throughput bars under the graph frontend's
cost structure.
"""

import numpy as np

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig, CGXSession, EagerFrontend, GraphFrontend
from repro.models import build_spec
from repro.nn import build_model
from repro.training import simulate_machine_step

MODELS = ["resnet50", "vgg16"]
MACHINE = get_machine("rtx3090-8x")


def campaign():
    # data-path equivalence of the two frontends
    model = build_model("resnet50", seed=0)
    grads = []
    for w in range(2):
        rng = np.random.default_rng(w)
        grads.append({n: rng.normal(size=p.data.shape).astype(np.float32)
                      for n, p in model.named_parameters()})
    eager = EagerFrontend(CGXSession(), seed=1)
    graph = GraphFrontend(CGXSession(), model=model, seed=1)
    reduced_eager, _ = eager.reduce(grads)
    reduced_graph, _ = graph.reduce(grads)
    identical = all(np.array_equal(reduced_eager[0][n], reduced_graph[0][n])
                    for n in reduced_eager[0])

    rows = []
    speedups = {}
    for name in MODELS:
        spec = build_spec(name)
        base = simulate_machine_step(MACHINE, spec,
                                     CGXConfig.baseline_nccl(),
                                     plan_mode="fused")
        cgx = simulate_machine_step(MACHINE, spec, CGXConfig.cgx_default())
        speedups[name] = cgx.throughput / base.throughput
        rows.append([name, f"{base.throughput:.0f}", f"{cgx.throughput:.0f}",
                     f"{base.ideal_throughput:.0f}",
                     f"{(speedups[name] - 1) * 100:.0f}%"])
    return rows, speedups, identical


def test_fig9_second_frontend(benchmark):
    rows, speedups, identical = run_once(benchmark, campaign)
    table = format_table(
        "Figure 9 — CNN throughput under the graph (TF-style) frontend",
        ["model", "NCCL", "CGX", "ideal", "CGX gain"],
        rows,
        note="Paper: CGX outperforms the NCCL backend by up to 130% under "
             "TensorFlow; the engine is frontend-agnostic.",
    )
    emit("fig9_frameworks", table)

    assert identical, "graph frontend must reproduce eager reductions"
    assert max(speedups.values()) > 2.3  # the paper's 'up to 130%'
    assert all(s > 1.5 for s in speedups.values())

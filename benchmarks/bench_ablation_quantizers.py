"""Ablation: quantizer design — CGX's max-scaled grid vs the literature.

Three quantizers at equal bit-width and bucket size on a synthetic
gradient:

* **QSGD (L2-scaled)** — the original Alistarh et al. formulation;
* **NUQSGD (L2-scaled)** — exponential levels (Ramezani-Kebrya et al.),
  the "improved quantizer" line of work the paper cites;
* **QSGD (max-scaled)** — what the CGX kernels actually do.

Expected: NUQSGD improves on L2-QSGD at low bit-widths (its paper's
claim), and CGX's max scaling with small buckets beats both — the
design justification for CGX's default operator.
"""

import numpy as np

from common import emit, format_table, run_once

from repro.compression import CompressionSpec, measure_error

BITS = [2, 3, 4, 6, 8]
BUCKET = 128


def campaign():
    rng = np.random.default_rng(0)
    gradient = rng.normal(size=1 << 17).astype(np.float32)
    rows = []
    errors = {}
    for bits in BITS:
        variants = {
            "qsgd-l2": CompressionSpec("qsgd", bits=bits, bucket_size=BUCKET,
                                       scaling="l2"),
            "nuq-l2": CompressionSpec("nuq", bits=bits, bucket_size=BUCKET,
                                      scaling="l2"),
            "qsgd-max": CompressionSpec("qsgd", bits=bits,
                                        bucket_size=BUCKET),
        }
        measured = {
            name: measure_error(spec, gradient,
                                np.random.default_rng(1)).relative
            for name, spec in variants.items()
        }
        errors[bits] = measured
        rows.append([bits] + [f"{measured[k]:.4f}"
                              for k in ("qsgd-l2", "nuq-l2", "qsgd-max")])
    return rows, errors


def test_ablation_quantizer_design(benchmark):
    rows, errors = run_once(benchmark, campaign)
    table = format_table(
        "Ablation — relative compression error by quantizer (bucket 128)",
        ["bits", "QSGD (L2)", "NUQSGD (L2)", "QSGD (max, CGX)"],
        rows,
        note="NUQSGD beats L2-QSGD at low bits (its claim); CGX's "
             "max-scaled small-bucket grid beats both at every width, "
             "justifying the default operator.",
    )
    emit("ablation_quantizers", table)

    # NUQSGD's low-bit advantage over the original QSGD
    for bits in [3, 4]:
        assert errors[bits]["nuq-l2"] < errors[bits]["qsgd-l2"], bits
    # CGX's operator dominates at every bit-width
    for bits in BITS:
        assert errors[bits]["qsgd-max"] <= \
            min(errors[bits]["qsgd-l2"], errors[bits]["nuq-l2"]), bits
    # uniform max-scaled error falls monotonically with bits
    maxes = [errors[b]["qsgd-max"] for b in BITS]
    assert maxes == sorted(maxes, reverse=True)

"""Extension: training resilience under seeded chaos campaigns.

Runs the three named :mod:`repro.faults` campaigns (persistent
straggler, lossy link, crash/rejoin) against the same MLP recipe and
compares each faulted run to the fault-free run: final loss must stay
within tolerance, the retry/fallback counters must show the resilience
policies actually engaged, and a same-seed re-run must produce a
byte-identical fault event log (the determinism contract the analysis
FLT003 rule also enforces).

Each campaign then runs a second time in *supervised* mode — recovery
driven by the heartbeat phi-accrual detector instead of the fault-plan
oracle — and must match the oracle run's convergence while reading the
oracle zero times and raising zero false suspicions (the contracts the
analysis HLT rules certify).
"""

from common import emit, format_table, run_once, write_bench_json

from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.faults import CAMPAIGNS, ResiliencePolicy, make_campaign
from repro.training import train_family

FAMILY = "mlp"
WORLD = 4
STEPS = 30
SEED = 0
LOSS_TOLERANCE = 0.02   # absolute final-loss drift allowed vs fault-free

# The counters that prove each campaign's resilience machinery engaged.
EXPECTED_ENGAGEMENT = {
    "straggler": ("quorum_steps",),
    "lossy-link": ("retries",),
    "crash-rejoin": ("crashes", "rejoins", "checkpoint_restores"),
}


def _config() -> CGXConfig:
    return CGXConfig(compression=CompressionSpec("qsgd", bits=4))


def campaign():
    clean = train_family(FAMILY, world_size=WORLD, config=_config(),
                         steps=STEPS, seed=SEED)
    rows = [[FAMILY, "(fault-free)", f"{clean.final_loss:.4f}",
             f"{clean.final_metric:.3f}", 0, "-"]]
    results = {}
    for name in CAMPAIGNS:
        plan = make_campaign(name, world=WORLD, seed=SEED)
        policy = ResiliencePolicy()
        result = train_family(FAMILY, world_size=WORLD, config=_config(),
                              steps=STEPS, seed=SEED,
                              fault_plan=plan, policy=policy)
        counters = result.fault_summary or {}
        engaged = ",".join(f"{k}={counters[k]}"
                           for k in EXPECTED_ENGAGEMENT[name]
                           if counters.get(k))
        rows.append([FAMILY, name, f"{result.final_loss:.4f}",
                     f"{result.final_metric:.3f}", result.retries_total,
                     engaged or "-"])
        results[name] = (result, clean)
        supervised = train_family(FAMILY, world_size=WORLD, config=_config(),
                                  steps=STEPS, seed=SEED,
                                  fault_plan=make_campaign(name, world=WORLD,
                                                           seed=SEED),
                                  policy=ResiliencePolicy(), supervised=True)
        counters = supervised.fault_summary or {}
        detected = ",".join(f"{k}={counters[k]}"
                            for k in ("suspected_crashes",
                                      "rejoin_admissions",
                                      "straggler_demotions")
                            if counters.get(k))
        rows.append([FAMILY, f"{name} (supervised)",
                     f"{supervised.final_loss:.4f}",
                     f"{supervised.final_metric:.3f}",
                     supervised.retries_total, detected or "-"])
        results[f"{name} (supervised)"] = (supervised, result)
    return rows, results


def test_fault_campaign_resilience(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        f"Chaos campaigns — {FAMILY}, {WORLD} workers, {STEPS} steps, "
        "qsgd 4-bit",
        ["family", "campaign", "final loss", "metric", "retries",
         "engagement"],
        rows,
        note="Each campaign's final loss stays within tolerance of the "
             "fault-free run while the engagement column shows the "
             "policy layer (retry, quorum demotion, crash recovery) "
             "doing real work.",
    )
    emit("fault_campaigns", table)
    write_bench_json("faults", [
        {
            "campaign": name,
            "final_loss": result.final_loss,
            "final_metric": result.final_metric,
            "reference_loss": reference.final_loss,
            "retries": result.retries_total,
            "counters": dict(result.fault_summary or {}),
        }
        for name, (result, reference) in sorted(results.items())
    ], extra={"family": FAMILY, "world": WORLD, "steps": STEPS,
              "seed": SEED})

    for name, (result, clean) in results.items():
        counters = result.fault_summary or {}
        drift = abs(result.final_loss - clean.final_loss)
        assert drift < LOSS_TOLERANCE, (name, drift)
        # resilience must never silently deliver garbage: every corrupt
        # payload the channel detects is retransmitted, not passed on.
        assert counters.get("corrupt_delivered", 0) == 0, (name, counters)
        if name.endswith("(supervised)"):
            # observation-driven recovery: zero oracle reads, and
            # convergence parity with the oracle path (outer assert)
            assert counters.get("oracle_reads", 0) == 0, (name, counters)
            assert counters.get("heartbeats", 0) > 0, (name, counters)
            false = counters.get("false_suspicions", 0)
            if name.startswith("lossy-link"):
                # 12% beat loss can string two drops together (the
                # designed phi_crash threshold); any false suspicion
                # must be healed by a rejoin admission, never fatal
                assert false <= counters.get("rejoin_admissions", 0), \
                    (name, counters)
            else:
                assert false == 0, (name, counters)
        else:
            for key in EXPECTED_ENGAGEMENT[name]:
                assert counters.get(key, 0) > 0, (name, key, counters)

"""Extension: multi-tenant fleet scheduling at queue depth.

Sweeps 200 queued training jobs — mixed resnet50 / vgg16 /
transformer_xl, world sizes 2-8, mixed CGX bit-widths with an
uncompressed-NCCL minority — over a 4-node / 32-GPU commodity fleet
under each placement policy, all sharing one link-resource pool.  The
sweep reports fleet throughput, queueing delay (mean/p95), and Jain
fairness per policy, persists ``BENCH_fleet.json``, and enforces the
fleet determinism contract: two same-seed campaigns must produce
byte-identical canonical event logs.
"""

from common import emit, format_table, run_once, write_bench_json

from repro.cluster import make_cluster
from repro.sched import (PLACEMENT_POLICIES, FleetSimulator, compute_metrics,
                         sample_fleet)

MACHINE = "rtx3090-8x"
NODES = 4
N_JOBS = 200
SEED = 7
WORLDS = (2, 4, 8)


def _fleet(policy: str):
    topology = make_cluster(MACHINE, NODES)
    jobs = sample_fleet(N_JOBS, seed=SEED, worlds=WORLDS)
    return FleetSimulator(topology, jobs, policy=policy, seed=SEED).run()


def campaign():
    rows = []
    results = {}
    for policy in PLACEMENT_POLICIES:
        result = _fleet(policy)
        metrics = compute_metrics(result)
        results[policy] = (result, metrics)
        rows.append([
            policy, metrics.completed,
            f"{metrics.makespan:.1f}",
            f"{metrics.fleet_items_per_s:,.0f}",
            f"{metrics.mean_queue_wait:.2f}",
            f"{metrics.p95_queue_wait:.2f}",
            f"{metrics.fairness:.3f}",
            f"{metrics.mean_slowdown:.2f}",
        ])
    return rows, results


def test_fleet_scheduler_sweep(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        f"Fleet scheduling — {N_JOBS} queued jobs on {MACHINE} x{NODES} "
        f"(32 GPUs), seed {SEED}",
        ["policy", "done", "makespan", "items/s", "qwait", "qwait p95",
         "fairness", "slowdown"],
        rows,
        note="Mixed resnet50/vgg16/transformer_xl jobs, worlds 2-8, "
             "CGX 2/4/8-bit with an uncompressed-NCCL minority; one "
             "shared link pool, contention across jobs emerges on "
             "host-memory/QPI/Ethernet links.",
    )
    emit("fleet_scheduler", table)
    write_bench_json("fleet", [
        {
            "policy": policy,
            "completed": m.completed,
            "makespan": m.makespan,
            "fleet_items_per_s": m.fleet_items_per_s,
            "fleet_steps_per_s": m.fleet_steps_per_s,
            "mean_queue_wait": m.mean_queue_wait,
            "p95_queue_wait": m.p95_queue_wait,
            "fairness": m.fairness,
            "mean_slowdown": m.mean_slowdown,
            "total_wire_bytes": m.total_wire_bytes,
        }
        for policy, (_, m) in sorted(results.items())
    ], extra={"machine": MACHINE, "nodes": NODES, "n_jobs": N_JOBS,
              "seed": SEED, "worlds": list(WORLDS)})

    for policy, (result, metrics) in results.items():
        # every queued job must eventually run and depart
        assert metrics.completed == N_JOBS, policy
        # 200 jobs on 32 GPUs is a deep queue: waiting must be real
        assert metrics.mean_queue_wait > 0, policy
        assert metrics.p95_queue_wait >= metrics.mean_queue_wait, policy
        assert 0 < metrics.fairness <= 1, policy
        # sharing the pool can only slow a job down, never speed it up
        assert metrics.mean_slowdown >= 1.0, policy

    # determinism: a same-seed re-run is byte-identical
    packed, _ = results["packed"]
    assert _fleet("packed").log_bytes() == packed.log_bytes()

    # packed and spread must disagree measurably about contention:
    # spread jobs straddle the slow Ethernet, packed jobs pile onto
    # intra-node links — slowdown and throughput cannot coincide
    m_packed = results["packed"][1]
    m_spread = results["spread"][1]
    assert m_packed.mean_slowdown != m_spread.mean_slowdown
    ratio = m_packed.fleet_items_per_s / m_spread.fleet_items_per_s
    assert abs(ratio - 1.0) > 0.05, ratio

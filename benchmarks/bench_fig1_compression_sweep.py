"""Figure 1: compression ratio vs average step time on the 8x RTX3090 box.

The motivating experiment (Section 2.1): "fake" compression transmits
only the first N/gamma elements of each gradient buffer, isolating the
bandwidth term.  For every model the step time must fall toward the
ideal (single-GPU x8) line as gamma grows — demonstrating that
bandwidth, not compute or latency, is the commodity-box bottleneck —
with Transformer-class models needing up to two orders of magnitude of
compression while ResNet50 saturates after ~10x.
"""

from common import emit, format_table, run_once

from repro.report import ascii_chart

from repro.cluster import get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step, single_gpu_step_time

MODELS = ["resnet50", "vgg16", "transformer_xl", "vit", "bert", "gpt2"]
RATIOS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
MACHINE = get_machine("rtx3090-8x")


def sweep():
    rows = []
    series = {}
    for model in MODELS:
        spec = build_spec(model)
        batch = MACHINE.gpu.max_batch_per_gpu(spec)
        ideal = single_gpu_step_time(spec, MACHINE.gpu, batch)
        times = []
        for ratio in RATIOS:
            config = CGXConfig(
                backend="shm", scheme="sra",
                compression=CompressionSpec("fake", ratio=ratio),
            )
            timing = simulate_machine_step(MACHINE, spec, config,
                                           batch_per_gpu=batch)
            times.append(timing.step_time)
        series[model] = (times, ideal)
        rows.append([model] + [f"{t * 1000:.0f}" for t in times]
                    + [f"{ideal * 1000:.0f}"])
    return rows, series


def test_fig1_compression_sweep(benchmark):
    rows, series = run_once(benchmark, sweep)
    table = format_table(
        "Figure 1 — step time (ms) vs fake-compression ratio, 8x RTX3090",
        ["model"] + [f"x{r}" for r in RATIOS] + ["ideal"],
        rows,
        note=("Paper: all models approach the ideal dotted line as "
              "transmission shrinks; Transformers need ~100x, ResNet50 "
              "saturates after ~10x."),
    )
    chart = ascii_chart(
        {model: [(r, t * 1000) for r, t in zip(RATIOS, times)]
         for model, (times, _) in series.items()},
        log_x=True, log_y=True, x_label="compression ratio",
        y_label="step time (ms)",
    )
    emit("fig1_compression_sweep", table + "\n\n" + chart)

    for model, (times, ideal) in series.items():
        # monotone non-increasing and saturating near ideal
        assert all(a >= b * 0.999 for a, b in zip(times, times[1:])), model
        assert times[-1] < 1.25 * ideal, model
    # bandwidth-bound at ratio 1: uncompressed step far above ideal
    assert series["transformer_xl"][0][0] > 2.5 * series["transformer_xl"][1]
    # ResNet50 saturates earlier than Transformer-XL (fewer parameters)
    resnet_times, resnet_ideal = series["resnet50"]
    txl_times, txl_ideal = series["transformer_xl"]
    resnet_sat = next(i for i, t in enumerate(resnet_times)
                      if t < 1.3 * resnet_ideal)
    txl_sat = next(i for i, t in enumerate(txl_times)
                   if t < 1.3 * txl_ideal)
    assert resnet_sat <= txl_sat

"""Table 7 + Figure 5: adaptive compression methods head to head.

For Transformer-XL, each solver (KMEANS = Algorithm 1, Bayes, Linear)
produces a per-layer bit assignment from the layer statistics; we report
compressed size and compression error relative to the static 4-bit
assignment, plus the resulting single-node and multi-node speedups from
the performance model.

Paper Table 7: KMEANS compression 0.68, speedup 1.05 (1-node) / 1.39
(multi-node); Bayes 0.65 / 1.03 / 1.3; Linear 0.53 / 1.02 / 1.13 —
with the text stating KMEANS has the lowest error, best average
compression and highest speedup.
"""

import math

from common import emit, format_table, run_once

from repro.cluster import get_machine, make_cluster
from repro.core import (
    ASSIGNERS,
    CGXConfig,
    assignment_cost_bits,
    assignment_error,
    assignment_wire_fraction,
    brute_force_assign,
    exact_assignment_error_sq,
    exact_uniform_error_sq,
    resolve_bucket,
    synthetic_stats_for_spec,
    uniform_error,
)
from repro.models import build_spec
from repro.training import simulate_machine_step, simulate_step

ALPHA = 3.0
METHODS = ["kmeans", "bayes", "linear"]
PAPER = {"kmeans": (0.68, 1.05, 1.39), "bayes": (0.65, 1.03, 1.3),
         "linear": (0.53, 1.02, 1.13)}

#: sub-instance size for the exact brute-force reference (the full
#: model is far beyond exhaustive search; the heaviest layers carry
#: nearly all transmitted bytes, so the gap there is the one that counts)
GAP_LAYERS = 12


def config_with_bits(bits_by_layer):
    config = CGXConfig.cgx_default()
    base = config.compression
    for name, bits in bits_by_layer.items():
        config.per_layer[name] = base.with_bits(bits, resolve_bucket(bits))
    return config


def budget_utilization(stats, bits, alpha):
    """Certified fraction of the alpha*E4 error budget the plan spends.

    Computed in exact rational arithmetic (the same comparison the plan
    certifier's BWP001 proves), then rooted for display: 1.0 means the
    budget is spent to the last drop, > 1.0 would be a violation.
    """
    err_sq = exact_assignment_error_sq(stats, bits)
    budget_sq = alpha * alpha * exact_uniform_error_sq(stats, 4)
    return math.sqrt(float(err_sq / budget_sq))


def optimality_gap(stats, method, alpha):
    """Byte overhead vs the exact optimum on the heaviest sub-instance.

    Re-runs the solver on the ``GAP_LAYERS`` largest layers and divides
    its transmitted bits by the branch-and-bound optimum's — the
    certified gap the plan certifier ratchets (BWP003), surfaced here
    per Table 7 method.
    """
    subset = sorted(stats, key=lambda s: -s.numel)[:GAP_LAYERS]
    heuristic = ASSIGNERS[method](subset, alpha=alpha)
    optimum = brute_force_assign(subset, alpha=alpha)
    return (assignment_cost_bits(subset, heuristic)
            / assignment_cost_bits(subset, optimum))


def campaign():
    spec = build_spec("transformer_xl")
    stats = synthetic_stats_for_spec(spec)
    machine = get_machine("rtx3090-8x")
    genesis = get_machine("genesis-4x3090")
    cluster = make_cluster("genesis-4x3090", 4)

    static_single = simulate_machine_step(machine, spec,
                                          CGXConfig.cgx_default())
    static_multi_cfg = CGXConfig.cgx_default()
    static_multi_cfg.backend = "nccl"
    static_multi_cfg.scheme = "hier"
    static_multi = simulate_step(spec, genesis.gpu, cluster,
                                 static_multi_cfg)
    e4 = uniform_error(stats, 4)

    rows = []
    results = {}
    for method in METHODS:
        bits = ASSIGNERS[method](stats, alpha=ALPHA)
        size_fraction = assignment_wire_fraction(stats, bits)
        error_ratio = assignment_error(stats, bits) / e4
        utilization = budget_utilization(stats, bits, ALPHA)
        gap = optimality_gap(stats, method, ALPHA)

        single = simulate_machine_step(machine, spec,
                                       config_with_bits(bits))
        multi_cfg = config_with_bits(bits)
        multi_cfg.backend = "nccl"
        multi_cfg.scheme = "hier"
        multi = simulate_step(spec, genesis.gpu, cluster, multi_cfg)
        speedup_1 = static_single.step_time / single.step_time
        speedup_m = static_multi.step_time / multi.step_time
        results[method] = (size_fraction, error_ratio, speedup_1, speedup_m,
                           utilization, gap)
        paper = PAPER[method]
        rows.append([method.upper(), f"{size_fraction:.2f}",
                     f"{error_ratio:.2f}", f"{speedup_1:.2f}",
                     f"{speedup_m:.2f}", f"{utilization:.2f}",
                     f"{gap:.3f}",
                     f"{paper[0]}/{paper[1]}/{paper[2]}"])
    return rows, results


def test_table7_adaptive_methods(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        f"Table 7 / Fig 5 — adaptive methods on Transformer-XL (alpha={ALPHA})",
        ["method", "size vs static", "error vs E4", "speedup 1-node",
         "speedup multi-node", "budget used", "opt gap",
         "paper (size/1-node/multi)"],
        rows,
        note="Orderings to match: KMEANS best compression+speedup; "
             "multi-node gains >> single-node gains.  'budget used' is "
             "the certified fraction of the alpha*E4 error budget spent "
             "(exact arithmetic, must be <= 1); 'opt gap' is the byte "
             f"overhead vs the brute-force optimum on the {GAP_LAYERS} "
             "heaviest layers (1.0 = optimal).",
    )
    emit("table7_adaptive", table)

    kmeans = results["kmeans"]
    for method, (size, error, s1, sm, used, gap) in results.items():
        assert size < 1.0, method                    # saves bandwidth
        assert error <= ALPHA + 1e-6, method         # respects the budget
        assert s1 >= 0.99, method                    # never slower
        assert sm >= s1 - 0.02, method               # multi-node gains more
        assert used <= 1.0, method                   # certified: exact budget
        assert 1.0 <= gap <= 1.75, method            # within the BWP ratchet
    # KMEANS has the best (lowest) size and the highest multi-node speedup
    assert kmeans[0] <= min(r[0] for r in results.values()) + 0.02
    assert kmeans[3] >= max(r[3] for r in results.values()) - 0.02
    # multi-node speedup is substantial (paper: up to 1.39-1.4x)
    assert kmeans[3] > 1.15

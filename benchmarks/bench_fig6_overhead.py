"""Figure 6 (Appendix A): compression-kernel overhead is negligible.

Two runs with identical communication volume: real 4-bit quantization
(kernels run, payload = wire size) vs fake compression tuned to the same
transmitted size (no kernels).  The step-time gap is the quantization
overhead — 1-3% in the paper.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = ["transformer_xl", "vit"]
MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    overheads = {}
    q4 = CompressionSpec("qsgd", bits=4, bucket_size=128)
    for model in MODELS:
        spec = build_spec(model)
        quant_config = CGXConfig.cgx_default()
        quant = simulate_machine_step(MACHINE, spec, quant_config)
        # fake compression with the same wire footprint, zero kernel cost
        fake_config = CGXConfig(
            backend="shm", scheme="sra",
            compression=CompressionSpec(
                "fake", ratio=q4.compression_ratio(1 << 20)),
        )
        fake = simulate_machine_step(MACHINE, spec, fake_config)
        overhead = quant.step_time / fake.step_time - 1.0
        overheads[model] = overhead
        rows.append([model, f"{quant.step_time * 1000:.1f}",
                     f"{fake.step_time * 1000:.1f}",
                     f"{overhead * 100:.1f}%"])
    return rows, overheads


def test_fig6_compression_overhead(benchmark):
    rows, overheads = run_once(benchmark, campaign)
    table = format_table(
        "Figure 6 — quantization vs fake compression (same wire bytes)",
        ["model", "quantized step (ms)", "fake step (ms)", "overhead"],
        rows,
        note="Paper: the impact of the compression function is negligible "
             "(1-3% of step time).",
    )
    emit("fig6_overhead", table)

    # ViT matches the paper's 1-3% band; Transformer-XL shows ~10% here
    # because our simulator schedules kernel->transfer at whole-chunk
    # granularity while real CGX pipelines sub-chunk slices (the giant
    # embedding magnifies the packing gap).  Recorded in EXPERIMENTS.md.
    assert -0.02 < overheads["vit"] < 0.04
    for model, overhead in overheads.items():
        assert -0.02 < overhead < 0.13, (model, overhead)

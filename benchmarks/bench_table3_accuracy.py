"""Table 3: accuracy recovery — baseline vs CGX (4-bit) on six models.

The central accuracy claim: training every model family with 4-bit
bucketed quantization under the *unchanged* baseline recipe recovers the
baseline metric within the MLPerf-style 1% band.  Here the models are
scaled down and the datasets synthetic (DESIGN.md §2), so the band is
checked on the synthetic tasks' metrics; perplexity is compared
relatively.
"""

from common import emit, format_table, run_once

from repro.core import CGXConfig
from repro.training import train_family

FAMILIES = ["resnet50", "vgg16", "vit", "transformer_xl", "gpt2", "bert"]
STEPS = {  # reduced budgets that still reach a stable optimum
    "resnet50": 100, "vgg16": 100, "vit": 120,
    "transformer_xl": 120, "gpt2": 120, "bert": 150,
}
WORLD_SIZE = 4


def campaign():
    rows = []
    results = {}
    for family in FAMILIES:
        base = train_family(family, world_size=WORLD_SIZE, config=None,
                            steps=STEPS[family], eval_every=STEPS[family])
        cgx = train_family(family, world_size=WORLD_SIZE,
                           config=CGXConfig.cgx_default(),
                           steps=STEPS[family], eval_every=STEPS[family])
        results[family] = (base, cgx)
        rows.append([
            family, base.metric_name,
            f"{base.final_metric:.4g}", f"{cgx.final_metric:.4g}",
            f"{cgx.compression_ratio:.1f}x",
        ])
    return rows, results


def test_table3_accuracy_recovery(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Table 3 — accuracy: baseline vs CGX 4-bit (scaled-down, synthetic)",
        ["model", "metric", "baseline", "CGX", "gradient compression"],
        rows,
        note="Paper band: CGX within 1% of baseline on every model "
             "(Top-1 / F1 higher-better; perplexity lower-better).",
    )
    emit("table3_accuracy", table)

    for family, (base, cgx) in results.items():
        if base.metric_name == "perplexity":
            # relative perplexity gap within a few percent
            gap = abs(cgx.final_metric - base.final_metric) \
                / base.final_metric
            assert gap < 0.10, (family, base.final_metric, cgx.final_metric)
        else:
            assert cgx.final_metric > base.final_metric - 0.03, family
        assert cgx.compression_ratio > 1.5, family

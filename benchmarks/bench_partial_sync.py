"""Extension: partial (quorum) collectives under stragglers.

Implements the hybrid-synchronization direction the paper's conclusion
points at (Li et al. partial collectives / elastic consistency): with
one chronic 1.5x straggler, full synchronization drags every step to
the straggler's pace, while a quorum-of-7 reduction lets the fast ranks
proceed and ships the result to the laggard without waiting.  The
skipped gradients ride carry buffers, so nothing is lost (verified in
tests/test_partial.py); here we measure the step-time recovery.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.collectives import time_allreduce, time_partial_allreduce
from repro.compression import CompressionSpec
from repro.models import build_spec

MACHINE = get_machine("rtx3090-8x")
STRAGGLER_DELAY = 0.5
Q4 = CompressionSpec("qsgd", bits=4, bucket_size=128)


def campaign():
    spec = build_spec("vit")
    numel = spec.num_parameters
    gpu = MACHINE.gpu
    compute = gpu.step_compute_time(spec, gpu.max_batch_per_gpu(spec))
    ready = [compute] * 8
    ready[5] = compute * (1 + STRAGGLER_DELAY)

    rows = []
    results = {}
    # full synchronization: the collective waits for rank 5
    net = MACHINE.network("shm")
    full = time_allreduce(net, list(range(8)), numel, Q4, "sra",
                          ready=ready, chunk_streams=4)
    results["full-sync"] = max(full.end_times)
    rows.append(["full sync (quorum 8)",
                 f"{max(full.end_times) * 1000:.1f}",
                 f"{max(full.end_times) * 1000:.1f}"])

    # quorum of 7: fast ranks proceed, rank 5 catches up on its own
    net = MACHINE.network("shm")
    partial = time_partial_allreduce(net, list(range(8)), numel, Q4,
                                     quorum=7, ready=ready,
                                     chunk_streams=4)
    fast = max(t for i, t in enumerate(partial.end_times) if i != 5)
    results["partial"] = fast
    results["partial-laggard"] = partial.end_times[5]
    rows.append(["partial (quorum 7)", f"{fast * 1000:.1f}",
                 f"{partial.end_times[5] * 1000:.1f}"])

    # reference: no straggler at all
    net = MACHINE.network("shm")
    clean = time_allreduce(net, list(range(8)), numel, Q4, "sra",
                           ready=compute, chunk_streams=4)
    results["clean"] = max(clean.end_times)
    rows.append(["no straggler (reference)",
                 f"{max(clean.end_times) * 1000:.1f}",
                 f"{max(clean.end_times) * 1000:.1f}"])
    return rows, results


def test_partial_sync_mitigates_stragglers(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Partial collectives — ViT step with one 1.5x straggler, 8x3090",
        ["configuration", "fast-rank finish (ms)", "laggard finish (ms)"],
        rows,
        note="Quorum reduction returns the fast ranks to near the "
             "clean (no-straggler) step time; the laggard is bounded by "
             "its own compute rather than bounding everyone.",
    )
    emit("partial_sync", table)

    # full sync inherits the straggler delay
    assert results["full-sync"] > 1.3 * results["clean"]
    # the quorum path recovers most of it for the fast ranks
    assert results["partial"] < 1.12 * results["clean"]
    # the laggard is bounded by its own compute, not by further waiting
    assert results["partial-laggard"] < results["full-sync"] * 1.1

"""Table 1: server-grade vs consumer-grade GPU envelopes.

Static columns come from the GPU catalog; the two throughput columns
(ResNet50 imgs/s, Transformer-XL tokens/s) are *measured* by running the
single-GPU step simulation, verifying the calibration closes the loop on
the paper's NVIDIA-Deep-Learning-Examples numbers.
"""

from common import emit, format_table, run_once

from repro.cluster import GPUS
from repro.models import build_spec

PAPER_NUMBERS = {  # (resnet50 imgs/s, txl tokens/s) from Table 1
    "V100": (1226, 37_000),
    "A6000": (566, 39_000),
    "RTX3090": (850, 39_000),
    "RTX2080Ti": (484, 13_000),
}


def measure():
    resnet = build_spec("resnet50")
    txl = build_spec("transformer_xl")
    rows = []
    measured = {}
    for name, gpu in GPUS.items():
        batch = 32
        resnet_step = gpu.step_compute_time(resnet, batch)
        resnet_thr = batch / resnet_step
        txl_step = gpu.step_compute_time(txl, batch)
        txl_thr = batch * txl.items_per_sample / txl_step
        measured[name] = (resnet_thr, txl_thr)
        rows.append([
            name, gpu.arch, gpu.sm_count, gpu.tensor_cores,
            "Yes" if gpu.gpu_direct else "No", gpu.memory_gb,
            f"{gpu.tdp_watts} W",
            f"{resnet_thr:.0f}", f"{txl_thr / 1000:.0f}K",
        ])
    return rows, measured


def test_table1_gpu_envelopes(benchmark):
    rows, measured = run_once(benchmark, measure)
    table = format_table(
        "Table 1 — GPU envelopes with measured single-GPU training throughput",
        ["GPU", "Arch", "SM", "TensorCores", "GPUDirect", "RAM GB", "TDP",
         "ResNet50 imgs/s", "TXL tokens/s"],
        rows,
        note="Throughput columns are simulated; paper values: "
             + ", ".join(f"{k}={v[0]}/{v[1]}" for k, v in
                         PAPER_NUMBERS.items()),
    )
    emit("table1_gpus", table)
    # calibration: compute-only single-GPU throughput matches the anchors
    # (the optimizer term is excluded here, as in a pure fwd/bwd benchmark)
    for name, (paper_resnet, paper_txl) in PAPER_NUMBERS.items():
        resnet_thr, txl_thr = measured[name]
        assert abs(resnet_thr - paper_resnet) / paper_resnet < 0.01, name
        assert abs(txl_thr - paper_txl) / paper_txl < 0.01, name

"""Table 6 + Figure 7: CGX vs PowerSGD vs GRACE on the 8x RTX3090 box.

Three compression systems on identical hardware:

* CGX — per-layer 4-bit QSGD, SRA over SHM;
* PowerSGD — rank 4 (CNNs) / rank 8 (Transformers), fp32 only, factors
  allreduced densely (the PyTorch-native hook);
* GRACE — QSGD through allgather with INT8 wire and no bucketing.

Paper ordering: CGX > PowerSGD > baseline >> GRACE.
"""

from common import emit, format_table, run_once

from repro.baselines import grace_config
from repro.cluster import get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = {"resnet50": 4, "transformer_xl": 8, "bert": 8}  # powersgd rank
PAPER = {  # items/s rows from Table 6
    "resnet50": (1900, 2900, 2600, 1000),
    "transformer_xl": (170_000, 260_000, 220_000, 30_000),
    "bert": (17_500, 38_700, 38_300, 14_300),
}
MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    results = {}
    for model, rank in MODELS.items():
        spec = build_spec(model)
        base = simulate_machine_step(MACHINE, spec,
                                     CGXConfig.baseline_nccl(),
                                     plan_mode="fused")
        cgx = simulate_machine_step(MACHINE, spec, CGXConfig.cgx_default())
        powersgd_config = CGXConfig(
            backend="shm", scheme="sra",
            compression=CompressionSpec("powersgd", rank=rank),
        )
        powersgd = simulate_machine_step(MACHINE, spec, powersgd_config)
        grace = simulate_machine_step(MACHINE, spec, grace_config(),
                                      plan_mode="fused")
        results[model] = (base, cgx, powersgd, grace)
        paper = PAPER[model]
        rows.append([
            model,
            f"{base.throughput:.0f}", f"{cgx.throughput:.0f}",
            f"{powersgd.throughput:.0f}", f"{grace.throughput:.0f}",
            f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}",
        ])
    return rows, results


def test_table6_framework_comparison(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Table 6 / Fig 7 — items/s on 8x RTX3090: baseline/CGX/PowerSGD/GRACE",
        ["model", "baseline", "CGX", "PowerSGD", "GRACE",
         "paper (base/CGX/PSGD/GRACE)"],
        rows,
        note="Orderings to match: CGX >= PowerSGD > baseline; "
             "GRACE ~3x below CGX.",
    )
    emit("table6_frameworks", table)

    for model, (base, cgx, powersgd, grace) in results.items():
        assert cgx.throughput >= powersgd.throughput * 0.95, model
        assert powersgd.throughput > base.throughput, model
        assert cgx.throughput > 1.8 * grace.throughput, model
    # on BERT (compute-bound, fp32) GRACE collapses to ~the baseline
    base, _, _, grace = results["bert"]
    assert grace.throughput < 1.15 * base.throughput

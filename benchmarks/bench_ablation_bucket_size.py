"""Ablation: the bucket-size trade-off (paper Section 4, "Quantization").

"Larger buckets lead to faster and higher compression, but higher
per-element error.  Therefore, one has to pick the bucket size
appropriate for the chosen bit-width empirically."

This bench sweeps the bucket size at 4 bits and measures (a) wire size,
(b) compression error, and (c) end-metric of a scaled Transformer run —
reproducing why the paper lands on 1024 for CNNs but needs 128 for
Transformers.
"""

import numpy as np

from common import emit, format_table, run_once

from repro.compression import CompressionSpec, measure_error
from repro.core import CGXConfig
from repro.training import train_family

BUCKETS = [32, 128, 1024, 8192]
TRAIN_BUCKETS = [128, 8192]
STEPS = 100


def campaign():
    rng = np.random.default_rng(0)
    gradient = rng.normal(size=1 << 17).astype(np.float32)
    rows = []
    sweep = {}
    for bucket in BUCKETS:
        spec = CompressionSpec("qsgd", bits=4, bucket_size=bucket)
        stats = measure_error(spec, gradient, np.random.default_rng(1))
        sweep[bucket] = (stats.relative, spec.wire_bytes(gradient.size))
        rows.append([bucket, f"{stats.relative:.4f}",
                     f"{spec.wire_bytes(gradient.size)}",
                     f"{spec.compression_ratio(gradient.size):.2f}x"])

    # end-to-end: a Transformer trained at bucket 128 vs bucket 8192
    metrics = {}
    for bucket in TRAIN_BUCKETS:
        config = CGXConfig.cgx_default(bucket)
        result = train_family("transformer_xl", world_size=2, config=config,
                              steps=STEPS, eval_every=STEPS)
        metrics[bucket] = result.final_metric
    return rows, sweep, metrics


def test_ablation_bucket_size(benchmark):
    rows, sweep, metrics = run_once(benchmark, campaign)
    table = format_table(
        "Ablation — bucket size at 4 bits: error vs wire size",
        ["bucket", "rel error", "wire bytes (128K elems)", "compression"],
        rows,
        note=f"Scaled TXL perplexity after {STEPS} steps: "
             + ", ".join(f"bucket {b}: {m:.1f}"
                         for b, m in metrics.items())
             + " (paper: Transformers need bucket 128 to recover).",
    )
    emit("ablation_bucket_size", table)

    # error grows with bucket size, wire shrinks
    errs = [sweep[b][0] for b in BUCKETS]
    wires = [sweep[b][1] for b in BUCKETS]
    assert errs == sorted(errs)
    assert wires == sorted(wires, reverse=True)
    # the small bucket trains at least as well (lower perplexity)
    assert metrics[128] <= metrics[8192] * 1.05

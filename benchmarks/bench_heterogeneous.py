"""Section 6.2 "Heterogeneous compression": TopK on embeddings.

CGX can apply different *methods* per layer: TopK-SGD with error
feedback (1% density) on the naturally sparse Transformer embeddings,
quantization elsewhere.  The paper measures only ~3% extra speedup over
pure quantization — the system is already close to the bandwidth
ceiling — and we verify both the modest gain and that the heterogeneous
data path still trains.
"""

import numpy as np

from common import emit, format_table, run_once, write_bench_json

from repro.cluster import get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import (
    DataParallelTrainer,
    get_recipe,
    make_task,
    simulate_machine_step,
)

MACHINE = get_machine("rtx3090-8x")


def campaign():
    spec = build_spec("transformer_xl")
    quant = simulate_machine_step(MACHINE, spec, CGXConfig.cgx_default())

    hetero_config = CGXConfig.cgx_default()
    hetero_config.per_layer["word_emb.weight"] = CompressionSpec(
        "topk", density=0.01, error_feedback=True)
    hetero = simulate_machine_step(MACHINE, spec, hetero_config)
    speedup = quant.step_time / hetero.step_time

    # data-path sanity: heterogeneous spec still trains the scaled model
    recipe = get_recipe("transformer_xl")
    config = CGXConfig.cgx_default(recipe.bucket_size)
    config.per_layer["embed.weight"] = CompressionSpec(
        "topk", density=0.05, error_feedback=True)
    task = make_task("transformer_xl", batch_size=recipe.batch_size,
                     **recipe.kwargs())
    trainer = DataParallelTrainer(task, world_size=2, config=config,
                                  recipe=recipe, seed=2)
    result = trainer.train(steps=80, eval_every=80)
    in_sync = trainer.in_sync()

    rows = [
        ["quantization only", f"{quant.step_time * 1000:.1f}",
         f"{quant.wire_bytes / 1e6:.0f}", "-"],
        ["topk embeddings + quant", f"{hetero.step_time * 1000:.1f}",
         f"{hetero.wire_bytes / 1e6:.0f}", f"{(speedup - 1) * 100:.1f}%"],
    ]
    return rows, speedup, result.final_metric, in_sync


def test_heterogeneous_compression(benchmark):
    rows, speedup, perplexity, in_sync = run_once(benchmark, campaign)
    table = format_table(
        "Heterogeneous compression — TopK(1%)+EF embeddings, TXL, 8x3090",
        ["configuration", "step (ms)", "wire MB", "extra speedup"],
        rows,
        note=f"Paper: ~3% extra speedup only (system already near the "
             f"bandwidth ceiling).  Scaled-model training with the "
             f"heterogeneous data path reached perplexity "
             f"{perplexity:.1f} and stayed in sync: {in_sync}.",
    )
    emit("heterogeneous", table)
    write_bench_json("hetero", [
        {"configuration": "quant", "step_ms": float(rows[0][1]),
         "wire_mb": float(rows[0][2])},
        {"configuration": "topk+quant", "step_ms": float(rows[1][1]),
         "wire_mb": float(rows[1][2]), "extra_speedup": speedup - 1},
    ], extra={"perplexity": perplexity, "in_sync": in_sync})

    assert 1.0 <= speedup < 1.25   # a real but modest gain
    assert in_sync
    assert np.isfinite(perplexity) and perplexity < 64  # vocab size

"""Figure 10: time per iteration under different reduction schemes.

SRA wins on the commodity box for two reasons the paper gives: lower
latency (two rounds) and lower compression error (two quantizations vs
N for Ring, log N for Tree) — the error side is verified in the
collectives tests; here the timing side is regenerated.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = ["transformer_xl", "vit"]
SCHEMES = ["sra", "ring", "tree", "allgather", "ps"]
MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    results = {}
    for model in MODELS:
        spec = build_spec(model)
        times = {}
        for scheme in SCHEMES:
            config = CGXConfig.cgx_default()
            config.scheme = scheme
            timing = simulate_machine_step(MACHINE, spec, config)
            times[scheme] = timing.step_time
        results[model] = times
        rows.append([model] + [f"{times[s] * 1000:.1f}" for s in SCHEMES])
    return rows, results


def test_fig10_reduction_schemes(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Figure 10 — step time (ms) by reduction scheme, 4-bit CGX, 8x3090",
        ["model"] + SCHEMES,
        rows,
        note="Paper: SRA best; Ring close; Tree and gather-based schemes "
             "clearly worse.",
    )
    emit("fig10_reductions", table)

    for model, times in results.items():
        assert times["sra"] <= min(times.values()) * 1.05, model
        assert times["tree"] > times["sra"], model
        assert times["allgather"] > times["sra"], model
        assert times["ps"] > times["sra"], model

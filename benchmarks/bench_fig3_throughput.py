"""Figure 3: throughput bars for NCCL / QNCCL / CGX / ideal across
machines and GPU counts.

The paper's headline plot: on commodity boxes NCCL stays under 50% of
linear scaling for large models and CGX recovers 80-90%, letting the
8x RTX3090 machine match or exceed the DGX-1; on NVLink machines the
baseline already scales and compression is unnecessary.
"""

from common import emit, format_table, run_once, write_bench_json

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.core.qnccl import qnccl_config
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = ["resnet50", "transformer_xl", "vit", "bert"]
COMMODITY = ["rtx2080-8x", "rtx3090-8x"]
CLOUD = ["dgx1", "a6000-8x"]
GPU_COUNTS = [2, 4, 8]


def run_campaign():
    rows = []
    results = {}
    for model in MODELS:
        spec = build_spec(model)
        for machine_name in COMMODITY + CLOUD:
            machine = get_machine(machine_name)
            for n in GPU_COUNTS:
                base = simulate_machine_step(
                    machine, spec, CGXConfig.baseline_nccl(),
                    n_gpus=n, plan_mode="fused")
                entry = {"nccl": base, "ideal": base.ideal_throughput * 1}
                row = [model, machine_name, n, f"{base.throughput:.0f}"]
                if machine_name in COMMODITY:
                    qn = simulate_machine_step(machine, spec, qnccl_config(),
                                               n_gpus=n, plan_mode="fused")
                    cgx = simulate_machine_step(machine, spec,
                                                CGXConfig.cgx_default(),
                                                n_gpus=n)
                    entry["qnccl"] = qn
                    entry["cgx"] = cgx
                    row += [f"{qn.throughput:.0f}", f"{cgx.throughput:.0f}"]
                else:
                    row += ["-", "-"]
                row.append(f"{base.ideal_throughput:.0f}")
                results[(model, machine_name, n)] = entry
                rows.append(row)
    return rows, results


def test_fig3_throughput_bars(benchmark):
    rows, results = run_once(benchmark, run_campaign)
    table = format_table(
        "Figure 3 — throughput (items/s): NCCL / QNCCL / CGX / ideal",
        ["model", "machine", "gpus", "nccl", "qnccl", "cgx", "ideal"],
        rows,
        note="Paper: commodity NCCL < 50% linear at 8 GPUs; CGX 80-90%, "
             "2-3x self-speedup; 3090+CGX matches DGX-1.",
    )
    emit("fig3_throughput", table)
    write_bench_json("fig3", [
        {
            "model": model, "machine": machine_name, "gpus": n,
            **{method: timing.throughput if hasattr(timing, "throughput")
               else timing
               for method, timing in entry.items()},
        }
        for (model, machine_name, n), entry in sorted(results.items())
    ])

    for model in MODELS:
        entry = results[(model, "rtx3090-8x", 8)]
        base, cgx, qn = entry["nccl"], entry["cgx"], entry["qnccl"]
        assert base.scaling_efficiency < 0.55, model
        assert cgx.throughput > 1.8 * base.throughput, model
        assert qn.throughput >= base.throughput, model
        assert cgx.throughput >= qn.throughput * 0.98, model
        dgx = results[(model, "dgx1", 8)]["nccl"]
        assert dgx.scaling_efficiency > 0.55, model
    # the headline: commodity + CGX in the DGX-1 class for ViT and BERT
    for model in ["vit", "bert"]:
        cgx = results[(model, "rtx3090-8x", 8)]["cgx"]
        dgx = results[(model, "dgx1", 8)]["nccl"]
        assert cgx.throughput > 0.95 * dgx.throughput, model

"""Table 5: multi-node training over 4 nodes of 4x RTX3090.

Gigabit-class inter-node links collapse the uncompressed baseline; CGX
with hierarchical reduction (intra-node fast transport + compressed
inter-node exchange) recovers multi-x throughput.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine, make_cluster
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_step

MODELS = ["resnet50", "vit", "transformer_xl", "bert"]
PAPER = {  # items/s from Table 5
    "resnet50": (564, 2300),
    "vit": (34, 235),
    "transformer_xl": (32_000, 85_000),
    "bert": (1_400, 12_000),
}


def campaign():
    machine = get_machine("genesis-4x3090")
    cluster = make_cluster("genesis-4x3090", 4)
    rows = []
    results = {}
    for model in MODELS:
        spec = build_spec(model)
        base = simulate_step(spec, machine.gpu, cluster,
                             CGXConfig.baseline_nccl(), plan_mode="fused")
        cgx_config = CGXConfig.cgx_default()
        cgx_config.backend = "nccl"   # SHM is intra-node only
        cgx_config.scheme = "hier"
        cgx = simulate_step(spec, machine.gpu, cluster, cgx_config)
        results[model] = (base, cgx)
        paper_base, paper_cgx = PAPER[model]
        rows.append([
            model, f"{base.throughput:.0f}", f"{cgx.throughput:.0f}",
            f"{cgx.throughput / base.throughput:.1f}x",
            f"{paper_base}", f"{paper_cgx}",
            f"{paper_cgx / paper_base:.1f}x",
        ])
    return rows, results


def test_table5_multinode(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Table 5 — 4 nodes x 4x RTX3090: baseline vs CGX (items/s)",
        ["model", "baseline (sim)", "CGX (sim)", "speedup (sim)",
         "baseline (paper)", "CGX (paper)", "speedup (paper)"],
        rows,
        note="Shape to match: multi-x CGX speedups; absolute baseline "
             "collapse on TCP-class inter-node links.",
    )
    emit("table5_multinode", table)

    for model, (base, cgx) in results.items():
        assert cgx.throughput > 2.0 * base.throughput, model
        # the baseline must be badly below linear scaling
        assert base.scaling_efficiency < 0.35, model
    # TXL's simulated numbers should land near the paper's
    base, cgx = results["transformer_xl"]
    assert 15_000 < base.throughput < 60_000
    assert 40_000 < cgx.throughput < 130_000

"""Elastic campaigns: spot churn and autoscale bursts end to end.

Runs the two stock elastic campaigns (``spot-churn``,
``autoscale-burst``) through real compressed training and reports, per
campaign, the harness throughput (steps/s), the membership churn
(graceful exits, provision admissions, missed drains) and the
*recovered-capacity fraction* — the final fleet's aggregate Table 1
throughput over the initial homogeneous fleet's.  Spot churn should
land near 1.0 (the provisioned V100 + RTX 2080 Ti roughly replace two
RTX 3090s); the autoscale burst ends above 1.0 (growth-dominated).
"""

import time

import numpy as np

from common import emit, format_table, run_once, write_bench_json

from repro.cluster.gpu import get_gpu
from repro.core import CGXConfig
from repro.faults import DEFAULT_GPU, check_drain_protocol, make_campaign
from repro.training import DataParallelTrainer, get_recipe, make_task

WORLD = 4
STEPS = 20
CAMPAIGNS = ("spot-churn", "autoscale-burst")


def _fleet_rate(gpus) -> float:
    return sum(get_gpu(g).resnet50_imgs_per_s for g in gpus)


def campaign_runs():
    recipe = get_recipe("mlp")
    rows = []
    for name in CAMPAIGNS:
        plan = make_campaign(name, world=WORLD)
        task = make_task("mlp", batch_size=recipe.batch_size,
                         **recipe.kwargs())
        trainer = DataParallelTrainer(
            task, world_size=WORLD, config=CGXConfig.cgx_default(128),
            recipe=recipe, fault_plan=plan)
        start = time.perf_counter()
        result = trainer.train(steps=STEPS, eval_every=STEPS)
        elapsed = time.perf_counter() - start
        coord = trainer.elastic
        runtime = trainer.fault_runtime
        assert coord is not None and runtime is not None
        initial = _fleet_rate([DEFAULT_GPU] * WORLD)
        final = _fleet_rate(coord.rank_gpus[r] for r in coord.member_list())
        rows.append({
            "campaign": name,
            "steps_per_s": STEPS / elapsed,
            "final_world": len(coord.members),
            "graceful_exits": runtime.counters.graceful_exits,
            "admissions": runtime.counters.provision_admissions,
            "drain_missed": runtime.counters.drain_missed,
            "recovered_capacity": final / initial,
            "final_loss": result.final_loss,
            "protocol_clean": not check_drain_protocol(plan,
                                                       runtime.records),
            "in_sync": trainer.in_sync(),
        })
    return rows


def test_elastic_campaigns(benchmark):
    rows = run_once(benchmark, campaign_runs)
    table = format_table(
        f"Elastic campaigns — mlp x{WORLD}, {STEPS} steps",
        ["campaign", "steps/s", "world", "exits", "joins", "missed",
         "capacity", "loss"],
        [[r["campaign"], f"{r['steps_per_s']:.1f}", r["final_world"],
          r["graceful_exits"], r["admissions"], r["drain_missed"],
          f"{r['recovered_capacity']:.2f}", f"{r['final_loss']:.4f}"]
         for r in rows],
        note="capacity = final fleet Table-1 throughput / initial "
             "homogeneous fleet (1.0 = fully recovered).",
    )
    emit("elastic_campaigns", table)
    write_bench_json("elastic", rows,
                     extra={"world": WORLD, "steps": STEPS})

    by_name = {r["campaign"]: r for r in rows}
    for r in rows:
        assert r["protocol_clean"] and r["in_sync"]
        assert r["drain_missed"] == 0
        assert np.isfinite(r["final_loss"])
    # spot churn roughly replaces lost capacity; the burst grows past it
    assert 0.8 <= by_name["spot-churn"]["recovered_capacity"] <= 1.2
    assert by_name["autoscale-burst"]["recovered_capacity"] > 1.0

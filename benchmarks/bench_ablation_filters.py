"""Ablation: layer filtering — why QNCCL loses accuracy (Section 6.2).

"QNCCL ... has higher accuracy degradation because it cannot perform
layer-wise compression."

Two measurements:

1. **Mechanism** — on real training gradients from a scaled Transformer,
   the gradient error of the *sensitive* tensors (LayerNorm/bias) under
   three plans: CGX (filtered to fp32 -> exact), per-layer quantization
   without filters, and QNCCL's fused blob (buckets cross layer
   boundaries).  The filtered path must be exact and the blob path worst.
2. **Recovery table** — end metrics of all configurations at this scale.
   At scaled-down size every 4-bit variant recovers (the paper too found
   QNCCL recovers once the bucket shrinks to 128); the degradation the
   paper reports appears at full scale, so the end-to-end column is
   reported, not asserted, while the mechanism column is asserted.
"""

import numpy as np

from common import emit, format_table, run_once

from repro.compression import CompressionSpec
from repro.core import CGXConfig, CommunicationEngine
from repro.core.qnccl import qnccl_config
from repro.training import DataParallelTrainer, get_recipe, make_task, \
    train_family

STEPS = 80


def sensitive_error(engine_config, mode, per_worker_grads, sensitive):
    """Mean relative reduction error over the sensitive tensors."""
    engine = CommunicationEngine(engine_config)
    reduced, _ = engine.reduce(per_worker_grads, np.random.default_rng(0),
                               mode=mode)
    errors = []
    for name in sensitive:
        exact = np.mean([g[name] for g in per_worker_grads], axis=0)
        got = reduced[0][name]
        norm = np.linalg.norm(exact)
        if norm == 0:
            continue
        errors.append(float(np.linalg.norm(got - exact) / norm))
    return float(np.mean(errors))


def campaign():
    # gather real gradients from a short training run
    recipe = get_recipe("transformer_xl")
    task = make_task("transformer_xl", batch_size=recipe.batch_size,
                     **recipe.kwargs())
    trainer = DataParallelTrainer(task, world_size=2,
                                  config=CGXConfig.cgx_default(),
                                  recipe=recipe, seed=5)
    for _ in range(5):   # a few steps so gradients are non-degenerate
        trainer.train_step()
    per_worker = []
    for replica in trainer.replicas:
        replica.zero_grad()
        batch = task.sample_batch(np.random.default_rng(9))
        logits = replica(batch[0])
        _, grad = task.loss_and_grad(logits, batch)
        replica.backward(grad)
        per_worker.append({n: p.grad for n, p in replica.named_parameters()
                           if p.grad is not None})
    sensitive = [n for n in per_worker[0]
                 if "ln" in n or n.endswith(".bias") or "norm" in n]

    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    mech = {
        "CGX (filters on)": sensitive_error(
            CGXConfig(compression=spec), "cgx", per_worker, sensitive),
        "no filtering": sensitive_error(
            CGXConfig(compression=spec, filtered_keywords=(),
                      min_compress_numel=0), "cgx", per_worker, sensitive),
        "QNCCL (fused blob)": sensitive_error(
            qnccl_config(bits=4, bucket_size=128), "fused", per_worker,
            sensitive),
    }

    # end-to-end recovery at this scale (reported, not asserted)
    metrics = {}
    for label, config, mode in [
        ("baseline (fp32)", None, "cgx"),
        ("CGX (filters on)", CGXConfig(compression=spec), "cgx"),
        ("QNCCL (fused blob)", qnccl_config(bits=4, bucket_size=128),
         "fused"),
    ]:
        result = train_family("transformer_xl", world_size=2, config=config,
                              steps=STEPS, eval_every=STEPS, mode=mode,
                              seed=7)
        metrics[label] = result.final_metric

    rows = []
    for label in ["CGX (filters on)", "no filtering", "QNCCL (fused blob)"]:
        metric = metrics.get(label)
        rows.append([label, f"{mech[label]:.4f}",
                     f"{metric:.2f}" if metric is not None else "-"])
    rows.append(["baseline (fp32)", "0.0000",
                 f"{metrics['baseline (fp32)']:.2f}"])
    return rows, mech, metrics


def test_ablation_layer_filtering(benchmark):
    rows, mech, metrics = run_once(benchmark, campaign)
    table = format_table(
        "Ablation — sensitive-layer (norm/bias) gradient error by plan",
        ["configuration", "rel error on norm/bias grads",
         "TXL perplexity (scaled)"],
        rows,
        note="Paper: QNCCL degrades accuracy because it cannot filter "
             "layers; at our scaled size all 4-bit variants still recover "
             "(as the paper's QNCCL did at bucket 128), so the mechanism "
             "column carries the assertion.",
    )
    emit("ablation_filters", table)

    # filtered tensors come back exact; blob-mode is the worst
    assert mech["CGX (filters on)"] < 1e-6
    assert mech["no filtering"] > 0.01
    assert mech["QNCCL (fused blob)"] > mech["no filtering"]
    # everything still trains at this scale
    for value in metrics.values():
        assert np.isfinite(value)

"""Table 2: system characteristics of the evaluation machines.

Besides the static inventory, this bench *measures* the two bandwidths
the paper reports in Section 6.1: point-to-point GPU bandwidth (13-16
GB/s on the 3090 box, 6-8 on the 2080 box, ~100 on DGX-1) and the
all-reduce algorithmic bandwidth (~1 GB/s commodity vs tens of GB/s on
NVLink) — the gap that motivates the whole system.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.collectives import time_allreduce
from repro.compression import CompressionSpec

MACHINES = ["dgx1", "a6000-8x", "rtx3090-8x", "rtx2080-8x"]
PROBE_BYTES = 256 * 1024 * 1024


def measure():
    rows = []
    measured = {}
    for name in MACHINES:
        machine = get_machine(name)
        # p2p column: pipelined DMA microbenchmark (Tartan-style), i.e.
        # the bottleneck link bandwidth of the route
        p2p = machine.topology().path_bandwidth(0, 1)
        net = machine.network("nccl")
        numel = PROBE_BYTES // 4
        timing = time_allreduce(net, list(range(machine.n_gpus)), numel,
                                CompressionSpec("none"), "ring")
        allreduce_bw = PROBE_BYTES / timing.end
        measured[name] = (p2p, allreduce_bw)
        rows.append([
            name, f"{machine.n_gpus}x{machine.gpu.name}",
            "NVLink" if machine.interconnect == "nvlink" else "None (bus)",
            f"{p2p / 1e9:.1f}", f"{allreduce_bw / 1e9:.2f}",
        ])
    return rows, measured


def test_table2_machine_characteristics(benchmark):
    rows, measured = run_once(benchmark, measure)
    table = format_table(
        "Table 2 — machines: measured p2p and all-reduce bandwidth (GB/s)",
        ["system", "GPUs", "link", "p2p GB/s", "allreduce GB/s"],
        rows,
        note="Paper: 3090 box 13-16 GB/s p2p but ~1 GB/s allreduce; "
             "2080 box 6-8 / ~1.5; DGX-1 up to 100 / up to 100.",
    )
    emit("table2_machines", table)

    p2p_3090, ar_3090 = measured["rtx3090-8x"]
    assert 10e9 < p2p_3090 < 20e9
    assert 0.4e9 < ar_3090 < 2.5e9          # the commodity collapse
    p2p_dgx, ar_dgx = measured["dgx1"]
    assert p2p_dgx > 50e9 and ar_dgx > 20e9  # NVLink over-provisioning
    p2p_2080, _ = measured["rtx2080-8x"]
    assert p2p_2080 < p2p_3090

"""Table 4: cloud-economics comparison for BERT-QA training.

Genesis's cheap 4x RTX3090 instance is communication-starved under NCCL
but, with CGX, reaches AWS p3.8xlarge-class absolute throughput at ~2x
the throughput-per-dollar.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

PAPER = {  # (tokens/s, tokens/s per $) from Table 4
    "genesis-nccl": (4737, 696),
    "aws-nccl": (14407, 1181),
    "genesis-cgx": (14171, 2083),
}


def campaign():
    spec = build_spec("bert")
    genesis = get_machine("genesis-4x3090")
    aws = get_machine("aws-p3.8xlarge")
    runs = {
        "genesis-nccl": (simulate_machine_step(
            genesis, spec, CGXConfig.baseline_nccl(), plan_mode="fused"),
            genesis),
        "aws-nccl": (simulate_machine_step(
            aws, spec, CGXConfig.baseline_nccl(), plan_mode="fused"), aws),
        "genesis-cgx": (simulate_machine_step(
            genesis, spec, CGXConfig.cgx_default()), genesis),
    }
    rows = []
    econ = {}
    for name, (timing, machine) in runs.items():
        per_dollar = timing.throughput / machine.price_per_hour
        econ[name] = (timing.throughput, per_dollar)
        paper_thr, paper_pd = PAPER[name]
        rows.append([name, f"${machine.price_per_hour}/h",
                     f"{timing.throughput:.0f}", f"{per_dollar:.0f}",
                     f"{paper_thr}", f"{paper_pd}"])
    return rows, econ


def test_table4_cloud_costs(benchmark):
    rows, econ = run_once(benchmark, campaign)
    table = format_table(
        "Table 4 — BERT-QA on cloud instances: throughput and tokens/s per $",
        ["instance", "price", "tok/s (sim)", "tok/s/$ (sim)",
         "tok/s (paper)", "tok/s/$ (paper)"],
        rows,
    )
    emit("table4_cloud", table)

    assert econ["genesis-cgx"][0] > 0.9 * econ["aws-nccl"][0]
    assert econ["genesis-cgx"][1] > 1.5 * econ["aws-nccl"][1]
    assert econ["genesis-cgx"][1] > 2.0 * econ["genesis-nccl"][1]
    # absolute numbers near the paper's
    for name in PAPER:
        sim = econ[name][0]
        assert abs(sim - PAPER[name][0]) / PAPER[name][0] < 0.30, name

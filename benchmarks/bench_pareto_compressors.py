"""Extension: the compression-error Pareto frontier across all operators.

Every compressor in the repository on one axis chart: compression ratio
vs relative error on a realistic gradient mixture.  Reproduces the
qualitative landscape of Section 2.3's survey — quantization occupies
the moderate-ratio/low-error region CGX targets, sparsifiers reach
extreme ratios at proportionally extreme per-step error (recovered only
through error feedback across steps), 1-bit sits between, and PowerSGD's
error depends on the gradient's spectral decay rather than a ratio knob.
"""

import numpy as np

from common import emit, format_table, run_once

from repro.compression import CompressionSpec, make_compressor
from repro.report import ascii_chart

CANDIDATES = [
    ("fp16", CompressionSpec("fp16")),
    ("qsgd-8bit", CompressionSpec("qsgd", bits=8, bucket_size=128)),
    ("qsgd-4bit", CompressionSpec("qsgd", bits=4, bucket_size=128)),
    ("qsgd-2bit", CompressionSpec("qsgd", bits=2, bucket_size=64)),
    ("nuq-4bit", CompressionSpec("nuq", bits=4, bucket_size=128)),
    ("onebit", CompressionSpec("onebit", bucket_size=128)),
    ("topk-10%", CompressionSpec("topk", density=0.10)),
    ("topk-1%", CompressionSpec("topk", density=0.01)),
    ("powersgd-r4", CompressionSpec("powersgd", rank=4)),
]


def gradient_mixture(rng):
    """A matrix gradient with decaying spectrum plus dense noise —
    the shape real layer gradients take (PowerSGD's raison d'etre)."""
    u, _ = np.linalg.qr(rng.normal(size=(256, 64)))
    v, _ = np.linalg.qr(rng.normal(size=(128, 64)))
    spectrum = np.diag(1.0 / (1 + np.arange(64.0)))
    low_rank = (u @ spectrum @ v.T).astype(np.float32)
    noise = 0.002 * rng.normal(size=low_rank.shape).astype(np.float32)
    return low_rank + noise


def campaign():
    rng = np.random.default_rng(0)
    grad = gradient_mixture(rng)
    rows = []
    points = {}
    for name, spec in CANDIDATES:
        comp = make_compressor(spec)
        out = grad
        for _ in range(3):  # warm start for powersgd; no-op for others
            out = comp.roundtrip(grad, np.random.default_rng(1), key=name)
        error = float(np.linalg.norm(out - grad) / np.linalg.norm(grad))
        ratio = spec.compression_ratio(grad.size, grad.shape)
        points[name] = (ratio, error)
        rows.append([name, f"{ratio:.1f}x", f"{error:.4f}"])
    return rows, points


def test_pareto_compressors(benchmark):
    rows, points = run_once(benchmark, campaign)
    chart = ascii_chart(
        {name: [(ratio, max(err, 1e-4))] for name, (ratio, err)
         in points.items()},
        log_x=True, log_y=True, x_label="compression ratio",
        y_label="relative error", height=14,
    )
    table = format_table(
        "Compression-error Pareto landscape (low-rank + noise gradient)",
        ["method", "compression", "relative error"],
        rows,
        note="CGX's 4-bit QSGD sits in the moderate-ratio/low-error "
             "region; sparsifiers trade extreme ratios for per-step "
             "error; PowerSGD exploits the spectrum.",
    )
    emit("pareto_compressors", table + "\n\n" + chart)

    # error grows with compression within the quantizer family
    assert points["qsgd-8bit"][1] < points["qsgd-4bit"][1] \
        < points["qsgd-2bit"][1]
    assert points["qsgd-8bit"][0] < points["qsgd-4bit"][0] \
        < points["qsgd-2bit"][0]
    # sparsifiers: extreme ratio, extreme per-step error
    assert points["topk-1%"][0] > 40
    assert points["topk-1%"][1] > points["qsgd-4bit"][1]
    # PowerSGD beats every same-or-higher-ratio method on this
    # spectrally-decaying gradient
    ps_ratio, ps_err = points["powersgd-r4"]
    for name, (ratio, err) in points.items():
        if name != "powersgd-r4" and ratio >= ps_ratio:
            assert ps_err < err, name
    # fp16 is the near-lossless anchor
    assert points["fp16"][1] < 1e-3

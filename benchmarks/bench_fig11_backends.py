"""Figure 11: time per iteration under different communication backends.

CGX's own shared-memory transport (SHM) outperforms NCCL- and MPI-based
point-to-point backends by up to ~33% (Section 6.2), due to single-copy
transfers and cheaper synchronization; MPI additionally pays a
host/device sync per operation.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = ["resnet50", "transformer_xl", "vit"]
BACKENDS = ["shm", "nccl", "mpi", "gloo"]
MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    results = {}
    for model in MODELS:
        spec = build_spec(model)
        times = {}
        for backend in BACKENDS:
            config = CGXConfig.cgx_default()
            config.backend = backend
            timing = simulate_machine_step(MACHINE, spec, config)
            times[backend] = timing.step_time
        results[model] = times
        rows.append([model]
                    + [f"{times[b] * 1000:.1f}" for b in BACKENDS]
                    + [f"{(times['nccl'] / times['shm'] - 1) * 100:.0f}%"])
    return rows, results


def test_fig11_backends(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Figure 11 — step time (ms) by backend, 4-bit CGX SRA, 8x3090",
        ["model"] + BACKENDS + ["shm advantage vs nccl"],
        rows,
        note="Paper: the SHM backend outperforms other communication "
             "libraries by up to 33%.",
    )
    emit("fig11_backends", table)

    for model, times in results.items():
        assert times["shm"] < times["nccl"] < times["mpi"], model
        # the paper: "NCCL showed better performance than OpenMPI or Gloo"
        assert times["gloo"] > times["nccl"], model
    advantages = [(results[m]["nccl"] / results[m]["shm"] - 1)
                  for m in MODELS]
    assert max(advantages) > 0.10  # a double-digit advantage somewhere

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
computes the same rows/series the paper reports, prints them, and
persists them under ``benchmarks/results/`` so the run's evidence
survives pytest's output capture.  Benchmarks use
``benchmark.pedantic(..., rounds=1)`` because each run is itself a full
simulation/training campaign — wall-clock variance of the *harness* is
not the quantity of interest.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, headers: list[str],
                 rows: list[list], note: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def write_bench_json(area: str, rows: list[dict],
                     extra: dict | None = None) -> str:
    """Persist machine-readable rows as ``results/BENCH_<area>.json``.

    The text tables from :func:`emit` are for humans; this is the
    stable sibling for tooling (CI ratchets, cross-PR comparisons).
    ``rows`` is a list of flat dicts; ``extra`` merges additional
    top-level fields (sweep parameters, environment) into the payload.
    """
    payload: dict = {"version": 1, "area": area, "rows": rows}
    if extra:
        payload.update(extra)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{area}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_once(benchmark, fn):
    """Run a campaign exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

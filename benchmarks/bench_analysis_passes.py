"""Extension: wall-time budget of the static-analysis suite.

CI runs ``python -m repro.analysis --all`` on every push, so the suite's
cost is part of the development loop: this benchmark times each of the
ten passes individually, measures the schedule simulator's throughput
(trace events generated per second across the liveness battery), and
persists both a human-readable table and a machine-readable
``BENCH_analysis.json`` for tooling to ratchet against.
"""

import json
import os
import time

from common import RESULTS_DIR, emit, format_table, run_once

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_analysis.json")


def _timed_passes() -> dict[str, float]:
    """Wall-time per analysis pass, in seconds, in CI execution order."""
    from repro.analysis.contracts import verify_contracts
    from repro.analysis.health import verify_health
    from repro.analysis.liveness import verify_liveness
    from repro.analysis.overlap import verify_overlap
    from repro.analysis.plans import verify_plans
    from repro.analysis.races import verify_races
    from repro.analysis.rules import run_lint
    from repro.analysis.sched import verify_sched
    from repro.analysis.schedule import verify_schedules
    from repro.analysis.shapes import verify_shapes
    from repro.faults.validate import (verify_crc_detection,
                                       verify_fault_determinism,
                                       verify_fault_schedules)

    src = os.path.join(os.path.dirname(__file__), "..", "src")
    passes = {
        "lint": lambda: run_lint([src]),
        "schedule": verify_schedules,
        "contracts": lambda: (verify_contracts() + verify_crc_detection()
                              + verify_fault_determinism()),
        "races": lambda: verify_races() + verify_fault_schedules(),
        "plans": verify_plans,
        "shapes": verify_shapes,
        "health": verify_health,
        "liveness": verify_liveness,
        "overlap": verify_overlap,
        "sched": verify_sched,
    }
    timings = {}
    for name, battery in passes.items():
        start = time.perf_counter()
        findings = battery()
        timings[name] = time.perf_counter() - start
        assert findings == [], f"{name} pass not clean: {findings[:3]}"
    return timings


def _simulator_throughput() -> dict[str, float]:
    """Events/sec of the schedule simulator across the liveness battery."""
    from repro.faults.cases import liveness_cases, trace_liveness_case

    events = 0
    start = time.perf_counter()
    for case in liveness_cases():
        trace, _ = trace_liveness_case(case)
        events += len(trace.events)
    seconds = time.perf_counter() - start
    return {"events": float(events), "seconds": seconds,
            "events_per_sec": events / seconds if seconds else 0.0}


def analysis_passes():
    timings = _timed_passes()
    sim = _simulator_throughput()
    return timings, sim


def test_bench_analysis_passes(benchmark):
    timings, sim = run_once(benchmark, analysis_passes)
    total = sum(timings.values())

    rows = [[name, f"{seconds:.3f}", f"{100 * seconds / total:.1f}%"]
            for name, seconds in timings.items()]
    rows.append(["total", f"{total:.3f}", "100.0%"])
    emit("analysis_passes", format_table(
        "Static-analysis suite wall time (python -m repro.analysis --all)",
        ["pass", "seconds", "share"], rows,
        note=(f"simulator: {sim['events']:.0f} trace events in "
              f"{sim['seconds']:.3f}s across the liveness battery "
              f"({sim['events_per_sec']:,.0f} events/sec)")))

    payload = {
        "version": 1,
        "passes": {name: {"seconds": seconds}
                   for name, seconds in timings.items()},
        "total_seconds": total,
        "simulator": sim,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert set(payload["passes"]) == {
        "lint", "schedule", "contracts", "races", "plans", "shapes",
        "health", "liveness", "overlap", "sched"}
    assert sim["events"] > 0 and sim["events_per_sec"] > 0

"""Table 8 (Appendix E): the bandwidth-optimization ceiling.

Removing the bandwidth term entirely (fake compression with an extreme
ratio leaves only latencies, per-op overheads and scheduling gaps)
bounds what any compression method can achieve: 88-95% of linear
scaling, with Transformer-XL and BERT capped by their giant embeddings
being emitted last in backward.
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MODELS = ["resnet50", "vgg16", "transformer_xl", "bert", "vit"]
PAPER_CEILING = {"resnet50": 92, "vgg16": 91, "transformer_xl": 95,
                 "bert": 88, "vit": 95}
MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    ceilings = {}
    for model in MODELS:
        spec = build_spec(model)
        config = CGXConfig(
            backend="shm", scheme="sra",
            compression=CompressionSpec("fake", ratio=1e6),
        )
        ceiling = simulate_machine_step(MACHINE, spec, config)
        cgx = simulate_machine_step(MACHINE, spec, CGXConfig.cgx_default())
        ceilings[model] = (ceiling.scaling_efficiency,
                           cgx.scaling_efficiency)
        rows.append([model,
                     f"{ceiling.scaling_efficiency * 100:.0f}%",
                     f"{cgx.scaling_efficiency * 100:.0f}%",
                     f"{PAPER_CEILING[model]}%"])
    return rows, ceilings


def test_table8_bandwidth_ceiling(benchmark):
    rows, ceilings = run_once(benchmark, campaign)
    table = format_table(
        "Table 8 — max scaling with bandwidth removed vs CGX achieved",
        ["model", "ceiling (sim)", "CGX 4-bit (sim)", "ceiling (paper)"],
        rows,
        note="Paper: CGX essentially reaches the ceiling for "
             "ResNet50/VGG16/ViT and approaches it for TXL/BERT "
             "(embedding layers are synchronized last).",
    )
    emit("table8_ceiling", table)

    for model, (ceiling, cgx) in ceilings.items():
        assert ceiling > 0.85, model
        assert cgx <= ceiling + 1e-6, model
    # CNNs/ViT close the gap; TXL retains a visible one (Appendix E)
    for model in ["resnet50", "vit", "vgg16"]:
        ceiling, cgx = ceilings[model]
        assert cgx > 0.9 * ceiling, model
    ceiling_txl, cgx_txl = ceilings["transformer_xl"]
    assert cgx_txl < 0.92 * ceiling_txl

"""Ablation: scheduling knobs — chunk streams, overlap, cross-barrier.

Three of the paper's engineering claims, each isolated:

* SRA chunk-parallel streams give an extra ~5% on Transformer-XL
  (Section 6.2, "Reduction Algorithms");
* overlapping reductions with the backward pass is where most of the
  engine's win lives (losing it collapses toward GRACE's behaviour);
* cross-barrier scheduling "does not provide significant performance in
  a single node setup" for CNNs (Section 4, "Improved Scheduling") —
  and is unavailable to the Transformer recipes anyway because gradient
  clipping needs the full synchronized gradient (Technical Issue 3).
"""

from common import emit, format_table, run_once

from repro.cluster import get_machine
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step

MACHINE = get_machine("rtx3090-8x")


def campaign():
    rows = []
    results = {}

    # chunk streams on Transformer-XL
    txl = build_spec("transformer_xl")
    for streams in [1, 4]:
        config = CGXConfig.cgx_default()
        config.chunk_streams = streams
        timing = simulate_machine_step(MACHINE, txl, config)
        results[f"streams={streams}"] = timing.step_time
        rows.append(["TXL", f"chunk_streams={streams}",
                     f"{timing.step_time * 1000:.1f}"])

    # overlap on/off on ViT (its gradients spread through the whole
    # backward pass, so the overlap window is large; TXL's embedding
    # tail is unoverlappable either way)
    vit = build_spec("vit")
    for overlap in [True, False]:
        config = CGXConfig.cgx_default()
        config.overlap = overlap
        timing = simulate_machine_step(MACHINE, vit, config)
        results[f"overlap={overlap}"] = timing.step_time
        rows.append(["ViT", f"overlap={overlap}",
                     f"{timing.step_time * 1000:.1f}"])

    # cross-barrier on a CNN (tiny effect) — Transformers can't use it
    resnet = build_spec("resnet50")
    for barrier in [False, True]:
        config = CGXConfig.cgx_default()
        config.cross_barrier = barrier
        timing = simulate_machine_step(MACHINE, resnet, config)
        results[f"cross_barrier={barrier}"] = timing.step_time
        rows.append(["ResNet50", f"cross_barrier={barrier}",
                     f"{timing.step_time * 1000:.1f}"])
    return rows, results


def test_ablation_scheduling(benchmark):
    rows, results = run_once(benchmark, campaign)
    table = format_table(
        "Ablation — engine scheduling knobs (step time, ms, 8x3090)",
        ["model", "knob", "step (ms)"],
        rows,
        note="Expected: streams help a few %, losing overlap hurts a lot, "
             "cross-barrier is nearly free on CNNs (paper: 'no significant "
             "performance in a single node setup').",
    )
    emit("ablation_scheduling", table)

    # parallel chunk streams help (paper: ~5%)
    gain = results["streams=1"] / results["streams=4"] - 1
    assert 0.0 < gain < 0.25
    # overlap is a first-order effect
    assert results["overlap=False"] > 1.10 * results["overlap=True"]
    # cross-barrier gains are minor on a CNN (under 10%)
    cb_gain = results["cross_barrier=False"] / results["cross_barrier=True"]
    assert 1.0 <= cb_gain < 1.10

"""Figure 4: Transformer-XL training curves under adaptive schemes.

Perplexity against (simulated) wall-clock time for static 4-bit
compression vs the three adaptive solvers.  Accuracy comes from real
scaled-TXL training with the AdaptiveController retuning bit-widths
mid-run; the time axis uses each configuration's full-size step time
from the performance model, so faster assignments genuinely shift the
curve left — the paper's "adaptive schemes reach the same perplexity
sooner" effect.
"""

from common import emit, format_table, run_once

from repro.report import ascii_chart

from repro.cluster import get_machine, make_cluster
from repro.core import (
    ASSIGNERS,
    AdaptiveController,
    CGXConfig,
    synthetic_stats_for_spec,
)
from repro.core.adaptive import BUCKET_FOR_BITS
from repro.models import build_spec
from repro.training import (
    DataParallelTrainer,
    get_recipe,
    make_task,
    simulate_step,
)

STEPS = 120
EVAL_EVERY = 30
METHODS = ["static", "kmeans", "bayes", "linear"]


def step_time_for(method: str) -> float:
    """Full-size multi-node step time under the method's assignment."""
    spec = build_spec("transformer_xl")
    genesis = get_machine("genesis-4x3090")
    cluster = make_cluster("genesis-4x3090", 4)
    config = CGXConfig.cgx_default()
    config.backend = "nccl"
    config.scheme = "hier"
    if method != "static":
        stats = synthetic_stats_for_spec(spec)
        bits = ASSIGNERS[method](stats, alpha=3.0)
        base = config.compression
        for name, value in bits.items():
            config.per_layer[name] = base.with_bits(
                value, BUCKET_FOR_BITS.get(value, base.bucket_size))
    return simulate_step(spec, genesis.gpu, cluster, config).step_time


def campaign():
    recipe = get_recipe("transformer_xl")
    curves = {}
    times = {}
    for method in METHODS:
        config = CGXConfig.cgx_default(recipe.bucket_size)
        adaptive = None
        if method != "static":
            adaptive = AdaptiveController(config, method=method,
                                          period=20, alpha=3.0)
        task = make_task("transformer_xl", batch_size=recipe.batch_size,
                         **recipe.kwargs())
        trainer = DataParallelTrainer(task, world_size=4, config=config,
                                      recipe=recipe, adaptive=adaptive,
                                      seed=1)
        result = trainer.train(steps=STEPS, eval_every=EVAL_EVERY)
        times[method] = step_time_for(method)
        curves[method] = [(step * times[method], ppl)
                          for step, ppl in result.metric_trace()]
    return curves, times


def test_fig4_adaptive_training_curves(benchmark):
    curves, times = run_once(benchmark, campaign)
    rows = []
    for method, curve in curves.items():
        rows.append([method, f"{times[method] * 1000:.0f}"]
                    + [f"{ppl:.1f}@{t:.0f}s" for t, ppl in curve])
    table = format_table(
        "Figure 4 — TXL perplexity vs simulated time (multi-node)",
        ["method", "step ms"] + [f"eval{i}" for i in
                                 range(len(next(iter(curves.values()))))],
        rows,
        note="Paper: adaptive runs track the static-4bit perplexity while "
             "finishing each step faster (KMEANS fastest).",
    )
    chart = ascii_chart(
        {method: curve for method, curve in curves.items()},
        x_label="simulated seconds", y_label="perplexity",
    )
    emit("fig4_adaptive_training", table + "\n\n" + chart)

    final = {m: curve[-1][1] for m, curve in curves.items()}
    # all methods recover perplexity within a few percent of static
    for method in ["kmeans", "bayes", "linear"]:
        assert final[method] < 1.08 * final["static"], (method, final)
    # adaptive methods take less wall-clock per step than static
    assert times["kmeans"] < times["static"]
    assert times["bayes"] < times["static"]
    assert times["linear"] <= times["static"]

"""Figure 8: the PCIe topology of the commodity RTX machines.

Renders the simulated interconnect: two NUMA roots of four GPUs bridged
by QPI, host-staged peer transfers, and the measured per-route
bandwidth matrix that the schedulers operate on.
"""

from common import emit, run_once

from repro.cluster import get_machine


def render():
    machine = get_machine("rtx3090-8x")
    topo = machine.topology()
    lines = [topo.describe(), "", "route bottleneck bandwidth (GB/s):"]
    header = "      " + " ".join(f"g{d}" for d in range(topo.n_gpus))
    lines.append(header)
    for src in range(topo.n_gpus):
        cells = []
        for dst in range(topo.n_gpus):
            if src == dst:
                cells.append(" -")
            else:
                cells.append(f"{topo.path_bandwidth(src, dst) / 1e9:4.0f}")
        lines.append(f"  g{src}: " + " ".join(cells))
    return topo, "\n".join(lines)


def test_fig8_pcie_topology(benchmark):
    topo, text = run_once(benchmark, render)
    emit("fig8_topology", "Figure 8 — RTX machine PCIe topology\n" + text)

    assert topo.n_gpus == 8
    assert topo.numa_of == [0, 0, 0, 0, 1, 1, 1, 1]
    assert topo.staged_through_host
    # cross-NUMA routes bottleneck on QPI, same-NUMA on PCIe
    assert topo.path_bandwidth(0, 7) < topo.path_bandwidth(0, 1)

"""Tests for the GRACE and PowerSGD-DDP baselines."""

import numpy as np
import pytest

from repro.baselines import GRACE_NO_BUCKETING, PowerSGDReducer, grace_config
from repro.compression import CompressionSpec, make_compressor


# -- GRACE -------------------------------------------------------------------

def test_grace_config_characteristics():
    config = grace_config()
    assert config.scheme == "allgather"
    assert config.compression.bucket_size == GRACE_NO_BUCKETING
    assert config.compression.wire_dtype_bits == 8
    assert config.filtered_keywords == ()


def test_grace_wire_is_int8_even_at_4_bits():
    spec = grace_config(bits=4).compression
    cgx = CompressionSpec("qsgd", bits=4, bucket_size=128)
    n = 1 << 20
    assert spec.wire_bytes(n) > 1.8 * cgx.wire_bytes(n)


def test_grace_unbucketed_error_worse_than_cgx():
    """No bucketing = one scale for the whole tensor = higher error,
    especially on heavy-tailed gradients."""
    rng = np.random.default_rng(0)
    x = rng.standard_t(df=3, size=65_536).astype(np.float32)  # heavy tails
    grace = make_compressor(grace_config(bits=4).compression)
    cgx = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=128))
    err_grace = np.linalg.norm(grace.roundtrip(x, np.random.default_rng(1)) - x)
    err_cgx = np.linalg.norm(cgx.roundtrip(x, np.random.default_rng(1)) - x)
    assert err_grace > 1.5 * err_cgx


# -- PowerSGD reducer -------------------------------------------------------------

def worker_grads(world=4, seed=0):
    out = []
    for w in range(world):
        rng = np.random.default_rng(seed + w)
        out.append({
            "fc.weight": rng.normal(size=(32, 16)).astype(np.float32),
            "fc.bias": rng.normal(size=32).astype(np.float32),
        })
    return out


def test_powersgd_outputs_identical_across_workers():
    reducer = PowerSGDReducer(rank=4)
    outs = reducer.reduce(worker_grads())
    for w in range(1, 4):
        for name in outs[0]:
            np.testing.assert_array_equal(outs[0][name], outs[w][name])


def test_powersgd_bias_reduced_densely_and_exactly():
    grads = worker_grads()
    outs = PowerSGDReducer(rank=4).reduce(grads)
    expected = np.mean([g["fc.bias"] for g in grads], axis=0)
    np.testing.assert_allclose(outs[0]["fc.bias"], expected, rtol=1e-5)


def test_powersgd_matrix_result_is_low_rank():
    grads = worker_grads()
    outs = PowerSGDReducer(rank=2).reduce(grads)
    singular_values = np.linalg.svd(outs[0]["fc.weight"],
                                    compute_uv=False)
    assert np.sum(singular_values > 1e-4) <= 2


def test_powersgd_error_feedback_mean_converges():
    """On a constant full-rank gradient, a rank-2 transmission cannot be
    exact per step, but error feedback guarantees the *cumulative mean*
    of the transmitted updates converges to the true gradient."""
    rng = np.random.default_rng(1)
    target = rng.normal(size=(32, 16)).astype(np.float32)
    reducer = PowerSGDReducer(rank=2)
    steps = 60
    total = np.zeros_like(target)
    errors = []
    for step in range(1, steps + 1):
        out = reducer.reduce([{"w": target.copy()} for _ in range(2)])[0]["w"]
        total += out
        errors.append(float(np.linalg.norm(total / step - target)))
    assert errors[-1] < 0.25 * errors[0]
    assert errors[-1] < 0.2 * np.linalg.norm(target)


def test_powersgd_rejects_fp16():
    reducer = PowerSGDReducer(rank=2)
    grads = [{"w": np.ones((8, 8), dtype=np.float16)}]
    with pytest.raises(TypeError):
        reducer.reduce(grads)
    PowerSGDReducer(rank=2, allow_fp16=True).reduce(
        [{"w": np.ones((8, 8), dtype=np.float16)}])


def test_powersgd_wire_accounting():
    reducer = PowerSGDReducer(rank=4)
    reducer.reduce(worker_grads())
    # fc.weight factors (32+16)*4*4 bytes + dense bias 32*4
    assert reducer.wire_bytes_last == (32 + 16) * 4 * 4 + 32 * 4


def test_powersgd_sum_mode():
    grads = worker_grads(world=3)
    avg = PowerSGDReducer(rank=4, seed=1).reduce(grads, average=True)
    total = PowerSGDReducer(rank=4, seed=1).reduce(grads, average=False)
    np.testing.assert_allclose(total[0]["fc.weight"],
                               3.0 * avg[0]["fc.weight"], rtol=1e-5)


def test_powersgd_invalid_rank():
    with pytest.raises(ValueError):
        PowerSGDReducer(rank=0)


def test_powersgd_reset():
    reducer = PowerSGDReducer(rank=2)
    reducer.reduce(worker_grads())
    assert reducer._q and reducer._errors
    reducer.reset()
    assert not reducer._q and not reducer._errors

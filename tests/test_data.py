"""Tests for synthetic datasets: determinism, shapes, learnability."""

import numpy as np

from repro.nn import SGD, build_model
from repro.nn.data import (
    MarkovText,
    SyntheticImages,
    SyntheticQA,
    SyntheticVectors,
)
from repro.nn.loss import softmax_cross_entropy


def test_vectors_shapes_and_determinism():
    data = SyntheticVectors(num_classes=5, dim=8, seed=3)
    x1, y1 = data.sample(16, np.random.default_rng(0))
    x2, y2 = data.sample(16, np.random.default_rng(0))
    np.testing.assert_array_equal(x1, x2)
    np.testing.assert_array_equal(y1, y2)
    assert x1.shape == (16, 8) and x1.dtype == np.float32
    assert set(np.unique(y1)) <= set(range(5))


def test_vectors_eval_set_fixed():
    data = SyntheticVectors(seed=1)
    xa, ya = data.eval_set(32)
    xb, yb = data.eval_set(32)
    np.testing.assert_array_equal(xa, xb)
    np.testing.assert_array_equal(ya, yb)


def test_images_shapes_and_class_structure():
    data = SyntheticImages(num_classes=4, channels=3, image_size=8, seed=0)
    x, y = data.sample(32, np.random.default_rng(1))
    assert x.shape == (32, 3, 8, 8)
    # samples of the same class correlate more with their prototype
    proto = data.prototypes
    sample = x[0]
    own = float(np.sum(sample * proto[y[0]]))
    other = float(np.mean([np.sum(sample * proto[c])
                           for c in range(4) if c != y[0]]))
    assert own > other


def test_markov_text_next_token_structure():
    data = MarkovText(vocab_size=16, seq_len=12, seed=2)
    x, y = data.sample(8, np.random.default_rng(3))
    assert x.shape == (8, 12) and y.shape == (8, 12)
    # target is the shifted stream
    np.testing.assert_array_equal(x[:, 1:], y[:, :-1])
    assert x.max() < 16 and x.min() >= 0


def test_markov_text_is_predictable():
    """The stream must be more predictable than uniform (learnable)."""
    data = MarkovText(vocab_size=16, seq_len=64, branching=3, seed=4)
    x, y = data.sample(64, np.random.default_rng(5))
    # empirical entropy of next-token given bigram is far below log(16)
    hits = 0
    total = 0
    for row_x, row_y in zip(x, y):
        for t in range(1, len(row_x)):
            a, b = row_x[t - 1], row_x[t]
            nxt = row_y[t]
            hits += nxt in data.successors[a, b]
            total += 1
    assert hits / total > 0.95


def test_qa_markers_present_and_consistent():
    data = SyntheticQA(vocab_size=32, seq_len=16)
    tokens, starts, ends = data.sample(32, np.random.default_rng(6))
    rows = np.arange(32)
    assert np.all(tokens[rows, starts] == SyntheticQA.BEGIN)
    assert np.all(tokens[rows, ends] == SyntheticQA.END)
    assert np.all(starts < ends)
    assert np.all(ends < 16)


def test_qa_rejects_tiny_vocab():
    import pytest

    with pytest.raises(ValueError):
        SyntheticQA(vocab_size=4)


def test_vectors_task_learnable_end_to_end():
    data = SyntheticVectors(seed=7)
    model = build_model("mlp", seed=0)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    rng = np.random.default_rng(8)
    for _ in range(80):
        x, y = data.sample(64, rng)
        loss, grad = softmax_cross_entropy(model(x), y)
        model.zero_grad()
        model.backward(grad)
        opt.step()
    xe, ye = data.eval_set(256)
    accuracy = float((model(xe).argmax(-1) == ye).mean())
    assert accuracy > 0.9, f"synthetic vectors should be learnable, got {accuracy}"

"""Data-path tests for the compression-aware collectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import allreduce, chunk_bounds, split_chunks
from repro.compression import CompressionSpec, make_compressor

SCHEMES = ["sra", "ring", "tree", "allgather", "ps"]


def make_buffers(world, numel, seed=0):
    return [np.random.default_rng(seed + i).normal(size=numel)
            .astype(np.float32) for i in range(world)]


# -- chunking ------------------------------------------------------------------

def test_chunk_bounds_cover_everything():
    bounds = chunk_bounds(10, 3)
    assert bounds == [(0, 4), (4, 7), (7, 10)]


@given(numel=st.integers(0, 1000), n=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_chunk_bounds_partition_property(numel, n):
    bounds = chunk_bounds(numel, n)
    assert len(bounds) == n
    assert bounds[0][0] == 0 and bounds[-1][1] == numel
    for (a1, b1), (a2, b2) in zip(bounds, bounds[1:]):
        assert b1 == a2
        assert 0 <= (b1 - a1) - (b2 - a2) <= 1 or (b1 - a1) >= (b2 - a2) - 1


def test_split_chunks_are_views():
    x = np.arange(10, dtype=np.float32)
    chunks = split_chunks(x, 3)
    chunks[0][0] = 99.0
    assert x[0] == 99.0


def test_chunk_bounds_validation():
    with pytest.raises(ValueError):
        chunk_bounds(10, 0)


# -- dense correctness ------------------------------------------------------------

@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("world", [1, 2, 3, 5, 8])
def test_dense_allreduce_exact(scheme, world):
    bufs = make_buffers(world, 257)
    exact = np.sum(bufs, axis=0, dtype=np.float64)
    outs, stats = allreduce(scheme, bufs, make_compressor(CompressionSpec()),
                            np.random.default_rng(0))
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-4)
    assert stats.world_size == world


@pytest.mark.parametrize("scheme", SCHEMES)
def test_inputs_not_mutated(scheme):
    bufs = make_buffers(4, 64)
    originals = [b.copy() for b in bufs]
    allreduce(scheme, bufs, make_compressor(CompressionSpec()),
              np.random.default_rng(0))
    for buf, orig in zip(bufs, originals):
        np.testing.assert_array_equal(buf, orig)


def test_mismatched_sizes_rejected():
    bufs = [np.zeros(10, dtype=np.float32), np.zeros(11, dtype=np.float32)]
    with pytest.raises(ValueError):
        allreduce("sra", bufs, make_compressor(CompressionSpec()),
                  np.random.default_rng(0))


def test_unknown_scheme_rejected():
    with pytest.raises(KeyError):
        allreduce("butterfly", make_buffers(2, 8),
                  make_compressor(CompressionSpec()),
                  np.random.default_rng(0))


# -- compressed behaviour -----------------------------------------------------------

@pytest.mark.parametrize("scheme", SCHEMES)
def test_all_ranks_receive_identical_results(scheme):
    """Replicas must not diverge: every rank decodes identical payloads."""
    bufs = make_buffers(8, 500)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=64))
    outs, _ = allreduce(scheme, bufs, comp, np.random.default_rng(1))
    for out in outs[1:]:
        np.testing.assert_array_equal(outs[0], out)


def test_shapes_preserved_2d():
    bufs = [b.reshape(20, 25) for b in make_buffers(4, 500)]
    outs, _ = allreduce("sra", bufs,
                        make_compressor(CompressionSpec("qsgd", bits=8,
                                                        bucket_size=128)),
                        np.random.default_rng(2))
    assert all(o.shape == (20, 25) for o in outs)


def _scheme_error(scheme, trials=12, world=8, numel=1024):
    errors = []
    for trial in range(trials):
        bufs = make_buffers(world, numel, seed=trial * 100)
        exact = np.sum(bufs, axis=0, dtype=np.float64)
        comp = make_compressor(CompressionSpec("qsgd", bits=4,
                                               bucket_size=128))
        outs, _ = allreduce(scheme, bufs, comp,
                            np.random.default_rng(trial))
        errors.append(np.linalg.norm(outs[0] - exact)
                      / np.linalg.norm(exact))
    return float(np.mean(errors))


def test_error_ordering_matches_paper():
    """Section 3 + Figure 10 rationale: SRA has lower compression error
    than Ring (repeated re-compression), and Allgather (single round of
    quantization) is the error floor."""
    err = {s: _scheme_error(s) for s in ["sra", "ring", "tree", "allgather"]}
    assert err["allgather"] < err["sra"]
    assert err["sra"] < err["ring"]
    assert err["sra"] <= err["tree"] * 1.05  # tree ~ between sra and ring


def test_recompression_counts():
    bufs = make_buffers(8, 256)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=64))
    rng = np.random.default_rng(0)
    _, sra = allreduce("sra", bufs, comp, rng)
    _, ring = allreduce("ring", bufs, comp, rng)
    _, tree = allreduce("tree", bufs, comp, rng)
    _, ag = allreduce("allgather", bufs, comp, rng)
    assert sra.max_recompressions == 2
    assert ring.max_recompressions == 8
    assert tree.max_recompressions == 4   # log2(8) + broadcast
    assert ag.max_recompressions == 1


def test_allgather_wire_cost_scales_with_world():
    """GRACE's weakness: allgather moves ~N compressed gradients."""
    comp_spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    bufs = make_buffers(8, 4096)
    rng = np.random.default_rng(0)
    _, sra = allreduce("sra", bufs, make_compressor(comp_spec), rng)
    _, ag = allreduce("allgather", bufs, make_compressor(comp_spec), rng)
    assert ag.wire_bytes > 3 * sra.wire_bytes


def test_single_rank_degenerate():
    bufs = make_buffers(1, 100)
    outs, stats = allreduce("ring", bufs,
                            make_compressor(CompressionSpec()),
                            np.random.default_rng(0))
    np.testing.assert_allclose(outs[0], bufs[0])


@given(world=st.integers(2, 6), numel=st.integers(2, 300))
@settings(max_examples=25, deadline=None)
def test_sra_dense_exact_property(world, numel):
    bufs = make_buffers(world, numel, seed=numel)
    exact = np.sum(bufs, axis=0, dtype=np.float64)
    outs, _ = allreduce("sra", bufs, make_compressor(CompressionSpec()),
                        np.random.default_rng(0))
    np.testing.assert_allclose(outs[0], exact, rtol=1e-4, atol=1e-4)


# -- hierarchical -------------------------------------------------------------------

def test_hierarchical_dense_exact():
    bufs = make_buffers(8, 333)
    exact = np.sum(bufs, axis=0, dtype=np.float64)
    outs, stats = allreduce("hier", bufs, make_compressor(CompressionSpec()),
                            np.random.default_rng(0),
                            node_of=[0, 0, 0, 0, 1, 1, 1, 1])
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-4)


def test_hierarchical_identical_across_nodes():
    bufs = make_buffers(8, 512)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=64))
    outs, _ = allreduce("hier", bufs, comp, np.random.default_rng(3),
                        node_of=[0, 0, 1, 1, 2, 2, 3, 3])
    for out in outs[1:]:
        np.testing.assert_array_equal(outs[0], out)


def test_hierarchical_single_node_falls_back_to_sra():
    bufs = make_buffers(4, 128)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=64))
    outs, stats = allreduce("hier", bufs, comp, np.random.default_rng(0),
                            node_of=[0, 0, 0, 0])
    assert stats.scheme == "sra"


def test_hierarchical_rejects_bad_node_map():
    bufs = make_buffers(4, 64)
    with pytest.raises(ValueError):
        allreduce("hier", bufs, make_compressor(CompressionSpec()),
                  np.random.default_rng(0), node_of=[0, 1])
